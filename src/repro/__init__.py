"""repro -- a reproduction of "Managing Memory for Real-Time Queries"
(Pang, Carey, Livny, SIGMOD 1994).

The package provides:

* :mod:`repro.core` -- the **PMM** (Priority Memory Management)
  algorithm: adaptive admission control (miss-ratio projection + the
  resource-utilisation heuristic) and adaptive memory allocation
  (Max / MinMax switching), with workload-change detection;
* :mod:`repro.rtdbs` -- a discrete-event simulator of a firm real-time
  DBMS (CPU, disks, buffer pool, query manager, workload source);
* :mod:`repro.queries` -- memory-adaptive operators: the PPHJ hash join
  [Pang93a] and adaptive external sort [Pang93b];
* :mod:`repro.policies` -- the static baselines (Max, MinMax-N,
  Proportional-N) the paper compares against;
* :mod:`repro.workloads` -- presets for every experiment in Section 5;
* :mod:`repro.experiments` -- runners that regenerate each figure and
  table.

Quickstart
----------
>>> from repro import RTDBSystem, baseline
>>> result = RTDBSystem(baseline(arrival_rate=0.06, scale=0.1), "pmm").run(
...     duration=2000.0)
>>> 0.0 <= result.miss_ratio <= 1.0
True
"""

from repro.core.fairness import FairPMM
from repro.core.pmm import PMM
from repro.policies import (
    MaxPolicy,
    MinMaxPolicy,
    ProportionalPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.rtdbs.config import (
    ArrivalModulation,
    CPUCosts,
    DatabaseParams,
    PMMParams,
    QueryClass,
    RelationGroup,
    ResourceParams,
    SimulationConfig,
    WorkloadParams,
)
from repro.rtdbs.invariants import InvariantChecker, InvariantViolation
from repro.rtdbs.system import RTDBSystem, SimulationResult
from repro.scenarios import Scenario, ScenarioGenerator
from repro.workloads.presets import (
    baseline,
    disk_contention,
    external_sort_workload,
    multiclass,
    scaled_contention,
    workload_changes,
)

__version__ = "1.0.0"

__all__ = [
    "ArrivalModulation",
    "CPUCosts",
    "DatabaseParams",
    "FairPMM",
    "InvariantChecker",
    "InvariantViolation",
    "MaxPolicy",
    "MinMaxPolicy",
    "PMM",
    "PMMParams",
    "ProportionalPolicy",
    "QueryClass",
    "RTDBSystem",
    "RelationGroup",
    "ResourceParams",
    "Scenario",
    "ScenarioGenerator",
    "SimulationConfig",
    "SimulationResult",
    "WorkloadParams",
    "available_policies",
    "baseline",
    "disk_contention",
    "external_sort_workload",
    "make_policy",
    "multiclass",
    "register_policy",
    "scaled_contention",
    "workload_changes",
    "__version__",
]
