"""Reproduction runners for every table and figure in Section 5.

Each function returns a :class:`FigureResult` whose ``series`` holds
the same x/y data the paper plots, and whose ``render()`` produces a
plain-text table for ``EXPERIMENTS.md``.  The qualitative expectations
(who wins, where the crossovers are) live in ``benchmarks/`` where they
are asserted.

All runners accept an :class:`~repro.experiments.runner.ExperimentSettings`
whose default ``scale=0.1`` is the paper's own validated small-scale
configuration (Section 5.7); pass ``scale=1.0`` for full-size runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.output import phase_average
from repro.analysis.report import format_series, format_table
from repro.experiments.runner import (
    ExperimentSettings,
    RunSpec,
    run_config,
    run_many,
    sweep,
)
from repro.policies import make_policy
from repro.rtdbs.system import SimulationResult
from repro.sim.rng import Streams
from repro.workloads.presets import (
    baseline,
    disk_contention,
    external_sort_workload,
    multiclass,
    workload_changes,
)

#: Default arrival-rate grid for the baseline figures (the paper sweeps
#: 0.04-0.08 in steps of 0.01; three points keep CI affordable while
#: still showing the trend and crossover).
BASELINE_RATES = (0.04, 0.06, 0.08)
#: Sort sweep (Section 5.5).  Our calibrated disk makes sorts ~4x
#: cheaper than the paper's, so the contention regime sits at higher
#: rates than the paper's 0.04-0.12 sweep (see EXPERIMENTS.md).
SORT_RATES = (0.15, 0.25, 0.35)
SMALL_RATES = (0.2, 0.6, 1.0)
BASELINE_POLICIES = ("max", "minmax", "proportional", "pmm")
#: Disk-contention sweep (Section 5.2).  At the paper's full scale the
#: best MPL limit is 10; at the default small scale the min/max demand
#: ratio shifts the optimum to N~2 (see EXPERIMENTS.md), so the
#: "good-N" series tracked against PMM is MinMax-2.
CONTENTION_RATES = (0.05, 0.06, 0.07)
CONTENTION_LIMITED = "minmax-2"
CONTENTION_POLICIES = ("max", "minmax", "pmm", CONTENTION_LIMITED)

# Every figure's policy specs resolve through the single registry; a
# typo fails at import, not three sweeps into a grid.
for _spec in {*BASELINE_POLICIES, *CONTENTION_POLICIES}:
    make_policy(_spec)
del _spec


@dataclass
class FigureResult:
    """One reproduced figure/table: series plus raw run results."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    #: ``{series name: [(x, y), ...]}``.
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Raw simulation results for deeper assertions,
    #: ``{series name: [(x, SimulationResult), ...]}``.
    raw: Dict[str, List[Tuple[float, SimulationResult]]] = field(default_factory=dict)
    notes: str = ""

    def value(self, name: str, x: float) -> float:
        """The y value of a series at an exact x."""
        for x_value, y_value in self.series[name]:
            if x_value == x:
                return y_value
        raise KeyError(f"series {name!r} has no point at x={x}")

    def final_value(self, name: str) -> float:
        """The y value at the largest x (the heaviest load)."""
        return self.series[name][-1][1]

    def render(self) -> str:
        """Plain-text table of all series (for EXPERIMENTS.md)."""
        body = format_series(
            self.series, self.x_label, self.y_label, title=f"{self.figure_id}: {self.title}"
        )
        if self.notes:
            body += f"\n{self.notes}"
        return body


def _metric_series(
    results: Dict[str, List[Tuple[float, SimulationResult]]], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    def extract(result: SimulationResult) -> float:
        if metric == "miss_ratio":
            return result.miss_ratio
        if metric == "disk_utilization":
            return result.avg_disk_utilization
        if metric == "observed_mpl":
            return result.observed_mpl
        if metric == "fluctuations":
            return result.avg_fluctuations
        raise ValueError(f"unknown metric {metric!r}")

    return {
        name: [(x, extract(result)) for x, result in points]
        for name, points in results.items()
    }


# ----------------------------------------------------------------------
# Baseline experiment (Section 5.1): Figures 3, 4, 5, 7 and Table 7
# ----------------------------------------------------------------------
def _baseline_sweep(settings: ExperimentSettings, rates: Sequence[float], policies):
    configs = [
        (rate, baseline(arrival_rate=rate, scale=settings.scale, seed=settings.seed))
        for rate in rates
    ]
    return sweep(configs, policies, settings)


def figure_03_baseline_miss_ratio(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = BASELINE_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> FigureResult:
    """Figure 3: miss ratio vs arrival rate, memory-bound baseline."""
    raw = _baseline_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 3",
        title="Miss Ratio (Baseline)",
        x_label="arrival_rate",
        y_label="miss_ratio",
        series=_metric_series(raw, "miss_ratio"),
        raw=raw,
        notes="Paper: MinMax best, PMM close behind; Proportional degrades, Max worst.",
    )


def figure_04_baseline_disk_util(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = BASELINE_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> FigureResult:
    """Figure 4: disk utilisation vs arrival rate (baseline runs)."""
    raw = _baseline_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 4",
        title="Disk Utilization (Baseline)",
        x_label="arrival_rate",
        y_label="disk_util",
        series=_metric_series(raw, "disk_utilization"),
        raw=raw,
        notes="Paper: Max's utilisation stays flat; the liberal policies climb with load.",
    )


def figure_05_baseline_mpl(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = BASELINE_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> FigureResult:
    """Figure 5: observed MPL vs arrival rate (baseline runs)."""
    raw = _baseline_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 5",
        title="Observed MPL (Baseline)",
        x_label="arrival_rate",
        y_label="mpl",
        series=_metric_series(raw, "observed_mpl"),
        raw=raw,
        notes="Paper: Max pinned below ~2; MinMax/Proportional/PMM reach much higher MPLs.",
    )


def table_07_baseline_timings(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = BASELINE_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> Tuple[str, Dict[str, List[Tuple[float, SimulationResult]]]]:
    """Table 7: average waiting / execution / response per policy.

    Returns the rendered table plus the raw results.
    """
    raw = _baseline_sweep(settings, rates, policies)
    rows = []
    for policy, points in raw.items():
        for rate, result in points:
            rows.append(
                [
                    policy,
                    rate,
                    round(result.avg_waiting, 2),
                    round(result.avg_execution, 2),
                    round(result.avg_response, 2),
                ]
            )
    table = format_table(
        ["policy", "arrival_rate", "waiting_s", "execution_s", "response_s"],
        rows,
        title="Table 7: Average Timings (Baseline; completed queries)",
    )
    return table, raw


def figure_06_pmm_mpl_trace(
    settings: ExperimentSettings = ExperimentSettings(),
    arrival_rate: float = 0.075,
) -> FigureResult:
    """Figure 6: PMM's target-MPL trajectory at lambda = 0.075."""
    config = baseline(
        arrival_rate=arrival_rate, scale=settings.scale, seed=settings.seed
    )
    result = run_config(config, "pmm", settings)
    return FigureResult(
        figure_id="Figure 6",
        title=f"PMM target MPL trace (lambda={arrival_rate})",
        x_label="time_s",
        y_label="target_mpl",
        series={"pmm": [(t, v) for t, v in result.pmm_mpl_trace]},
        raw={"pmm": [(arrival_rate, result)]},
        notes="Paper: early RU-driven spike (~25), then the projection settles near 10.",
    )


def figure_07_memory_fluctuations(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = BASELINE_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> FigureResult:
    """Figure 7: average memory-allocation changes per query."""
    raw = _baseline_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 7",
        title="Memory Fluctuations (Baseline)",
        x_label="arrival_rate",
        y_label="fluctuations",
        series=_metric_series(raw, "fluctuations"),
        raw=raw,
        notes="Paper: Proportional fluctuates most; Max only suspends/resumes.",
    )


# ----------------------------------------------------------------------
# Moderate disk contention (Section 5.2): Figures 8, 9, 10, 11
# ----------------------------------------------------------------------
def _contention_sweep(settings: ExperimentSettings, rates: Sequence[float], policies):
    configs = [
        (rate, disk_contention(arrival_rate=rate, scale=settings.scale, seed=settings.seed))
        for rate in rates
    ]
    return sweep(configs, policies, settings)


def figure_08_contention_miss_ratio(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = CONTENTION_RATES,
    policies: Sequence[str] = CONTENTION_POLICIES,
) -> FigureResult:
    """Figure 8: miss ratio with 6 disks (MinMax starts thrashing)."""
    raw = _contention_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 8",
        title="Miss Ratio (Disk Contention)",
        x_label="arrival_rate",
        y_label="miss_ratio",
        series=_metric_series(raw, "miss_ratio"),
        raw=raw,
        notes="Paper: the MPL-limited MinMax wins; unbounded MinMax thrashes under load.",
    )


def figure_09_contention_disk_util(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = CONTENTION_RATES,
    policies: Sequence[str] = CONTENTION_POLICIES,
) -> FigureResult:
    """Figure 9: disk utilisation with 6 disks."""
    raw = _contention_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 9",
        title="Disk Utilization (Disk Contention)",
        x_label="arrival_rate",
        y_label="disk_util",
        series=_metric_series(raw, "disk_utilization"),
        raw=raw,
        notes="Paper: MinMax exceeds 70% under heavy load (thrashing signal).",
    )


def figure_10_contention_mpl(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = CONTENTION_RATES,
    policies: Sequence[str] = CONTENTION_POLICIES,
) -> FigureResult:
    """Figure 10: observed MPL with 6 disks (PMM tracks MinMax-10)."""
    raw = _contention_sweep(settings, rates, policies)
    return FigureResult(
        figure_id="Figure 10",
        title="Observed MPL (Disk Contention)",
        x_label="arrival_rate",
        y_label="mpl",
        series=_metric_series(raw, "observed_mpl"),
        raw=raw,
        notes="Paper: PMM's MPL stays close to the best MinMax-N's.",
    )


def figure_11_minmax_n_sweep(
    settings: ExperimentSettings = ExperimentSettings(),
    arrival_rate: float = 0.085,
    n_values: Sequence[int] = (1, 2, 3, 5, 8, 12),
) -> FigureResult:
    """Figure 11: MinMax-N miss ratio vs N, 6 disks, heavy load.

    The paper runs this at lambda = 0.07 full-scale and finds the
    optimum at N = 10; at the default small scale the same interior
    optimum appears at a heavier rate and smaller N (~2)."""
    config = disk_contention(
        arrival_rate=arrival_rate, scale=settings.scale, seed=settings.seed
    )
    # One batch for the whole N sweep plus the PMM reference run.
    specs = [RunSpec(config, f"minmax-{n}", settings) for n in n_values]
    specs.append(RunSpec(config, "pmm", settings))
    *n_results, pmm_result = run_many(specs)
    points = []
    raw_points = []
    for n, result in zip(n_values, n_results):
        points.append((float(n), result.miss_ratio))
        raw_points.append((float(n), result))
    return FigureResult(
        figure_id="Figure 11",
        title=f"MinMax-N sweep (lambda={arrival_rate}, 6 disks)",
        x_label="N",
        y_label="miss_ratio",
        series={
            "minmax-n": points,
            "pmm": [(float(n), pmm_result.miss_ratio) for n in n_values],
        },
        raw={"minmax-n": raw_points, "pmm": [(0.0, pmm_result)]},
        notes="Paper: concave in N with an interior optimum (MinMax-10); PMM lands near it.",
    )


# ----------------------------------------------------------------------
# Workload changes (Section 5.3): Figures 12-15
# ----------------------------------------------------------------------
def make_phases(
    settings: ExperimentSettings,
    num_phases: int = 5,
    phase_range_hours: Tuple[float, float] = (2.0, 5.0),
) -> List[Tuple[float, float, str]]:
    """Alternating Medium/Small phases with 2-5 h lengths (scaled).

    Phase lengths are drawn reproducibly from the experiment seed; the
    schedule starts with Medium, as in Figures 12-14.
    """
    stream = Streams(settings.seed).stream("phases")
    low, high = phase_range_hours
    phases: List[Tuple[float, float, str]] = []
    start = 0.0
    for index in range(num_phases):
        length = stream.uniform(low, high) * 3600.0 * settings.scale
        name = "Medium" if index % 2 == 0 else "Small"
        phases.append((start, start + length, name))
        start += length
    return phases


@dataclass(frozen=True)
class _PhaseSetup:
    """Picklable setup hook: toggle class rates at each phase boundary.

    Defined at module level (not as a closure) so workload-change runs
    can cross the process-pool boundary; ``signature`` is its explicit
    contribution to the cache key.
    """

    phases: Tuple[Tuple[float, float, str], ...]
    medium_rate: float
    small_rate: float

    def __call__(self, system) -> None:
        # Start with Medium only; toggle the class rates per phase.
        system.source.set_rate("Small", 0.0)
        for start, _end, name in self.phases:
            if start == 0.0:
                continue
            if name == "Small":
                system.schedule(start, lambda s=system, r=self.small_rate: (
                    s.source.set_rate("Medium", 0.0),
                    s.source.set_rate("Small", r),
                ))
            else:
                system.schedule(start, lambda s=system, r=self.medium_rate: (
                    s.source.set_rate("Small", 0.0),
                    s.source.set_rate("Medium", r),
                ))

    @property
    def signature(self) -> tuple:
        return ("workload_changes.phases", self.phases, self.medium_rate, self.small_rate)


def figure_12_14_workload_changes(
    settings: ExperimentSettings = ExperimentSettings(),
    policies: Sequence[str] = ("max", "minmax", "pmm"),
    num_phases: int = 5,
) -> Tuple[Dict[str, Dict], List[Tuple[float, float, str]]]:
    """Figures 12-14: miss ratio over an alternating workload.

    All policies are submitted as one batch.  Returns
    ``({policy: {"result", "phase_miss", "series"}}, phases)``;
    ``phase_miss`` is the per-phase average miss ratio the paper prints
    along the top of each figure.
    """
    phases = make_phases(settings, num_phases=num_phases)
    horizon = phases[-1][1]
    run_settings = ExperimentSettings(
        scale=settings.scale,
        duration=horizon,
        seed=settings.seed,
        warmup=settings.warmup,
    )
    specs = []
    for policy in policies:
        config = workload_changes(scale=settings.scale, seed=settings.seed)
        setup = _PhaseSetup(
            phases=tuple(phases),
            medium_rate=config.workload.classes[0].arrival_rate,
            small_rate=config.workload.classes[1].arrival_rate,
        )
        specs.append(
            RunSpec(
                config=config,
                policy=policy,
                settings=run_settings,
                setup=setup,
                setup_signature=setup.signature,
            )
        )
    results = run_many(specs)
    window = max(60.0, horizon / 60.0)
    output: Dict[str, Dict] = {}
    for policy, result in zip(policies, results):
        output[policy] = {
            "result": result,
            "series": result.windowed_miss_ratio(window),
            "phase_miss": phase_average(
                result.departure_log, [(s, e) for s, e, _n in phases]
            ),
        }
    return output, phases


def figure_15_change_mpl_trace(
    settings: ExperimentSettings = ExperimentSettings(),
    num_phases: int = 5,
) -> FigureResult:
    """Figure 15: PMM's MPL trace under the alternating workload."""
    runs, phases = figure_12_14_workload_changes(
        settings, policies=("pmm",), num_phases=num_phases
    )
    result = runs["pmm"]["result"]
    return FigureResult(
        figure_id="Figure 15",
        title="PMM MPL (Workload Changes)",
        x_label="time_s",
        y_label="mpl",
        series={"pmm": [(t, v) for t, v in result.pmm_mpl_trace]},
        raw={"pmm": [(0.0, result)]},
        notes="Paper: MPL rises in Medium phases (MinMax) and collapses in Small phases (Max).",
    )


# ----------------------------------------------------------------------
# Other query types (Section 5.5): Figure 16
# ----------------------------------------------------------------------
def figure_16_external_sort(
    settings: ExperimentSettings = ExperimentSettings(),
    rates: Sequence[float] = SORT_RATES,
    policies: Sequence[str] = BASELINE_POLICIES,
) -> FigureResult:
    """Figure 16: miss ratio for an external-sort workload."""
    configs = [
        (
            rate,
            external_sort_workload(
                arrival_rate=rate, scale=settings.scale, seed=settings.seed
            ),
        )
        for rate in rates
    ]
    raw = sweep(configs, policies, settings)
    return FigureResult(
        figure_id="Figure 16",
        title="Miss Ratio (External Sort)",
        x_label="arrival_rate",
        y_label="miss_ratio",
        series=_metric_series(raw, "miss_ratio"),
        raw=raw,
        notes="Paper: Max degrades fastest (memory even more critical); PMM sides with MinMax.",
    )


# ----------------------------------------------------------------------
# Multiclass workload (Section 5.6): Figures 17, 18
# ----------------------------------------------------------------------
def _multiclass_sweep(settings, small_rates, policies):
    configs = [
        (
            rate,
            multiclass(small_rate=rate, scale=settings.scale, seed=settings.seed),
        )
        for rate in small_rates
    ]
    return sweep(configs, policies, settings)


def figure_17_multiclass_system(
    settings: ExperimentSettings = ExperimentSettings(),
    small_rates: Sequence[float] = SMALL_RATES,
    policies: Sequence[str] = ("max", "minmax", "pmm"),
) -> FigureResult:
    """Figure 17: system miss ratio vs the Small class's arrival rate."""
    raw = _multiclass_sweep(settings, small_rates, policies)
    return FigureResult(
        figure_id="Figure 17",
        title="System Miss Ratio (Multiclass)",
        x_label="small_arrival_rate",
        y_label="miss_ratio",
        series=_metric_series(raw, "miss_ratio"),
        raw=raw,
        notes="Paper: PMM follows MinMax at low Small rates and Max at high ones.",
    )


def figure_18_multiclass_perclass(
    settings: ExperimentSettings = ExperimentSettings(),
    small_rates: Sequence[float] = SMALL_RATES,
) -> FigureResult:
    """Figure 18: PMM's per-class miss ratios (the Medium-class bias)."""
    raw = _multiclass_sweep(settings, small_rates, ("pmm",))
    medium = []
    small = []
    for rate, result in raw["pmm"]:
        medium.append((rate, result.per_class["Medium"].miss_ratio))
        small.append((rate, result.per_class["Small"].miss_ratio))
    return FigureResult(
        figure_id="Figure 18",
        title="Class Miss Ratio under PMM (Multiclass)",
        x_label="small_arrival_rate",
        y_label="miss_ratio",
        series={"Medium": medium, "Small": small},
        raw=raw,
        notes="Paper: at high Small rates PMM's Max mode starves the Medium class.",
    )


# ----------------------------------------------------------------------
# Sensitivity & scalability (Sections 5.4, 5.7)
# ----------------------------------------------------------------------
def section_54_utillow_sensitivity(
    settings: ExperimentSettings = ExperimentSettings(),
    arrival_rate: float = 0.075,
    util_lows: Sequence[float] = (0.50, 0.60, 0.70, 0.80),
) -> FigureResult:
    """Section 5.4: PMM's miss ratio is insensitive to UtilLow."""
    from repro.rtdbs.config import PMMParams

    specs = [
        RunSpec(
            baseline(
                arrival_rate=arrival_rate, scale=settings.scale, seed=settings.seed
            ).with_overrides(pmm=PMMParams(util_low=util_low, util_high=0.85)),
            "pmm",
            settings,
        )
        for util_low in util_lows
    ]
    results = run_many(specs)
    points = []
    raw_points = []
    for util_low, result in zip(util_lows, results):
        points.append((util_low, result.miss_ratio))
        raw_points.append((util_low, result))
    return FigureResult(
        figure_id="Section 5.4",
        title=f"UtilLow sensitivity (lambda={arrival_rate})",
        x_label="util_low",
        y_label="miss_ratio",
        series={"pmm": points},
        raw={"pmm": raw_points},
        notes="Paper: approximately the same performance across UtilLow in [0.50, 0.80].",
    )


def section_57_scalability(
    settings: ExperimentSettings = ExperimentSettings(),
    arrival_rate: float = 0.06,
    factor: float = 2.0,
    policies: Sequence[str] = ("max", "minmax", "pmm"),
) -> Dict[str, Dict[str, float]]:
    """Section 5.7: scale sizes x factor / rates / factor; the policy
    ranking must be preserved.  Returns miss ratios at both scales.

    The whole (scale x policy) grid goes out as one batch."""
    base_config = disk_contention(
        arrival_rate=arrival_rate, scale=settings.scale, seed=settings.seed
    )
    scaled_config = disk_contention(
        arrival_rate=arrival_rate, scale=settings.scale * factor, seed=settings.seed
    )
    scaled_settings = ExperimentSettings(
        scale=settings.scale * factor,
        duration=settings.duration * factor,
        seed=settings.seed,
        warmup=settings.warmup * factor,
    )
    policy_list = list(policies)
    specs = [RunSpec(base_config, policy, settings) for policy in policy_list] + [
        RunSpec(scaled_config, policy, scaled_settings) for policy in policy_list
    ]
    results = run_many(specs)
    output: Dict[str, Dict[str, float]] = {"base": {}, "scaled": {}}
    for policy, result in zip(policy_list, results[: len(policy_list)]):
        output["base"][policy] = result.miss_ratio
    for policy, result in zip(policy_list, results[len(policy_list) :]):
        output["scaled"][policy] = result.miss_ratio
    return output
