"""Command-line reproduction driver: ``python -m repro.experiments``.

Runs the requested experiments (default: the fast core set) and prints
each regenerated table/figure in the plain-text format used by
``EXPERIMENTS.md``.

Examples
--------
::

    python -m repro.experiments --list
    python -m repro.experiments fig3 fig11
    python -m repro.experiments --all --scale 0.1 --duration 1500
    python -m repro.experiments fig3 --scale 1.0 --duration 20000  # full size
    python -m repro.experiments fig3 --jobs 8                      # parallel grid
    python -m repro.experiments fig3 --no-cache                    # force re-runs
    python -m repro.experiments scenario-shootout --regret         # + oracle gap
    python -m repro.experiments scenario-shootout --json out.json  # machine API
    python -m repro.experiments oracle --family mix --policy max   # one schedule

Execution knobs (flags override the environment):

* ``--jobs N`` / ``REPRO_JOBS``           worker processes (default: all cores)
* ``--cache-dir D`` / ``REPRO_CACHE_DIR`` persistent result cache (default
  ``.repro_cache``)
* ``--no-cache`` / ``REPRO_NO_CACHE=1``   bypass the persistent cache; each
  distinct grid point still runs at most once per invocation (in-process
  memo), since several figures project the same sweep
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures, runner
from repro.experiments.runner import ExperimentSettings

#: Experiment registry: id -> (description, runner taking settings).
REGISTRY = {
    "fig3": ("Figure 3: miss ratio (baseline)", figures.figure_03_baseline_miss_ratio),
    "fig4": ("Figure 4: disk utilisation (baseline)", figures.figure_04_baseline_disk_util),
    "fig5": ("Figure 5: observed MPL (baseline)", figures.figure_05_baseline_mpl),
    "fig6": ("Figure 6: PMM target-MPL trace", figures.figure_06_pmm_mpl_trace),
    "fig7": ("Figure 7: memory fluctuations", figures.figure_07_memory_fluctuations),
    "fig8": ("Figure 8: miss ratio (disk contention)", figures.figure_08_contention_miss_ratio),
    "fig9": ("Figure 9: disk utilisation (contention)", figures.figure_09_contention_disk_util),
    "fig10": ("Figure 10: observed MPL (contention)", figures.figure_10_contention_mpl),
    "fig11": ("Figure 11: MinMax-N sweep", figures.figure_11_minmax_n_sweep),
    "fig15": ("Figure 15: PMM MPL under workload changes", figures.figure_15_change_mpl_trace),
    "fig16": ("Figure 16: miss ratio (external sorts)", figures.figure_16_external_sort),
    "fig17": ("Figure 17: system miss ratio (multiclass)", figures.figure_17_multiclass_system),
    "fig18": ("Figure 18: class miss ratios (multiclass)", figures.figure_18_multiclass_perclass),
    "sec54": ("Section 5.4: UtilLow sensitivity", figures.section_54_utillow_sensitivity),
}

#: The default quick set (shares most simulation runs via the cache).
DEFAULT_SET = ("fig3", "fig4", "fig5", "fig6", "fig7")


def _run_table7(settings: ExperimentSettings) -> None:
    table, _raw = figures.table_07_baseline_timings(settings)
    print(table)


def _run_fig12_14(settings: ExperimentSettings) -> None:
    runs, phases = figures.figure_12_14_workload_changes(settings)
    print("Figures 12-14: per-phase average miss ratios")
    print("phases:", [(round(s, 1), round(e, 1), name) for s, e, name in phases])
    for policy, data in runs.items():
        print(f"  {policy:8s}: {[round(m, 3) for m in data['phase_miss']]}")


def _run_sec57(settings: ExperimentSettings) -> None:
    results = figures.section_57_scalability(settings)
    print("Section 5.7: miss ratios at two scales")
    for scale_name, by_policy in results.items():
        print(f"  {scale_name:7s}:", {p: round(m, 3) for p, m in by_policy.items()})


SPECIAL = {
    "tbl7": ("Table 7: average timings (baseline)", _run_table7),
    "fig12-14": ("Figures 12-14: workload changes", _run_fig12_14),
    "sec57": ("Section 5.7: scalability", _run_sec57),
}


def _split_tokens(text):
    return tuple(token.strip() for token in text.split(",") if token.strip())


def _run_shootout(args) -> bool:
    """Generated-scenario matrix x all policies; True when checks pass."""
    from repro.experiments.shootout import DEFAULT_POLICIES, scenario_shootout

    ignored = [
        flag
        for flag, value, default in (
            ("--scale", args.scale, 0.1),
            ("--duration", args.duration, 1800.0),
            ("--seed", args.seed, 7),
        )
        if value != default
    ]
    if ignored:
        print(
            f"note: {', '.join(ignored)} do(es) not apply to scenario-shootout -- "
            "each generated scenario carries its own horizon and simulation "
            "seed; vary the matrix with --scenario-seed/--scenarios/--families",
            file=sys.stderr,
        )
    policies = _split_tokens(args.policies) if args.policies else DEFAULT_POLICIES
    families = _split_tokens(args.families) if args.families else None
    report = scenario_shootout(
        count=args.scenarios,
        families=families,
        policies=policies,
        scenario_seed=args.scenario_seed,
        jobs=args.jobs,
        cache=not args.no_cache,
        invariants=not args.no_invariants,
        regret=args.regret,
    )
    print(report.render())
    if args.json:
        report.save_json(args.json)
        print(f"[json] report written to {args.json}")
    return report.ok


def _run_oracle(args) -> bool:
    """Clairvoyant optimum for one (scenario, policy) cell."""
    from repro.analysis.report import format_table
    from repro.oracle import solve_scenario
    from repro.scenarios import ScenarioGenerator

    scenario = ScenarioGenerator(args.scenario_seed).generate(
        args.family, args.index
    )
    result = solve_scenario(
        scenario,
        args.policy,
        cache=not args.no_cache,
        invariants=not args.no_invariants,
    )
    print(
        f"Oracle ({result.tag}): scenario {scenario.name} "
        f"({scenario.content_hash[:10]}) x {args.policy}"
    )
    print(
        f"  pool {result.pool_pages} pages, {result.query_count} departed "
        f"queries; policy missed {result.recorded_misses}, oracle missed "
        f"{result.misses} (regret {result.regret}), "
        f"total wait {result.total_wait:.1f}s"
    )
    rows = [
        [item.qid, item.class_name, item.grant, item.start, item.finish,
         item.deadline, item.wait]
        for item in result.schedule
    ]
    print(
        format_table(
            ["qid", "class", "grant", "start", "finish", "deadline", "wait"],
            rows,
            title="Optimal schedule (admission order):",
        )
    )
    if result.missed_qids:
        print(
            "sacrificed (missed even with hindsight): "
            f"{sorted(result.missed_qids)}"
        )
    if result.regret < 0:
        print(
            f"NEGATIVE REGRET: oracle missed {result.misses} > policy's "
            f"{result.recorded_misses} -- the relaxation is broken",
            file=sys.stderr,
        )
    return result.regret >= 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--duration", type=float, default=1800.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--chart", action="store_true", help="also render ASCII charts of the series"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation grids (default: REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache (re-run each distinct grid "
        "point once; results are still shared within this invocation)",
    )
    shootout_group = parser.add_argument_group(
        "scenario-shootout", "options for the generated-scenario matrix"
    )
    shootout_group.add_argument(
        "--scenarios", type=int, default=15, help="number of generated scenarios"
    )
    shootout_group.add_argument(
        "--families",
        default=None,
        help="comma-separated scenario families (default: all)",
    )
    shootout_group.add_argument(
        "--scenario-seed", type=int, default=0, help="scenario-generator seed"
    )
    shootout_group.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy specs (default: all of Table 5 + PMM/FairPMM)",
    )
    shootout_group.add_argument(
        "--no-invariants",
        action="store_true",
        help="run the matrix without the runtime invariant checker",
    )
    shootout_group.add_argument(
        "--regret",
        action="store_true",
        help="trace every cell and add the clairvoyant-oracle regret "
        "columns (policy misses - oracle misses; >= 0 when the oracle "
        "is sound) plus the regret cross-check laws",
    )
    shootout_group.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the schema-versioned unified report as JSON "
        "(the supported machine interface; see repro/analysis/report.py)",
    )
    oracle_group = parser.add_argument_group(
        "oracle", "options for the clairvoyant-optimum oracle"
    )
    oracle_group.add_argument(
        "--family", default="mix", help="scenario family to solve"
    )
    oracle_group.add_argument(
        "--index", type=int, default=0, help="scenario index within the family"
    )
    oracle_group.add_argument(
        "--policy",
        default="max",
        help="policy whose recorded trace the oracle solves against",
    )
    args = parser.parse_args(argv)

    runner.configure(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_enabled=False if args.no_cache else None,
    )

    everything = {**REGISTRY, **SPECIAL}
    everything["scenario-shootout"] = (
        "Scenario shootout: generated matrix x all policies, cross-checked",
        lambda _settings: _run_shootout(args),
    )
    everything["oracle"] = (
        "Clairvoyant oracle: hindsight-optimal schedule for one scenario",
        lambda _settings: _run_oracle(args),
    )
    if args.list:
        for key, (description, _fn) in everything.items():
            print(f"  {key:10s} {description}")
        return 0

    chosen = list(args.experiments) if args.experiments else list(DEFAULT_SET)
    if args.all:
        chosen = list(everything)
    unknown = [key for key in chosen if key not in everything]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; try --list", file=sys.stderr)
        return 2

    settings = ExperimentSettings(
        scale=args.scale, duration=args.duration, seed=args.seed
    )
    exit_status = 0
    for key in chosen:
        description, experiment = everything[key]
        print(f"\n=== {description} ===")
        started = time.time()
        output = experiment(settings)
        if output is False:  # a cross-checked harness reported failures
            exit_status = 1
        if hasattr(output, "render"):
            print(output.render())
            if args.chart and getattr(output, "series", None):
                from repro.analysis.ascii_chart import render_chart

                print()
                print(
                    render_chart(
                        output.series,
                        x_label=output.x_label,
                        y_label=output.y_label,
                    )
                )
        print(f"[{key} done in {time.time() - started:.1f}s]")
    stats = runner.stats
    print(
        f"[engine] jobs={runner.default_jobs()} "
        f"cache={'off' if not runner.cache_enabled() else runner.cache_dir()} "
        f"memo_hits={stats.memo_hits} disk_hits={stats.disk_hits} "
        f"misses={stats.misses} stores={stats.stores}"
    )
    return exit_status


if __name__ == "__main__":
    raise SystemExit(main())
