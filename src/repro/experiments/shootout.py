"""The differential scenario shootout: matrix x policies, cross-checked.

``scenario_shootout`` fans a generated scenario matrix across all
memory policies through the cached parallel engine (each grid point
runs with the invariant checker attached), then cross-checks the
results *against each other* -- structural laws that no single run can
establish:

* **arrival determinism** -- a scenario's arrival process draws from
  streams no policy decision touches, so every policy must observe the
  *identical* arrival count for the same scenario.  A mismatch means a
  policy leaked into workload generation (or the thinning process lost
  its independence).
* **result sanity** -- every result's counts add up (served =
  completed + missed <= arrivals), ratios and utilisations are in
  range; delegated to the invariant checker's result law.
* **aggregate policy ordering** -- across the whole matrix, MinMax's
  mean miss ratio must not exceed Max's by more than a tolerance: the
  paper's central finding (Section 5.1: Max's insistence on maximum
  allocations is the worst strategy under load) restated as a
  structural regression guard.  Individual scenarios may flip the
  ordering (small samples, weird mixes); the aggregate must not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments import runner
from repro.policies import DEFAULT_POLICIES
from repro.rtdbs.invariants import InvariantChecker
from repro.rtdbs.system import SimulationResult
from repro.scenarios import Scenario, ScenarioGenerator

#: Aggregate-ordering tolerance: MinMax's mean miss ratio may exceed
#: Max's by at most this much before the shootout fails.
ORDERING_TOLERANCE = 0.05


@dataclass
class ShootoutReport:
    """Everything one shootout produced: results, failures, rendering."""

    scenarios: List[Scenario]
    policies: Tuple[str, ...]
    #: ``results[scenario_index][policy]``.
    results: List[Dict[str, SimulationResult]]
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cross-check passed."""
        return not self.failures

    def mean_miss_ratio(self, policy: str) -> float:
        """Matrix-wide miss ratio of one policy (total missed / served)."""
        served = sum(r[policy].served for r in self.results if policy in r)
        missed = sum(r[policy].missed for r in self.results if policy in r)
        return missed / served if served else 0.0

    def render(self) -> str:
        """Plain-text summary table plus any failures."""
        headers = ["scenario", "hash", "arrivals"] + [
            f"miss[{policy}]" for policy in self.policies
        ]
        rows = []
        for scenario, by_policy in zip(self.scenarios, self.results):
            any_result = next(iter(by_policy.values()))
            rows.append(
                [scenario.name, scenario.content_hash[:10], any_result.arrivals]
                + [round(by_policy[policy].miss_ratio, 3) for policy in self.policies]
            )
        rows.append(
            ["(matrix mean)", "", sum(r[self.policies[0]].arrivals for r in self.results)]
            + [round(self.mean_miss_ratio(policy), 3) for policy in self.policies]
        )
        table = format_table(
            headers, rows, title="Scenario shootout: miss ratio by policy"
        )
        if self.failures:
            table += "\n\nCROSS-CHECK FAILURES:\n" + "\n".join(
                f"  - {failure}" for failure in self.failures
            )
        else:
            table += "\n\nAll cross-checks passed."
        return table


def scenario_shootout(
    count: int = 15,
    families: Optional[Sequence[str]] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    scenario_seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
    invariants: bool = True,
) -> ShootoutReport:
    """Run the (scenario x policy) matrix and cross-check the results.

    The whole matrix is submitted as **one** :func:`runner.run_many`
    batch, so it saturates the worker pool and lands in the persistent
    cache under each scenario's content-hashed key.
    """
    policy_list = tuple(policies)
    scenarios = ScenarioGenerator(scenario_seed).batch(count, families)
    specs = [
        scenario.run_spec(policy, invariants=invariants)
        for scenario in scenarios
        for policy in policy_list
    ]
    flat = runner.run_many(specs, jobs=jobs, cache=cache)
    cursor = iter(flat)
    results: List[Dict[str, SimulationResult]] = [
        {policy: next(cursor) for policy in policy_list} for _ in scenarios
    ]
    report = ShootoutReport(
        scenarios=scenarios, policies=policy_list, results=results
    )
    _cross_check(report)
    return report


def _cross_check(report: ShootoutReport) -> None:
    """Populate ``report.failures`` with every violated structural law."""
    checker = InvariantChecker()  # unattached: only the result law is used
    for scenario, by_policy in zip(report.scenarios, report.results):
        arrival_counts = {
            policy: result.arrivals for policy, result in by_policy.items()
        }
        if len(set(arrival_counts.values())) > 1:
            report.failures.append(
                f"{scenario.name} ({scenario.content_hash[:10]}): arrival counts "
                f"differ across policies: {arrival_counts} -- the workload is "
                f"policy-dependent; repro: {scenario.repro_command()}"
            )
        for policy, result in by_policy.items():
            try:
                checker.check_result(result)
            except AssertionError as error:
                report.failures.append(
                    f"{scenario.name} x {policy}: {error}; "
                    f"repro: {scenario.repro_command(policy)}"
                )
    if "minmax" in report.policies and "max" in report.policies:
        minmax_mean = report.mean_miss_ratio("minmax")
        max_mean = report.mean_miss_ratio("max")
        if minmax_mean > max_mean + ORDERING_TOLERANCE:
            report.failures.append(
                f"aggregate ordering violated: MinMax mean miss ratio "
                f"{minmax_mean:.3f} exceeds Max's {max_mean:.3f} by more than "
                f"{ORDERING_TOLERANCE} -- the paper's Section 5.1 ordering "
                f"inverted across the matrix"
            )
