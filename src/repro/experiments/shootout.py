"""The differential scenario shootout: matrix x policies, cross-checked.

``scenario_shootout`` fans a generated scenario matrix across all
memory policies through the cached parallel engine (each grid point
runs with the invariant checker attached), then cross-checks the
results *against each other* -- structural laws that no single run can
establish:

* **arrival determinism** -- a scenario's arrival process draws from
  streams no policy decision touches, so every policy must observe the
  *identical* arrival count for the same scenario.  A mismatch means a
  policy leaked into workload generation (or the thinning process lost
  its independence).
* **result sanity** -- every result's counts add up (served =
  completed + missed <= arrivals), ratios and utilisations are in
  range; delegated to the invariant checker's result law.
* **aggregate policy ordering** -- across the whole matrix, MinMax's
  mean miss ratio must not exceed Max's by more than a tolerance: the
  paper's central finding (Section 5.1: Max's insistence on maximum
  allocations is the worst strategy under load) restated as a
  structural regression guard.  Individual scenarios may flip the
  ordering (small samples, weird mixes); the aggregate must not.

With ``regret=True`` every (scenario, policy) cell is additionally
traced and handed to the clairvoyant oracle (:mod:`repro.oracle`),
adding two more laws:

* **regret non-negativity** -- the oracle's miss count lower-bounds
  every realisable schedule's, so ``policy misses - oracle misses``
  must be >= 0 in every cell; a negative regret means the oracle's
  relaxation (or the solver) is broken.
* **oracle consistency** -- the trace the oracle consumed must agree
  with the engine's cached result for the same cell (same departed
  count, same miss count): the recorder faithfully replays the run.

The report is emitted through the unified shootout report API
(:mod:`repro.analysis.report`): a policy-major summary table, the
per-scenario miss matrix as a section, and schema-versioned
``--json`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import (
    Column,
    PolicyRow,
    ShootoutReport,
    check_fail,
    check_pass,
    format_table,
)
from repro.experiments import runner
from repro.policies import DEFAULT_POLICIES
from repro.rtdbs.invariants import InvariantChecker
from repro.rtdbs.system import SimulationResult
from repro.scenarios import Scenario, ScenarioGenerator

#: Aggregate-ordering tolerance: MinMax's mean miss ratio may exceed
#: Max's by at most this much before the shootout fails.
ORDERING_TOLERANCE = 0.05


@dataclass
class ScenarioShootoutReport:
    """Everything one shootout produced: results, failures, rendering."""

    scenarios: List[Scenario]
    policies: Tuple[str, ...]
    #: ``results[scenario_index][policy]``.
    results: List[Dict[str, SimulationResult]]
    failures: List[str] = field(default_factory=list)
    #: Cross-check verdicts (``{name, ok, detail}``) for ``--json``.
    checks: List[Dict[str, object]] = field(default_factory=list)
    #: ``oracle[scenario_index][policy]`` when run with ``regret=True``.
    oracle: Optional[List[Dict[str, object]]] = None

    @property
    def ok(self) -> bool:
        """True when every cross-check passed."""
        return not self.failures

    def mean_miss_ratio(self, policy: str) -> float:
        """Matrix-wide miss ratio of one policy (total missed / served)."""
        served = sum(r[policy].served for r in self.results if policy in r)
        missed = sum(r[policy].missed for r in self.results if policy in r)
        return missed / served if served else 0.0

    def oracle_misses(self, policy: str) -> Optional[int]:
        """Matrix-wide clairvoyant miss count for one policy's traces."""
        if self.oracle is None:
            return None
        return sum(cell[policy].misses for cell in self.oracle if policy in cell)

    def regret(self, policy: str) -> Optional[int]:
        """Matrix-wide ``policy misses - oracle misses`` (>= 0 when sound)."""
        oracle = self.oracle_misses(policy)
        if oracle is None:
            return None
        missed = sum(r[policy].missed for r in self.results if policy in r)
        return missed - oracle

    def regret_ratio(self, policy: str) -> Optional[float]:
        """Miss-ratio gap: policy mean miss ratio minus the oracle's."""
        if self.oracle is None:
            return None
        served = sum(
            cell[policy].query_count for cell in self.oracle if policy in cell
        )
        misses = self.oracle_misses(policy) or 0
        oracle_ratio = misses / served if served else 0.0
        return self.mean_miss_ratio(policy) - oracle_ratio

    def matrix_section(self) -> str:
        """The per-scenario miss matrix (one row per grid point)."""
        headers = ["scenario", "hash", "arrivals"] + [
            f"miss[{policy}]" for policy in self.policies
        ]
        rows = []
        for scenario, by_policy in zip(self.scenarios, self.results):
            any_result = next(iter(by_policy.values()))
            rows.append(
                [scenario.name, scenario.content_hash[:10], any_result.arrivals]
                + [round(by_policy[policy].miss_ratio, 3) for policy in self.policies]
            )
        rows.append(
            ["(matrix mean)", "", sum(r[self.policies[0]].arrivals for r in self.results)]
            + [round(self.mean_miss_ratio(policy), 3) for policy in self.policies]
        )
        return format_table(
            headers, rows, title="Scenario shootout: miss ratio by policy"
        )

    def unified(self) -> ShootoutReport:
        """Project into the shared :class:`ShootoutReport` surface."""
        columns = [
            Column("arrivals"),
            Column("served"),
            Column("completed"),
            Column("missed"),
            Column("miss_ratio", digits=3),
        ]
        if self.oracle is not None:
            columns += [
                Column("oracle_misses", header="oracle"),
                Column("regret"),
                Column("regret_ratio", digits=3),
            ]
        rows = []
        for policy in self.policies:
            cells = [r[policy] for r in self.results if policy in r]
            values: Dict[str, object] = {
                "arrivals": sum(r.arrivals for r in cells),
                "served": sum(r.served for r in cells),
                "completed": sum(r.completed for r in cells),
                "missed": sum(r.missed for r in cells),
                "miss_ratio": self.mean_miss_ratio(policy),
            }
            if self.oracle is not None:
                values["oracle_misses"] = self.oracle_misses(policy)
                values["regret"] = self.regret(policy)
                values["regret_ratio"] = self.regret_ratio(policy)
            rows.append(PolicyRow(policy=policy, values=values))
        return ShootoutReport(
            kind="scenario-shootout",
            title="Scenario shootout: policy summary",
            columns=columns,
            rows=rows,
            meta={
                "scenarios": len(self.scenarios),
                "scenario_hashes": [s.content_hash for s in self.scenarios],
                "regret": self.oracle is not None,
            },
            sections=[self.matrix_section()],
            checks=self.checks,
            failures=self.failures,
        )

    def render(self) -> str:
        """Plain-text summary, matrix, and cross-check verdicts."""
        return self.unified().render()

    def to_json(self) -> Dict[str, object]:
        return self.unified().to_json()

    def save_json(self, path) -> None:
        self.unified().save_json(path)


def scenario_shootout(
    count: int = 15,
    families: Optional[Sequence[str]] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    scenario_seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
    invariants: bool = True,
    regret: bool = False,
) -> ScenarioShootoutReport:
    """Run the (scenario x policy) matrix and cross-check the results.

    The whole matrix is submitted as **one** :func:`runner.run_many`
    batch, so it saturates the worker pool and lands in the persistent
    cache under each scenario's content-hashed key.  With ``regret``
    each cell is additionally traced and solved by the clairvoyant
    oracle (cached under its own content hash), adding the regret
    columns and the two oracle laws to the cross-check.
    """
    policy_list = tuple(policies)
    scenarios = ScenarioGenerator(scenario_seed).batch(count, families)
    specs = [
        scenario.run_spec(policy, invariants=invariants)
        for scenario in scenarios
        for policy in policy_list
    ]
    flat = runner.run_many(specs, jobs=jobs, cache=cache)
    cursor = iter(flat)
    results: List[Dict[str, SimulationResult]] = [
        {policy: next(cursor) for policy in policy_list} for _ in scenarios
    ]
    oracle: Optional[List[Dict[str, object]]] = None
    if regret:
        from repro.oracle import solve_scenario

        oracle = [
            {
                policy: solve_scenario(
                    scenario, policy, cache=cache, invariants=invariants
                )
                for policy in policy_list
            }
            for scenario in scenarios
        ]
    report = ScenarioShootoutReport(
        scenarios=scenarios, policies=policy_list, results=results, oracle=oracle
    )
    _cross_check(report)
    return report


def _cross_check(report: ScenarioShootoutReport) -> None:
    """Populate ``report.failures`` with every violated structural law."""
    checker = InvariantChecker()  # unattached: only the result law is used
    for scenario, by_policy in zip(report.scenarios, report.results):
        arrival_counts = {
            policy: result.arrivals for policy, result in by_policy.items()
        }
        if len(set(arrival_counts.values())) > 1:
            check_fail(
                report,
                "arrival-determinism",
                f"{scenario.name} ({scenario.content_hash[:10]}): arrival counts "
                f"differ across policies: {arrival_counts} -- the workload is "
                f"policy-dependent; repro: {scenario.repro_command()}",
            )
        for policy, result in by_policy.items():
            try:
                checker.check_result(result)
            except AssertionError as error:
                check_fail(
                    report,
                    "result-sanity",
                    f"{scenario.name} x {policy}: {error}; "
                    f"repro: {scenario.repro_command(policy)}",
                )
    if "minmax" in report.policies and "max" in report.policies:
        minmax_mean = report.mean_miss_ratio("minmax")
        max_mean = report.mean_miss_ratio("max")
        if minmax_mean > max_mean + ORDERING_TOLERANCE:
            check_fail(
                report,
                "aggregate-ordering",
                f"aggregate ordering violated: MinMax mean miss ratio "
                f"{minmax_mean:.3f} exceeds Max's {max_mean:.3f} by more than "
                f"{ORDERING_TOLERANCE} -- the paper's Section 5.1 ordering "
                f"inverted across the matrix",
            )
    if report.oracle is not None:
        _cross_check_oracle(report)
    for name in (
        "arrival-determinism",
        "result-sanity",
        "aggregate-ordering",
    ):
        check_pass(report, name)
    if report.oracle is not None:
        for name in ("regret-nonnegative", "oracle-consistency"):
            check_pass(report, name)


def _cross_check_oracle(report: ScenarioShootoutReport) -> None:
    """The two oracle laws, checked cell by cell."""
    for scenario, by_policy, by_oracle in zip(
        report.scenarios, report.results, report.oracle
    ):
        for policy, oracle in by_oracle.items():
            result = by_policy[policy]
            if oracle.recorded_misses != result.missed or (
                oracle.query_count != result.served
            ):
                check_fail(
                    report,
                    "oracle-consistency",
                    f"{scenario.name} x {policy}: oracle trace saw "
                    f"{oracle.query_count} departures / {oracle.recorded_misses} "
                    f"misses but the engine recorded {result.served} / "
                    f"{result.missed} -- the recorder diverged from the run; "
                    f"repro: {scenario.repro_command(policy)}",
                )
            if oracle.regret < 0:
                check_fail(
                    report,
                    "regret-nonnegative",
                    f"{scenario.name} x {policy}: negative regret "
                    f"{oracle.regret} (policy missed {oracle.recorded_misses}, "
                    f"oracle missed {oracle.misses}, tag={oracle.tag}) -- the "
                    f"oracle relaxation no longer lower-bounds the broker; "
                    f"repro: {scenario.repro_command(policy)}",
                )
