"""The experiment execution engine: parallel fan-out plus result caching.

Reproducing Section 5 means running a grid of independent fixed-seed
simulations -- (policy x arrival-rate) points that share nothing at run
time.  The engine exploits that shape three ways:

* **Canonical cache keys.**  Every run is identified by a content hash
  of its complete parameter record -- the :class:`SimulationConfig`
  (walked field by field), the policy name, the
  :class:`ExperimentSettings`, and, for runs with a ``setup`` hook, an
  explicit ``setup_signature`` describing the hook's behaviour.  The
  key is independent of process, platform, and ``PYTHONHASHSEED``, and
  is salted with :data:`CACHE_VERSION` so stale entries can never
  outlive a semantic change to the simulator.

* **Process-pool fan-out.**  :func:`run_many` submits a whole batch of
  :class:`RunSpec`\\ s across ``jobs`` worker processes
  (``--jobs`` / ``REPRO_JOBS``; default: all cores).  Each simulation
  carries its own seed and builds its own :class:`RTDBSystem`, so
  parallel results are bit-identical to serial execution.

* **A persistent on-disk cache.**  Results are pickled under
  ``<cache-dir>/v<CACHE_VERSION>/<key>.pkl`` (``--cache-dir`` /
  ``REPRO_CACHE_DIR``; default ``.repro_cache``), so warm re-runs of
  ``pytest benchmarks/`` or the CLI skip the simulations entirely.  An
  in-process memo sits in front of the disk so repeated calls within
  one session also share the identical result object.

Runs with a ``setup`` hook but no ``setup_signature`` raise
:class:`SetupSignatureError` rather than silently bypassing the cache;
pass ``cache=False`` to run such a hook uncached on purpose.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from hashlib import sha256
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.policies.registry import make_policy
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.system import RTDBSystem, SimulationResult

#: Cache salt.  Bump whenever simulation semantics change (event
#: ordering, cost model, statistics) so previously cached results are
#: invalidated wholesale; the salt both prefixes the hashed material
#: and names the on-disk directory (``v<CACHE_VERSION>/``).
#: v2: ``QueryClass`` grew the ``modulation`` field (PR 3) -- the walked
#: config record, and with it every key, changed shape.
CACHE_VERSION = 2

#: Default persistent cache location (relative to the working
#: directory; override with ``REPRO_CACHE_DIR`` or ``--cache-dir``).
DEFAULT_CACHE_DIR = ".repro_cache"


class SetupSignatureError(ValueError):
    """A ``setup`` hook was supplied without a ``setup_signature``.

    Caching such a run would be unsound (two different hooks with the
    same config would collide) and silently skipping the cache hides
    the full cost of every warm re-run, so the engine refuses instead.
    """


@dataclass(frozen=True)
class ExperimentSettings:
    """Execution scale shared by every experiment runner.

    The default ``scale=0.1`` is the paper's own small-scale variant
    (Section 5.7); ``scale=1.0`` reproduces the full-size runs at ~10x
    the wall-clock cost.  ``duration`` is the simulated horizon per
    data point.
    """

    scale: float = 0.1
    duration: float = 3600.0
    seed: int = 7
    warmup: float = 0.0
    max_completions: Optional[int] = None


@dataclass(frozen=True)
class RunSpec:
    """One grid point: everything needed to execute one simulation.

    ``setup`` receives the built :class:`RTDBSystem` before the run
    starts (experiment drivers use it to schedule mid-run workload
    changes); it must be picklable for parallel execution, so use a
    module-level callable (see ``figures._PhaseSetup``), not a closure.
    ``setup_signature`` is the hook's contribution to the cache key and
    is mandatory whenever a ``setup`` run is cached.
    """

    config: SimulationConfig
    policy: str
    settings: ExperimentSettings = ExperimentSettings()
    setup: Optional[Callable[[RTDBSystem], None]] = None
    setup_signature: Optional[tuple] = None


# ----------------------------------------------------------------------
# Canonical content-hash cache keys
# ----------------------------------------------------------------------
def _canonical(value):
    """A deterministic, hashable-by-repr projection of a parameter tree.

    Dataclasses are walked field by field (type name included, so two
    different parameter records never collide), mappings are sorted,
    and only repr-stable leaf types are accepted -- anything else
    (functions, open handles) is a hard error rather than a silently
    unstable key.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _canonical(getattr(value, f.name))) for f in fields(value)
        )
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            sorted((str(k), _canonical(v)) for k, v in value.items())
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}; "
        "pass only plain data (or give the run an explicit setup_signature)"
    )


def canonical_record(value):
    """Public face of :func:`_canonical` (scenario hashing reuses it)."""
    return _canonical(value)


def cache_key(
    config: SimulationConfig,
    policy: str,
    settings: ExperimentSettings,
    setup_signature: Optional[tuple] = None,
) -> str:
    """The canonical content-hash key of one simulation run."""
    material = (
        "repro-experiment",
        CACHE_VERSION,
        str(policy),
        _canonical(config),
        _canonical(settings),
        None if setup_signature is None else _canonical(setup_signature),
    )
    return sha256(repr(material).encode("utf-8")).hexdigest()


def spec_key(spec: RunSpec) -> str:
    """Cache key of a :class:`RunSpec`; raises on un-signed setup hooks."""
    if spec.setup is not None and spec.setup_signature is None:
        raise SetupSignatureError(
            "a run with a setup hook cannot be cached without a "
            "setup_signature describing the hook; pass setup_signature=... "
            "or disable caching for this run with cache=False"
        )
    return cache_key(spec.config, spec.policy, spec.settings, spec.setup_signature)


# ----------------------------------------------------------------------
# Persistent on-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle-per-result store under ``<root>/v<CACHE_VERSION>/``.

    Writes are atomic (temp file + rename) so concurrent workers and
    parallel pytest sessions can share one directory; unreadable or
    mismatched entries are treated as misses and deleted.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(
            root
            if root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self.version = CACHE_VERSION
        self.directory = self.root / f"v{self.version}"

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt / truncated / incompatible entry: drop it.
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
        ):
            path.unlink(missing_ok=True)
            return None
        return payload.get("result")

    def put(self, key: str, result: SimulationResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        handle_fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".write-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle_fd, "wb") as handle:
                pickle.dump(
                    {"version": self.version, "key": key, "result": result},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(temp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:
                pass
            raise

    def clear(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.pkl"))
        except OSError:
            return 0


# ----------------------------------------------------------------------
# Engine state: defaults, stats, configuration
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Counters for one engine session (reset with :func:`reset_stats`)."""

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memo_hits + self.disk_hits


_memo: Dict[str, SimulationResult] = {}
stats = EngineStats()

#: Session overrides installed by :func:`configure` (CLI flags,
#: benchmark fixtures); ``None`` means "fall back to the environment".
_jobs_override: Optional[int] = None
_cache_dir_override: Optional[str] = None
_cache_enabled_override: Optional[bool] = None

_FALSEY = {"0", "false", "no", "off", ""}


def configure(
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    cache_enabled: Optional[bool] = None,
) -> None:
    """Install session-wide engine defaults (CLI flags, test fixtures).

    Only non-``None`` arguments change state; the environment variables
    ``REPRO_JOBS``, ``REPRO_CACHE_DIR`` and ``REPRO_NO_CACHE`` fill any
    remaining gaps.
    """
    global _jobs_override, _cache_dir_override, _cache_enabled_override
    if jobs is not None:
        _jobs_override = max(1, int(jobs))
    if cache_dir is not None:
        _cache_dir_override = os.fspath(cache_dir)
    if cache_enabled is not None:
        _cache_enabled_override = bool(cache_enabled)


def default_jobs() -> int:
    """Worker count when a call does not pass ``jobs`` explicitly."""
    if _jobs_override is not None:
        return _jobs_override
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def cache_enabled() -> bool:
    if _cache_enabled_override is not None:
        return _cache_enabled_override
    return os.environ.get("REPRO_NO_CACHE", "").lower() in _FALSEY


def cache_dir() -> Path:
    if _cache_dir_override is not None:
        return Path(_cache_dir_override)
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def _active_cache() -> Optional[ResultCache]:
    if not cache_enabled():
        return None
    return ResultCache(cache_dir())


def reset_stats() -> None:
    global stats
    stats = EngineStats()


def clear_cache(disk: bool = False) -> None:
    """Drop memoised runs; with ``disk=True`` also wipe the disk cache."""
    _memo.clear()
    if disk:
        ResultCache(cache_dir()).clear()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(spec: RunSpec) -> SimulationResult:
    """Build and run one simulation (also the process-pool entry point)."""
    system = RTDBSystem(spec.config, spec.policy)
    if spec.setup is not None:
        spec.setup(system)
    settings = spec.settings
    return system.run(
        duration=settings.duration,
        warmup=settings.warmup,
        max_completions=settings.max_completions,
    )


def run_many(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[SimulationResult]:
    """Run a batch of grid points, in parallel, through the caches.

    Cached points (memo first, then disk) are served without touching a
    worker; the remaining misses are fanned out across ``jobs`` worker
    processes (default: :func:`default_jobs`).  Results come back in
    spec order and are bit-identical to serial execution -- every run
    is an isolated fixed-seed simulation.

    ``cache=False`` bypasses both cache layers entirely (and permits
    un-signed ``setup`` hooks).
    """
    spec_list = list(specs)
    # Resolve every distinct policy spec through the registry up front,
    # so a typo fails here instead of deep inside a worker process.
    for policy_spec in {spec.policy for spec in spec_list}:
        make_policy(policy_spec)
    results: List[Optional[SimulationResult]] = [None] * len(spec_list)
    keys: List[Optional[str]] = [None] * len(spec_list)
    disk = _active_cache() if cache else None
    pending: List[Tuple[int, RunSpec]] = []
    pending_by_key: Dict[str, int] = {}
    duplicate_of: Dict[int, int] = {}
    for index, spec in enumerate(spec_list):
        if not cache:
            pending.append((index, spec))
            continue
        key = spec_key(spec)
        keys[index] = key
        memo_hit = _memo.get(key)
        if memo_hit is not None:
            stats.memo_hits += 1
            results[index] = memo_hit
            continue
        if key in pending_by_key:
            # Same grid point appears twice in one batch: run it once.
            duplicate_of[index] = pending_by_key[key]
            continue
        if disk is not None:
            disk_hit = disk.get(key)
            if disk_hit is not None:
                stats.disk_hits += 1
                _memo[key] = disk_hit
                results[index] = disk_hit
                continue
        stats.misses += 1
        pending_by_key[key] = index
        pending.append((index, spec))

    worker_count = min(max(1, jobs if jobs is not None else default_jobs()), len(pending))
    if worker_count > 1:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            fresh = list(pool.map(_execute, [spec for _index, spec in pending]))
    else:
        fresh = [_execute(spec) for _index, spec in pending]

    for (index, _spec), result in zip(pending, fresh):
        results[index] = result
        key = keys[index]
        if key is not None:
            _memo[key] = result
            if disk is not None:
                disk.put(key, result)
                stats.stores += 1
    for index, source_index in duplicate_of.items():
        results[index] = results[source_index]
    return results  # type: ignore[return-value]


def run_config(
    config: SimulationConfig,
    policy: str,
    settings: ExperimentSettings,
    setup: Optional[Callable[[RTDBSystem], None]] = None,
    setup_signature: Optional[tuple] = None,
    cache: bool = True,
) -> SimulationResult:
    """Run (or fetch from the caches) one simulation.

    Single-point convenience wrapper over :func:`run_many`; always
    executes in-process (no pool for one run).
    """
    spec = RunSpec(
        config=config,
        policy=policy,
        settings=settings,
        setup=setup,
        setup_signature=setup_signature,
    )
    return run_many([spec], jobs=1, cache=cache)[0]


def sweep(
    configs: Iterable[Tuple[float, SimulationConfig]],
    policies: Iterable[str],
    settings: ExperimentSettings,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[str, List[Tuple[float, SimulationResult]]]:
    """Run a (x-value, config) grid for several policies.

    The entire (policy x config) grid is submitted as **one**
    :func:`run_many` batch, so a sweep saturates the worker pool
    instead of running policy by policy.  Returns
    ``{policy: [(x, result), ...]}`` with results in x order.
    """
    config_list = list(configs)
    policy_list = list(policies)
    specs = [
        RunSpec(config=config, policy=policy, settings=settings)
        for policy in policy_list
        for _x, config in config_list
    ]
    flat = run_many(specs, jobs=jobs, cache=cache)
    output: Dict[str, List[Tuple[float, SimulationResult]]] = {}
    cursor = iter(flat)
    for policy in policy_list:
        output[policy] = [(x, next(cursor)) for x, _config in config_list]
    return output
