"""Shared experiment execution with in-process memoisation.

Several figures are different projections of the *same* simulation runs
(Figures 3, 4, 5, 7 and Table 7 all come from the baseline sweep), so
runs are cached by their full parameter signature: repeated calls --
e.g. from separate benchmark tests in one pytest session -- pay for
each distinct simulation once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.system import RTDBSystem, SimulationResult


@dataclass(frozen=True)
class ExperimentSettings:
    """Execution scale shared by every experiment runner.

    The default ``scale=0.1`` is the paper's own small-scale variant
    (Section 5.7); ``scale=1.0`` reproduces the full-size runs at ~10x
    the wall-clock cost.  ``duration`` is the simulated horizon per
    data point.
    """

    scale: float = 0.1
    duration: float = 3600.0
    seed: int = 7
    warmup: float = 0.0
    max_completions: Optional[int] = None


_CACHE: Dict[tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def run_config(
    config: SimulationConfig,
    policy: str,
    settings: ExperimentSettings,
    cache_key: Optional[tuple] = None,
    setup: Optional[Callable[[RTDBSystem], None]] = None,
) -> SimulationResult:
    """Run (or fetch from cache) one simulation.

    ``setup`` receives the built system before the run starts --
    experiment drivers use it to schedule mid-run workload changes.
    Runs with a ``setup`` hook are cached only when ``cache_key``
    includes enough information to identify the hook's behaviour.
    """
    key = cache_key
    if key is None and setup is None:
        key = _config_signature(config, policy, settings)
    if key is not None and key in _CACHE:
        return _CACHE[key]
    system = RTDBSystem(config, policy)
    if setup is not None:
        setup(system)
    result = system.run(
        duration=settings.duration,
        warmup=settings.warmup,
        max_completions=settings.max_completions,
    )
    if key is not None:
        _CACHE[key] = result
    return result


def sweep(
    configs: Iterable[Tuple[float, SimulationConfig]],
    policies: Iterable[str],
    settings: ExperimentSettings,
) -> Dict[str, List[Tuple[float, SimulationResult]]]:
    """Run a (x-value, config) grid for several policies.

    Returns ``{policy: [(x, result), ...]}`` with results in x order.
    """
    config_list = list(configs)
    output: Dict[str, List[Tuple[float, SimulationResult]]] = {}
    for policy in policies:
        series: List[Tuple[float, SimulationResult]] = []
        for x_value, config in config_list:
            series.append((x_value, run_config(config, policy, settings)))
        output[policy] = series
    return output


def _config_signature(
    config: SimulationConfig, policy: str, settings: ExperimentSettings
) -> tuple:
    classes = tuple(
        (c.name, c.query_type, c.rel_groups, round(c.arrival_rate, 9), c.slack_range)
        for c in config.workload.classes
    )
    groups = tuple((g.rel_per_disk, g.size_range) for g in config.database.groups)
    resources = config.resources
    return (
        policy,
        classes,
        groups,
        config.database.tuple_size,
        config.workload.fudge_factor,
        resources.num_disks,
        resources.memory_pages,
        resources.num_cylinders,
        resources.cpu_mips,
        config.pmm,
        config.seed,
        config.temp_placement,
        config.firm_deadlines,
        settings,
    )
