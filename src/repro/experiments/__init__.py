"""Experiment harness: one runner per figure/table of Section 5.

Execution goes through :mod:`repro.experiments.runner`, a parallel
engine with a persistent on-disk result cache -- see that module for
the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` knobs.
"""

from repro.experiments.runner import (
    CACHE_VERSION,
    ExperimentSettings,
    ResultCache,
    RunSpec,
    SetupSignatureError,
    cache_key,
    clear_cache,
    configure,
    run_config,
    run_many,
    sweep,
)
from repro.experiments.figures import (
    figure_03_baseline_miss_ratio,
    figure_04_baseline_disk_util,
    figure_05_baseline_mpl,
    figure_06_pmm_mpl_trace,
    figure_07_memory_fluctuations,
    figure_08_contention_miss_ratio,
    figure_09_contention_disk_util,
    figure_10_contention_mpl,
    figure_11_minmax_n_sweep,
    figure_12_14_workload_changes,
    figure_15_change_mpl_trace,
    figure_16_external_sort,
    figure_17_multiclass_system,
    figure_18_multiclass_perclass,
    section_54_utillow_sensitivity,
    section_57_scalability,
    table_07_baseline_timings,
)

__all__ = [
    "CACHE_VERSION",
    "ExperimentSettings",
    "ResultCache",
    "RunSpec",
    "SetupSignatureError",
    "cache_key",
    "clear_cache",
    "configure",
    "run_many",
    "figure_03_baseline_miss_ratio",
    "figure_04_baseline_disk_util",
    "figure_05_baseline_mpl",
    "figure_06_pmm_mpl_trace",
    "figure_07_memory_fluctuations",
    "figure_08_contention_miss_ratio",
    "figure_09_contention_disk_util",
    "figure_10_contention_mpl",
    "figure_11_minmax_n_sweep",
    "figure_12_14_workload_changes",
    "figure_15_change_mpl_trace",
    "figure_16_external_sort",
    "figure_17_multiclass_system",
    "figure_18_multiclass_perclass",
    "run_config",
    "section_54_utillow_sensitivity",
    "section_57_scalability",
    "sweep",
    "table_07_baseline_timings",
]
