"""Resource-request primitives yielded by query operators.

An operator is a generator producing a stream of these requests; the
query manager executes each one against the simulated CPU and disks
(charging the Table 4 ``start an I/O`` CPU cost before every disk
access) and resumes the operator when it completes.

These are deliberately plain ``__slots__`` classes rather than frozen
dataclasses: tens of thousands are created per simulated second, and
``object.__setattr__``-based frozen initialisation dominated operator
CPU time in profiles.
"""

from __future__ import annotations

#: Disk access kinds (mirror :mod:`repro.rtdbs.disk`).
READ = "read"
WRITE = "write"


class CPUBurst:
    """Consume CPU: ``instructions`` at the query's ED priority."""

    __slots__ = ("instructions",)

    def __init__(self, instructions: float):
        if instructions < 0:
            raise ValueError(f"negative CPU burst: {instructions}")
        self.instructions = instructions

    def __repr__(self) -> str:
        return f"CPUBurst(instructions={self.instructions!r})"


class DiskAccess:
    """One disk access of ``npages`` starting at ``start_page``.

    ``sequential`` distinguishes block-prefetch scans from the
    page-at-a-time reads of a sort's merge phase (the paper's disk
    cache is bypassed during merging).  ``cacheable`` marks operand
    (base relation) reads, which may be served by -- and are retained
    in -- the buffer pool's unreserved LRU region; temp-file traffic is
    transient and bypasses it.

    ``cpu`` carries the instructions of the per-block processing burst
    that precedes this access (hashing/sorting the previous block).
    The query manager charges it in the same CPU submission as the
    Table 4 "start an I/O" cost, so each page-block costs the operator
    one scheduling decision instead of two -- total CPU work and the
    CPU-before-disk ordering are unchanged.
    """

    __slots__ = ("kind", "disk", "start_page", "npages", "sequential", "cacheable", "cpu")

    def __init__(
        self,
        kind: str,
        disk: int,
        start_page: int,
        npages: int,
        sequential: bool = True,
        cacheable: bool = False,
        cpu: float = 0.0,
    ):
        if kind != READ and kind != WRITE:
            raise ValueError(f"unknown disk access kind {kind!r}")
        if npages <= 0:
            raise ValueError(f"disk access needs at least one page, got {npages}")
        if start_page < 0:
            raise ValueError(f"negative start page: {start_page}")
        if cpu < 0:
            raise ValueError(f"negative attached CPU burst: {cpu}")
        self.kind = kind
        self.disk = disk
        self.start_page = start_page
        self.npages = npages
        self.sequential = sequential
        self.cacheable = cacheable
        self.cpu = cpu

    def __repr__(self) -> str:
        return (
            f"DiskAccess(kind={self.kind!r}, disk={self.disk!r}, "
            f"start_page={self.start_page!r}, npages={self.npages!r}, "
            f"sequential={self.sequential!r}, cacheable={self.cacheable!r}, "
            f"cpu={self.cpu!r})"
        )


class AllocationWait:
    """The operator holds zero memory; sleep until the grant changes."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "AllocationWait()"
