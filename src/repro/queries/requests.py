"""Resource-request primitives yielded by query operators.

An operator is a generator producing a stream of these requests; the
query manager executes each one against the simulated CPU and disks
(charging the Table 4 ``start an I/O`` CPU cost before every disk
access) and resumes the operator when it completes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Disk access kinds (mirror :mod:`repro.rtdbs.disk`).
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class CPUBurst:
    """Consume CPU: ``instructions`` at the query's ED priority."""

    instructions: float

    def __post_init__(self):
        if self.instructions < 0:
            raise ValueError(f"negative CPU burst: {self.instructions}")


@dataclass(frozen=True)
class DiskAccess:
    """One disk access of ``npages`` starting at ``start_page``.

    ``sequential`` distinguishes block-prefetch scans from the
    page-at-a-time reads of a sort's merge phase (the paper's disk
    cache is bypassed during merging).  ``cacheable`` marks operand
    (base relation) reads, which may be served by -- and are retained
    in -- the buffer pool's unreserved LRU region; temp-file traffic is
    transient and bypasses it.
    """

    kind: str  # READ or WRITE
    disk: int
    start_page: int
    npages: int
    sequential: bool = True
    cacheable: bool = False

    def __post_init__(self):
        if self.kind not in (READ, WRITE):
            raise ValueError(f"unknown disk access kind {self.kind!r}")
        if self.npages <= 0:
            raise ValueError(f"disk access needs at least one page, got {self.npages}")
        if self.start_page < 0:
            raise ValueError(f"negative start page: {self.start_page}")


@dataclass(frozen=True)
class AllocationWait:
    """The operator holds zero memory; sleep until the grant changes."""
