"""Operator protocol and the memory-grant channel.

A :class:`MemoryGrant` is the single point of contact between the
buffer manager and a running operator: the policy writes a new page
count into it, the operator polls it between requests and reacts
(contracting partitions, splitting merge steps, suspending on zero).
The grant also counts *fluctuations* -- the per-query statistic behind
the paper's Figure 7.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Generator, Iterable, List, Optional, Union

from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess
from repro.rtdbs.config import CPUCosts
from repro.rtdbs.database import TempFile

Request = Union[CPUBurst, DiskAccess, AllocationWait]


class MemoryGrant:
    """Mutable allocation channel between policy and operator."""

    __slots__ = ("pages", "fluctuations", "_waiters", "started")

    def __init__(self, pages: int = 0):
        self.pages = int(pages)
        #: Number of allocation *changes* observed while running
        #: (the first, admission-time grant does not count).
        self.fluctuations = 0
        self._waiters: List[Callable[[], None]] = []
        #: Set once the query has begun execution; fluctuations are
        #: only counted from that point on.
        self.started = False

    def set(self, pages: int) -> None:
        """Change the allocation; wakes any suspended waiter."""
        pages = int(pages)
        if pages < 0:
            raise ValueError(f"negative allocation: {pages}")
        if pages == self.pages:
            return
        self.pages = pages
        if self.started:
            self.fluctuations += 1
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake()

    def on_change(self, callback: Callable[[], None]) -> None:
        """Register a one-shot wake-up for the next allocation change."""
        self._waiters.append(callback)


@dataclass(frozen=True)
class OperatorContext:
    """Static facts an operator needs about its environment."""

    #: Tuples per page (PageSize // TupleSize).
    tuples_per_page: int
    #: Sequential I/O unit, pages (``BlockSize``).
    block_size: int
    #: Table 4 CPU costs.
    costs: CPUCosts
    #: Allocate a contiguous temp extent on a disk; the query manager
    #: wires this to :class:`repro.rtdbs.database.TempSpace`.
    allocate_temp: Callable[[int, int], TempFile]
    #: Release a temp extent.
    release_temp: Callable[[TempFile], None]


class Operator(abc.ABC):
    """A memory-adaptive query operator.

    Subclasses expose their memory demand envelope (``min_pages`` /
    ``max_pages``), the workload characteristics PMM monitors
    (``operand_pages``, ``operand_io_count``), and a :meth:`run`
    generator producing the request stream.
    """

    def __init__(self, context: OperatorContext, grant: MemoryGrant):
        self.context = context
        self.grant = grant
        self._temp_files: List[TempFile] = []
        #: Per-block CPU work accumulated to ride on the next disk
        #: access (see :class:`repro.queries.requests.DiskAccess.cpu`).
        self._cpu_carry = 0.0

    # -- demand envelope ------------------------------------------------
    @property
    @abc.abstractmethod
    def min_pages(self) -> int:
        """Minimum workspace for multi-pass execution."""

    @property
    @abc.abstractmethod
    def max_pages(self) -> int:
        """Workspace that allows one-pass (direct) execution."""

    @property
    @abc.abstractmethod
    def operand_pages(self) -> int:
        """Total pages of the operand relation(s)."""

    @property
    def operand_io_count(self) -> int:
        """Sequential I/Os needed just to read the operand relation(s).

        This is the workload characteristic PMM's change detector
        monitors (temp-file I/O is excluded because it depends on
        allocation decisions, not on the workload).
        """
        return math.ceil(self.operand_pages / self.context.block_size)

    # -- execution -------------------------------------------------------
    @abc.abstractmethod
    def run(self) -> Generator[Request, None, None]:
        """Yield the request stream; return when the query is done."""

    # -- temp-file bookkeeping --------------------------------------------
    def _get_temp(self, disk: int, pages: int) -> TempFile:
        temp = self.context.allocate_temp(disk, pages)
        self._temp_files.append(temp)
        return temp

    def release_resources(self) -> None:
        """Free all temp extents (called on completion *and* on abort)."""
        for temp in self._temp_files:
            self.context.release_temp(temp)
        self._temp_files.clear()

    # -- helpers shared by the concrete operators -------------------------
    def _carry_cpu(self, instructions: float) -> None:
        """Accumulate a processing burst to attach to the next access."""
        self._cpu_carry += instructions

    def _take_carry(self) -> float:
        """Claim the accumulated burst (for a DiskAccess being built)."""
        carry = self._cpu_carry
        self._cpu_carry = 0.0
        return carry

    def _flush_cpu(self) -> Generator["Request", None, None]:
        """Emit any carried CPU work as a stand-alone burst.

        Called at phase boundaries and before suspending on an
        :class:`AllocationWait`, so no work is held across a suspension
        and request traces stay complete.
        """
        if self._cpu_carry > 0.0:
            burst = CPUBurst(self._cpu_carry)
            self._cpu_carry = 0.0
            yield burst

    @staticmethod
    def _log2_ceil(value: float) -> int:
        """``ceil(log2(value))`` with a floor of 1 (comparison depth)."""
        if value <= 2:
            return 1
        return max(1, math.ceil(math.log2(value)))


def drain(operator: Operator) -> List[Request]:
    """Run an operator to completion outside the simulator.

    Testing helper: executes the generator assuming every request
    succeeds instantly, returning the full request trace.  Raises if
    the operator suspends on :class:`AllocationWait` with no pending
    grant change (that would deadlock).
    """
    trace: List[Request] = []
    for request in operator.run():
        if isinstance(request, AllocationWait) and operator.grant.pages == 0:
            raise RuntimeError("operator suspended with zero grant while draining")
        trace.append(request)
    return trace
