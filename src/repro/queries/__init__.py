"""Memory-adaptive query processing primitives.

PMM assumes operators that survive having memory taken away (and given
back) mid-flight.  This package implements the two the paper uses:

* :mod:`~repro.queries.hash_join` -- Partially Preemptible Hash Join
  (PPHJ) with late contraction, expansion and priority spooling
  [Pang93a].
* :mod:`~repro.queries.sort` -- external sorting with replacement
  selection and merge steps that split / recombine under memory
  fluctuations [Pang93b].

Operators are *pure generators* of :mod:`~repro.queries.requests`
primitives (CPU bursts and disk accesses); all timing lives in the
query manager, which makes the operators directly unit-testable.
:mod:`~repro.queries.cost_model` provides the closed-form stand-alone
execution times used for deadline assignment.
"""

from repro.queries.base import MemoryGrant, Operator, OperatorContext
from repro.queries.cost_model import StandAloneCostModel
from repro.queries.hash_join import HashJoinOperator
from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess
from repro.queries.sort import ExternalSortOperator

__all__ = [
    "AllocationWait",
    "CPUBurst",
    "DiskAccess",
    "ExternalSortOperator",
    "HashJoinOperator",
    "MemoryGrant",
    "Operator",
    "OperatorContext",
    "StandAloneCostModel",
]
