"""Memory-adaptive external sorting [Pang93b].

Phase 1 uses **replacement selection** to turn the operand relation
into sorted runs (expected run length = twice the workspace for random
input).  Phase 2 repeatedly merges runs until one remains.  Adaptivity:

* if memory **shrinks** mid-merge, the executing merge step is *split*:
  the partially merged output is closed as a run, the unconsumed tails
  of the input runs are returned to the run queue, and merging resumes
  at the fan-in the new allocation supports;
* if memory **grows**, subsequent steps use the larger fan-in
  (combining steps), which reduces the number of passes.

Given its maximum requirement (the operand size) the sort completes in
memory with no temporary I/O; the minimum requirement is 3 pages (two
inputs + one output of a binary merge), per the paper's Section 3.2.
Merge-phase reads are page-at-a-time -- the paper's disk prefetch cache
is explicitly not used while merging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.queries.base import MemoryGrant, Operator, OperatorContext, Request
from repro.queries.requests import READ, WRITE, AllocationWait, CPUBurst, DiskAccess
from repro.rtdbs.database import Relation, TempFile


@dataclass
class _Run:
    """A sorted run in the temp extent."""

    start_page: int
    pages: int
    consumed: int = 0

    @property
    def remaining(self) -> int:
        return self.pages - self.consumed

    def next_page(self) -> int:
        page = self.start_page + self.consumed
        self.consumed += 1
        return page


class ExternalSortOperator(Operator):
    """Replacement-selection sort with adaptive merging."""

    MIN_PAGES = 3

    def __init__(
        self,
        context: OperatorContext,
        grant: MemoryGrant,
        relation: Relation,
        temp_disk: Optional[int] = None,
    ):
        super().__init__(context, grant)
        if relation.pages <= 0:
            raise ValueError("relation must be non-empty")
        self.relation = relation
        self.temp_disk = relation.disk if temp_disk is None else temp_disk
        # Fixed demand envelope, precomputed off the per-block path.
        pages = relation.pages
        two_pass = math.ceil(math.sqrt(pages)) + 1
        stream_friendly = math.ceil(pages / (2 * self.STREAM_FRIENDLY_FANIN)) + 2
        self._min_pages = max(self.MIN_PAGES, two_pass, stream_friendly)

        # --- dynamic state -------------------------------------------
        self.runs: List[_Run] = []
        self._temp: Optional[TempFile] = None
        self._out_cursor = 0  # allocation cursor within the temp extent

        # --- counters --------------------------------------------------
        self.pages_read = 0
        self.pages_written = 0
        self.io_count = 0
        self.merge_passes = 0

    #: Merge fan-ins at or below this stay within the per-disk prefetch
    #: cache's stream capacity, so merge reads remain sequential-priced.
    STREAM_FRIENDLY_FANIN = 5

    # ------------------------------------------------------------------
    @property
    def min_pages(self) -> int:
        """Advertised minimum demand: a *useful* two-pass workspace.

        The operator *can* run with as few as 3 pages (the paper's
        absolute floor, via repeated binary merges) and adapts down to
        that when memory is yanked mid-flight.  The demand it
        advertises to the memory policies is larger: at least the
        classic two-pass workspace ~ sqrt(R) [Shap86], and enough that
        run formation yields at most :data:`STREAM_FRIENDLY_FANIN` runs
        (workspace R/10 gives runs of R/5 pages), keeping the single
        merge pass within the disk prefetch cache's stream capacity.
        Below that envelope the merge reads lose sequential pricing and
        the sort's execution time exceeds any feasible slack, so
        admitting it with less memory is never useful (see DESIGN.md).
        """
        return self._min_pages

    @property
    def max_pages(self) -> int:
        """The operand size: sorts entirely in memory [Shap86]."""
        return self.relation.pages

    @property
    def operand_pages(self) -> int:
        """Pages of the single operand relation."""
        return self.relation.pages

    # ------------------------------------------------------------------
    def _ensure_temp(self) -> TempFile:
        if self._temp is None:
            # Ping-pong space: one full copy per side plus slack for
            # block rounding while runs from both sides coexist.
            size = 2 * self.relation.pages + 4 * self.context.block_size
            self._temp = self._get_temp(self.temp_disk, size)
        return self._temp

    def _allocate_run_space(self, pages: int) -> int:
        temp = self._ensure_temp()
        if self._out_cursor + pages > temp.pages:
            self._out_cursor = 0
        start = temp.start_page + self._out_cursor
        self._out_cursor += pages
        return start

    def _effective_grant(self) -> int:
        pages = self.grant.pages
        if pages == 0:
            return 0
        return max(pages, self.MIN_PAGES)

    # ------------------------------------------------------------------
    def run(self) -> Generator[Request, None, None]:
        """Form sorted runs, then merge until a single run remains."""
        costs = self.context.costs
        yield CPUBurst(costs.initiate_query)
        in_memory = yield from self._run_formation()
        if not in_memory:
            yield from self._merge_phase()
        yield from self._flush_cpu()
        yield CPUBurst(costs.terminate_query)

    # ------------------------------------------------------------------
    # phase 1: run formation (replacement selection)
    # ------------------------------------------------------------------
    def _run_formation(self) -> Generator[Request, None, bool]:
        """Read the operand, producing runs.  Returns True when the
        whole relation fit in memory (no temp I/O needed at all)."""
        costs = self.context.costs
        block = self.context.block_size
        tuples_per_page = self.context.tuples_per_page
        relation = self.relation

        workspace_fill = 0.0  # pages currently buffered in the workspace
        run_pages = 0.0  # pages already emitted into the current run
        run_start: Optional[int] = None
        pending_out = 0.0  # emitted pages not yet flushed to disk
        read = 0

        def close_run():
            nonlocal run_pages, run_start
            if run_start is not None and run_pages > 0:
                self.runs.append(_Run(run_start, int(round(run_pages))))
            run_pages = 0.0
            run_start = None

        while read < relation.pages:
            if self.grant.pages == 0:
                # Suspension: flush the workspace as (the tail of) the
                # current run, then sleep.
                yield from self._flush_cpu()
                emit = workspace_fill
                workspace_fill = 0.0
                result = yield from self._emit_run_pages(
                    emit, run_start, run_pages, pending_out
                )
                run_start, run_pages, pending_out = result
                yield from self._flush_run(pending_out, run_start)
                pending_out = 0.0
                close_run()
                yield AllocationWait()
                continue
            # The whole grant serves as the replacement-selection
            # workspace (the input buffer doubles as tournament space),
            # so a grant of ||R|| sorts entirely in memory as Section
            # 3.2 states.
            workspace = max(2, self._effective_grant())
            # Replacement selection: pages beyond the workspace (and
            # beyond the 2w expected run length) are emitted.
            pages = min(block, relation.pages - read)
            self.pages_read += pages
            self.io_count += 1
            yield DiskAccess(
                READ, relation.disk, relation.start_page + read, pages,
                cacheable=True, cpu=self._take_carry(),
            )
            tuples = pages * tuples_per_page
            depth = self._log2_ceil(max(2.0, workspace * tuples_per_page))
            self._carry_cpu(tuples * (depth * costs.key_compare + costs.sort_copy))
            read += pages
            workspace_fill += pages
            overflow = workspace_fill - workspace
            if overflow > 0:
                workspace_fill = workspace
                result = yield from self._emit_run_pages(
                    overflow, run_start, run_pages, pending_out
                )
                run_start, run_pages, pending_out = result
                # Close the run at the expected replacement-selection
                # length of twice the (current) workspace.
                if run_pages >= 2.0 * workspace:
                    yield from self._flush_run(pending_out, run_start)
                    pending_out = 0.0
                    close_run()

        if not self.runs and run_start is None and workspace_fill >= relation.pages:
            # Everything fit: in-memory sort.  The tournament-insert
            # comparisons were already charged per block above; what
            # remains is the output pass copying tuples to the result.
            total_tuples = relation.pages * tuples_per_page
            self._carry_cpu(total_tuples * self.context.costs.sort_copy)
            yield from self._flush_cpu()
            return True

        # Flush whatever is left in the workspace as the final run tail.
        result = yield from self._emit_run_pages(
            workspace_fill, run_start, run_pages, pending_out
        )
        run_start, run_pages, pending_out = result
        yield from self._flush_run(pending_out, run_start)
        close_run()
        return False

    def _emit_run_pages(self, pages, run_start, run_pages, pending_out):
        """Emit ``pages`` into the current run, flushing whole blocks."""
        block = self.context.block_size
        if pages <= 0:
            return (run_start, run_pages, pending_out)
        if run_start is None and pages > 0:
            # Reserve worst-case space for this run (trimmed at close).
            run_start = self._allocate_run_space(
                int(math.ceil(pages)) + 2 * block + 2 * max(1, self.grant.pages)
            )
        run_pages += pages
        pending_out += pages
        while pending_out >= block:
            yield self._write_pages(block)
            pending_out -= block
        return (run_start, run_pages, pending_out)

    def _flush_run(self, pending_out: float, run_start) -> Generator[Request, None, None]:
        if pending_out > 1e-9 and run_start is not None:
            yield self._write_pages(max(1, math.ceil(pending_out)))

    def _write_pages(self, pages: int) -> DiskAccess:
        temp = self._ensure_temp()
        address = temp.start_page + (self.pages_written % max(1, temp.pages - pages))
        self.pages_written += pages
        self.io_count += 1
        return DiskAccess(
            WRITE, self.temp_disk, address, pages, cpu=self._take_carry()
        )

    # ------------------------------------------------------------------
    # phase 2: adaptive merging
    # ------------------------------------------------------------------
    def _merge_phase(self) -> Generator[Request, None, None]:
        costs = self.context.costs
        block = self.context.block_size
        tuples_per_page = self.context.tuples_per_page

        while len(self.runs) > 1:
            if self.grant.pages == 0:
                yield from self._flush_cpu()
                yield AllocationWait()
                continue
            fanin = min(len(self.runs), max(2, self._effective_grant() - 1))
            step_runs = self.runs[:fanin]
            del self.runs[:fanin]
            final = not self.runs  # merging everything that is left
            self.merge_passes += 1

            total = sum(run.remaining for run in step_runs)
            out_start = self._allocate_run_space(total + block)
            out_pages = 0
            pending_out = 0.0
            index = 0  # round-robin over the step's runs
            while any(run.remaining > 0 for run in step_runs):
                grant = self._effective_grant()
                if self.grant.pages == 0 or grant - 1 < fanin:
                    # Split the step [Pang93b]: close the partial output
                    # as a run, return unconsumed tails to the queue.
                    if pending_out > 1e-9:
                        yield self._write_pages(max(1, math.ceil(pending_out)))
                        out_pages += math.ceil(pending_out)
                        pending_out = 0.0
                    if out_pages > 0:
                        self.runs.insert(0, _Run(out_start, out_pages))
                    for run in step_runs:
                        if run.remaining > 0:
                            self.runs.insert(
                                0, _Run(run.start_page + run.consumed, run.remaining)
                            )
                    break
                # Read one page (page-at-a-time during merging).
                for _probe in range(len(step_runs)):
                    run = step_runs[index % len(step_runs)]
                    index += 1
                    if run.remaining > 0:
                        break
                page = run.next_page()
                self.pages_read += 1
                self.io_count += 1
                yield DiskAccess(
                    READ, self.temp_disk, page, 1, sequential=False,
                    cpu=self._take_carry(),
                )
                depth = self._log2_ceil(max(2, fanin))
                self._carry_cpu(
                    tuples_per_page * (depth * costs.key_compare + costs.sort_copy)
                )
                if final:
                    continue  # results produced directly, no write-back
                pending_out += 1
                if pending_out >= block:
                    yield self._write_pages(block)
                    out_pages += block
                    pending_out = 0.0
            else:
                # Step completed normally.
                if not final:
                    if pending_out > 1e-9:
                        yield self._write_pages(max(1, math.ceil(pending_out)))
                        out_pages += math.ceil(pending_out)
                    self.runs.append(_Run(out_start, max(1, out_pages)))
