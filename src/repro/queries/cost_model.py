"""Closed-form stand-alone execution times.

The Source assigns ``Deadline = StandAlone * SlackRatio + Arrival``
where *StandAlone* is the time the query would take alone in the system
with its maximum memory allocation (Section 4.1).  These formulas
mirror the simulator's behaviour at zero contention: the query process
alternates CPU bursts and synchronous I/O, so the stand-alone time is
simply the sum of all service demands (expected values used for the
rotational latency).

An integration test (``tests/test_integration_standalone.py``) checks
that a solo simulated query matches these estimates within a small
tolerance, which keeps the deadline semantics honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.rtdbs.config import CPUCosts, ResourceParams


@dataclass(frozen=True)
class StandAloneCostModel:
    """Expected stand-alone times for the two query types."""

    resources: ResourceParams
    costs: CPUCosts
    tuples_per_page: int
    fudge_factor: float = 1.1
    join_selectivity: float = 1.0

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def cpu_seconds(self, instructions: float) -> float:
        """Time to execute ``instructions`` on the unloaded CPU."""
        return instructions / self.resources.cpu_rate

    def sequential_scan_seconds(self, pages: int) -> float:
        """Expected disk time to scan ``pages`` sequentially in blocks.

        An uninterrupted sequential stream pays positioning (half a
        rotation plus an average seek) once, then pure transfer: the
        disk model's sequential-continuation rule waives seek and
        rotation for an access starting where the previous one ended.
        """
        resources = self.resources
        positioning = resources.rotation_s / 2.0 + resources.seek_time(
            max(1, resources.num_cylinders // 8)
        )
        return positioning + pages * resources.transfer_s_per_page

    def paged_read_seconds(self, pages: int) -> float:
        """Expected disk time for page-at-a-time reads (merge phase)."""
        resources = self.resources
        per_page = resources.rotation_s / 2.0 + resources.transfer_s_per_page
        # Merge reads hop between runs; charge a short seek per page.
        return pages * (per_page + resources.seek_time(1))

    def scan_io_count(self, pages: int) -> int:
        """Number of I/O operations in a sequential block scan."""
        return math.ceil(pages / self.resources.block_size)

    # ------------------------------------------------------------------
    # query types
    # ------------------------------------------------------------------
    def hash_join_standalone(self, inner_pages: int, outer_pages: int) -> float:
        """Stand-alone time of a one-pass (max memory) hash join."""
        costs = self.costs
        tuples_per_page = self.tuples_per_page
        io_count = self.scan_io_count(inner_pages) + self.scan_io_count(outer_pages)
        instructions = (
            costs.initiate_query
            + costs.terminate_query
            + io_count * costs.start_io
            + inner_pages * tuples_per_page * costs.hash_insert
            + outer_pages
            * tuples_per_page
            * (costs.hash_probe + self.join_selectivity * costs.hash_output)
        )
        disk = self.sequential_scan_seconds(inner_pages) + self.sequential_scan_seconds(
            outer_pages
        )
        return self.cpu_seconds(instructions) + disk

    def sort_standalone(self, pages: int) -> float:
        """Stand-alone time of an in-memory (max memory) sort."""
        costs = self.costs
        tuples = pages * self.tuples_per_page
        depth = max(1, math.ceil(math.log2(max(2, tuples))))
        io_count = self.scan_io_count(pages)
        instructions = (
            costs.initiate_query
            + costs.terminate_query
            + io_count * costs.start_io
            + tuples * (depth * costs.key_compare + costs.sort_copy)
        )
        return self.cpu_seconds(instructions) + self.sequential_scan_seconds(pages)

    # ------------------------------------------------------------------
    # two-pass estimates (used by examples / ablations, not deadlines)
    # ------------------------------------------------------------------
    def hash_join_two_pass(self, inner_pages: int, outer_pages: int) -> float:
        """Estimate at the *minimum* allocation: operands are read,
        spooled, and re-read once (Grace-style two-pass join)."""
        costs = self.costs
        tuples_per_page = self.tuples_per_page
        spooled = inner_pages + outer_pages
        io_count = (
            self.scan_io_count(inner_pages)
            + self.scan_io_count(outer_pages)
            + 2 * self.scan_io_count(spooled)
        )
        instructions = (
            costs.initiate_query
            + costs.terminate_query
            + io_count * costs.start_io
            # split pass: copy out both operands
            + spooled * tuples_per_page * costs.hash_output
            # join pass: build + probe
            + inner_pages * tuples_per_page * costs.hash_insert
            + outer_pages
            * tuples_per_page
            * (costs.hash_probe + self.join_selectivity * costs.hash_output)
        )
        disk = (
            self.sequential_scan_seconds(inner_pages)
            + self.sequential_scan_seconds(outer_pages)
            + 3 * self.sequential_scan_seconds(spooled)  # write, re-read... (approx)
        )
        return self.cpu_seconds(instructions) + disk

    def sort_two_pass(self, pages: int, workspace: int) -> float:
        """Estimate of an external sort with the given workspace."""
        costs = self.costs
        tuples_per_page = self.tuples_per_page
        tuples = pages * tuples_per_page
        workspace = max(3, workspace)
        runs = max(1, math.ceil(pages / max(1, 2 * workspace)))
        fanin = max(2, workspace - 1)
        passes = max(0, math.ceil(math.log(max(1, runs), fanin))) if runs > 1 else 0
        depth = max(1, math.ceil(math.log2(max(2, workspace * tuples_per_page))))
        instructions = (
            costs.initiate_query
            + costs.terminate_query
            + tuples * (depth * costs.key_compare + costs.sort_copy)  # run formation
            + passes * tuples * (self._merge_depth(fanin) * costs.key_compare + costs.sort_copy)
        )
        disk = self.sequential_scan_seconds(pages)  # initial read
        if runs > 1:
            disk += self.sequential_scan_seconds(pages)  # run writes
            disk += passes * (
                self.paged_read_seconds(pages) + self.sequential_scan_seconds(pages)
            )
        io_count = self.scan_io_count(pages) * (2 if runs > 1 else 1) + (
            passes * (pages + self.scan_io_count(pages)) if runs > 1 else 0
        )
        instructions += io_count * costs.start_io
        return self.cpu_seconds(instructions) + disk

    @staticmethod
    def _merge_depth(fanin: int) -> int:
        return max(1, math.ceil(math.log2(max(2, fanin))))
