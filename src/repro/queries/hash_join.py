"""Partially Preemptible Hash Join (PPHJ) [Pang93a].

PPHJ splits the inner (building) relation R and the outer (probing)
relation S into ``P`` partitions.  At any instant some partitions are
*expanded* (hash tables in memory) and the rest are *contracted*
(resident on disk).  The variant the paper uses has:

* **late contraction** -- partitions are only contracted (their
  in-memory tuples spooled to a temp file) at the moment memory is
  actually insufficient;
* **expansion** -- if memory grows while the outer relation is being
  split, contracted partitions are read back in so subsequent outer
  tuples can be joined directly;
* **priority spooling** -- spool I/O is issued at the query's own ED
  priority (all of a query's requests carry its deadline).

The model is aggregate rather than tuple-level: partitions are tracked
as counts and page totals, which reproduces exactly the I/O volume and
CPU instruction counts of the per-partition algorithm under the
uniformity assumption the paper's own analysis uses.

Memory accounting (``need``): ``ceil(F * r_mem) + (P - e) + 1`` pages --
hash tables over the in-memory R pages, one spool output buffer per
contracted partition, one input buffer.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.queries.base import MemoryGrant, Operator, OperatorContext, Request
from repro.queries.requests import READ, WRITE, AllocationWait, CPUBurst, DiskAccess
from repro.rtdbs.database import Relation, TempFile


class HashJoinOperator(Operator):
    """PPHJ over inner relation R and outer relation S."""

    def __init__(
        self,
        context: OperatorContext,
        grant: MemoryGrant,
        inner: Relation,
        outer: Relation,
        fudge_factor: float = 1.1,
        selectivity: float = 1.0,
        temp_disk: Optional[int] = None,
    ):
        super().__init__(context, grant)
        if inner.pages <= 0 or outer.pages <= 0:
            raise ValueError("relations must be non-empty")
        self.inner = inner
        self.outer = outer
        self.fudge = float(fudge_factor)
        self.selectivity = float(selectivity)
        self.temp_disk = inner.disk if temp_disk is None else temp_disk

        #: Number of partitions: enough that a single partition's hash
        #: table fits in roughly sqrt(F * ||R||) pages [Shap86].
        self.partitions = max(1, math.ceil(math.sqrt(self.fudge * inner.pages)))
        #: Full hash-table size of one partition, pages.
        self.partition_ht_pages = max(
            1, math.ceil(self.fudge * inner.pages / self.partitions)
        )
        # The demand envelope is fixed at construction; precompute it
        # (these properties sit on the per-block scheduling path).
        self._min_pages = max(self.partitions + 1, self.partition_ht_pages + 2)
        self._max_pages = math.ceil(self.fudge * inner.pages) + 1

        # --- dynamic state -------------------------------------------
        #: Currently expanded partitions.
        self.expanded = self.partitions
        #: Raw R pages currently held in in-memory hash tables.
        self.r_mem = 0.0
        #: Raw R pages spooled to the temp file.
        self.r_spooled = 0.0
        #: Raw S pages spooled to the temp file.
        self.s_spooled = 0.0
        self._pending_spool = 0.0
        self._temp: Optional[TempFile] = None
        self._temp_cursor = 0

        # --- counters (for tests and EXPERIMENTS.md) ------------------
        self.pages_read = 0
        self.pages_written = 0
        self.io_count = 0

    # ------------------------------------------------------------------
    # demand envelope
    # ------------------------------------------------------------------
    @property
    def min_pages(self) -> int:
        """Two-pass minimum: max of split-phase and join-phase needs,
        ~ sqrt(F * ||R||) + 1 as in the paper (Section 3.2)."""
        return self._min_pages

    @property
    def max_pages(self) -> int:
        """One-pass maximum: F * ||R|| plus one I/O buffer."""
        return self._max_pages

    @property
    def operand_pages(self) -> int:
        """R + S pages (read exactly once each)."""
        return self.inner.pages + self.outer.pages

    # ------------------------------------------------------------------
    # memory arithmetic
    # ------------------------------------------------------------------
    def _need(self, expanded: int, r_mem: float) -> int:
        """Pages required with ``expanded`` partitions holding ``r_mem``.

        KEEP IN SYNC: the build/probe block loops inline this formula
        (and the ``_effective_grant`` clamp) for speed -- change the
        memory model here and in both phase loops together.
        """
        return (
            math.ceil(self.fudge * r_mem)
            + (self.partitions - expanded)
            + 1
        )

    def _effective_grant(self) -> int:
        """Grant clamped up to the operating minimum (a positive grant
        below ``min_pages`` cannot occur under the paper's policies; we
        defend against it rather than deadlock)."""
        pages = self.grant.pages
        if pages == 0:
            return 0
        return max(pages, self.min_pages)

    # ------------------------------------------------------------------
    # spool plumbing
    # ------------------------------------------------------------------
    def _ensure_temp(self) -> TempFile:
        if self._temp is None:
            worst_case = self.inner.pages + self.outer.pages + 2 * self.context.block_size
            self._temp = self._get_temp(self.temp_disk, worst_case)
        return self._temp

    def _temp_address(self, pages: int) -> int:
        """Next ``pages``-page slot in the temp extent (wrapping)."""
        temp = self._ensure_temp()
        if self._temp_cursor + pages > temp.pages:
            self._temp_cursor = 0
        address = temp.start_page + self._temp_cursor
        self._temp_cursor += pages
        return address

    def _flush_spool(self, force: bool = False) -> Generator[Request, None, None]:
        block = self.context.block_size
        while self._pending_spool >= block:
            yield self._write(block)
            self._pending_spool -= block
        if force and self._pending_spool > 1e-9:
            pages = max(1, math.ceil(self._pending_spool))
            yield self._write(pages)
            self._pending_spool = 0.0

    def _write(self, pages: int) -> DiskAccess:
        self.pages_written += pages
        self.io_count += 1
        return DiskAccess(
            WRITE, self.temp_disk, self._temp_address(pages), pages,
            cpu=self._take_carry(),
        )

    def _read_temp(self, pages: int) -> DiskAccess:
        temp = self._ensure_temp()
        if self._temp_cursor + pages > temp.pages:
            self._temp_cursor = 0
        address = temp.start_page + self._temp_cursor
        self._temp_cursor += pages
        self.pages_read += pages
        self.io_count += 1
        return DiskAccess(
            READ, self.temp_disk, address, pages, cpu=self._take_carry()
        )

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def _contract_to_fit(self, grant: int) -> Generator[Request, None, None]:
        """Late contraction: spool just enough partitions to fit."""
        while self.expanded > 0 and self._need(self.expanded, self.r_mem) > grant:
            share = self.r_mem / self.expanded
            self.r_mem -= share
            self.r_spooled += share
            self._pending_spool += share
            self.expanded -= 1
        yield from self._flush_spool()

    def _spool_everything(self) -> Generator[Request, None, None]:
        """Suspension: contract all partitions and flush the spool."""
        if self.r_mem > 0:
            self.r_spooled += self.r_mem
            self._pending_spool += self.r_mem
            self.r_mem = 0.0
        self.expanded = 0
        yield from self._flush_spool(force=True)

    def _expand_if_possible(self) -> Generator[Request, None, None]:
        """Late expansion during the probe phase [Pang93a]."""
        grant = self._effective_grant()
        block = self.context.block_size
        costs = self.context.costs
        tuples_per_page = self.context.tuples_per_page
        while (
            self.expanded < self.partitions
            and self.r_spooled > 0
            and self._need(
                self.expanded + 1,
                self.r_mem + self.r_spooled / (self.partitions - self.expanded),
            )
            <= grant
        ):
            share = self.r_spooled / (self.partitions - self.expanded)
            pages_left = share
            while pages_left > 1e-9:
                chunk = min(block, max(1, math.ceil(pages_left)))
                chunk = min(chunk, math.ceil(pages_left))
                yield self._read_temp(chunk)
                self._carry_cpu(chunk * tuples_per_page * costs.hash_insert)
                pages_left -= chunk
            self.r_spooled -= share
            self.r_mem += share
            self.expanded += 1
            grant = self._effective_grant()

    # ------------------------------------------------------------------
    # the three phases
    # ------------------------------------------------------------------
    def run(self) -> Generator[Request, None, None]:
        """Build R, probe with S, then clean up contracted partitions."""
        costs = self.context.costs
        yield CPUBurst(costs.initiate_query)
        yield from self._build_phase()
        yield from self._probe_phase()
        yield from self._cleanup_phase()
        yield from self._flush_cpu()
        yield CPUBurst(costs.terminate_query)

    def _build_phase(self) -> Generator[Request, None, None]:
        costs = self.context.costs
        block = self.context.block_size
        tuples_per_page = self.context.tuples_per_page
        # Per-page CPU costs, hoisted off the per-block loop.
        insert_cost = tuples_per_page * costs.hash_insert
        output_cost = tuples_per_page * costs.hash_output
        inner = self.inner
        grant_channel = self.grant
        partitions = self.partitions
        min_pages = self._min_pages
        fudge = self.fudge
        ceil = math.ceil
        r_read = 0
        while r_read < inner.pages:
            grant = grant_channel.pages
            if grant == 0:
                yield from self._flush_cpu()
                yield from self._spool_everything()
                yield AllocationWait()
                continue
            if grant < min_pages:
                grant = min_pages  # inlined _effective_grant()
            # Inlined _need() > grant check (late contraction trigger).
            if self.expanded > 0 and (
                ceil(fudge * self.r_mem) + (partitions - self.expanded) + 1 > grant
            ):
                yield from self._contract_to_fit(grant)
            pages = min(block, inner.pages - r_read)
            self.pages_read += pages
            self.io_count += 1
            yield DiskAccess(
                READ, inner.disk, inner.start_page + r_read, pages,
                cacheable=True, cpu=self._take_carry(),
            )
            expanded_fraction = self.expanded / partitions
            contracted_fraction = 1.0 - expanded_fraction
            self._cpu_carry += pages * (
                expanded_fraction * insert_cost + contracted_fraction * output_cost
            )
            self.r_mem += pages * expanded_fraction
            spooled = pages * contracted_fraction
            self.r_spooled += spooled
            self._pending_spool += spooled
            if self._pending_spool >= block:
                yield from self._flush_spool()
            r_read += pages
        if self._pending_spool > 1e-9:
            yield from self._flush_spool(force=True)

    def _probe_phase(self) -> Generator[Request, None, None]:
        costs = self.context.costs
        block = self.context.block_size
        tuples_per_page = self.context.tuples_per_page
        # Per-page CPU costs, hoisted off the per-block loop.
        probe_cost = tuples_per_page * (
            costs.hash_probe + self.selectivity * costs.hash_output
        )
        output_cost = tuples_per_page * costs.hash_output
        outer = self.outer
        grant_channel = self.grant
        partitions = self.partitions
        min_pages = self._min_pages
        fudge = self.fudge
        ceil = math.ceil
        s_read = 0
        while s_read < outer.pages:
            grant = grant_channel.pages
            if grant == 0:
                yield from self._flush_cpu()
                yield from self._spool_everything()
                yield AllocationWait()
                continue
            if grant < min_pages:
                grant = min_pages  # inlined _effective_grant()
            # Inlined _need() > grant check (contract vs. expand).
            if ceil(fudge * self.r_mem) + (partitions - self.expanded) + 1 > grant:
                yield from self._contract_to_fit(grant)
            elif self.expanded < partitions and self.r_spooled > 0:
                yield from self._expand_if_possible()
            pages = min(block, outer.pages - s_read)
            self.pages_read += pages
            self.io_count += 1
            yield DiskAccess(
                READ, outer.disk, outer.start_page + s_read, pages,
                cacheable=True, cpu=self._take_carry(),
            )
            expanded_fraction = self.expanded / partitions
            contracted_fraction = 1.0 - expanded_fraction
            self._cpu_carry += pages * (
                expanded_fraction * probe_cost + contracted_fraction * output_cost
            )
            spooled = pages * contracted_fraction
            self.s_spooled += spooled
            self._pending_spool += spooled
            if self._pending_spool >= block:
                yield from self._flush_spool()
            s_read += pages
        if self._pending_spool > 1e-9:
            yield from self._flush_spool(force=True)

    def _cleanup_phase(self) -> Generator[Request, None, None]:
        """Join the spooled partition pairs, one partition at a time."""
        costs = self.context.costs
        block = self.context.block_size
        tuples_per_page = self.context.tuples_per_page
        remaining_r = self.r_spooled
        remaining_s = self.s_spooled
        if remaining_r < 1e-9 and remaining_s < 1e-9:
            return
        contracted = max(1, self.partitions - self.expanded)
        for index in range(contracted):
            part_r = remaining_r / (contracted - index)
            part_s = remaining_s / (contracted - index)
            remaining_r -= part_r
            remaining_s -= part_s
            done = False
            while not done:
                if self.grant.pages == 0:
                    # Nothing dirty mid-cleanup: discard progress on this
                    # partition and redo it once memory returns.
                    yield from self._flush_cpu()
                    yield AllocationWait()
                    continue
                yield from self._scan_temp(
                    part_r, costs.hash_insert, block, tuples_per_page
                )
                yield from self._scan_temp(
                    part_s,
                    costs.hash_probe + self.selectivity * costs.hash_output,
                    block,
                    tuples_per_page,
                )
                done = True
        self.r_spooled = 0.0
        self.s_spooled = 0.0

    def _scan_temp(
        self, pages: float, per_tuple_cost: float, block: int, tuples_per_page: int
    ) -> Generator[Request, None, None]:
        pages_left = pages
        while pages_left > 1e-9:
            chunk = min(block, math.ceil(pages_left))
            yield self._read_temp(chunk)
            self._carry_cpu(
                min(chunk, pages_left) * tuples_per_page * per_tuple_cost
            )
            pages_left -= chunk
