"""Named, independent random-number streams.

Every stochastic element of an experiment (arrivals of each class, slack
ratios, relation choices, rotational latencies, ...) draws from its own
stream so that changing one element's consumption pattern does not
perturb the others -- the standard common-random-numbers discipline for
simulation studies [Sarg76].

Streams are derived from a single experiment seed with
``numpy.random.SeedSequence`` children keyed by the stream name, so runs
are fully reproducible from ``(seed, name)`` pairs alone.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence

import numpy as np


class Stream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`.

    ``uniform`` draws are served from a buffer of raw ``random()``
    doubles: a NumPy scalar draw costs microseconds of call overhead,
    and hot streams (disk rotational latencies) draw one same-range
    variate per access.  ``Generator.uniform(low, high)`` consumes
    exactly one ``random()`` double and returns
    ``low + (high - low) * double``, so scaling buffered doubles
    reproduces the scalar variate sequence bit for bit -- every
    fixed-seed simulation statistic is unchanged.
    """

    __slots__ = ("name", "generator", "_buf", "_buf_pos")

    _BUFFER = 256

    def __init__(self, name: str, generator: np.random.Generator):
        self.name = name
        self.generator = generator
        self._buf: list = []
        self._buf_pos = 0

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (for Poisson arrivals)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.generator.exponential(mean))

    def uniform(self, low: float, high: float) -> float:
        """Uniform variate on ``[low, high)``."""
        if high < low:
            raise ValueError(f"empty uniform range [{low}, {high})")
        pos = self._buf_pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self.generator.random(self._BUFFER).tolist()
            pos = 0
        self._buf_pos = pos + 1
        return low + (high - low) * buf[pos]

    def integer(self, low: int, high: int) -> int:
        """Uniform integer on ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return int(self.generator.integers(low, high + 1))

    def choice(self, items: Sequence):
        """Uniformly choose one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self.generator.integers(0, len(items)))]


class Streams:
    """Factory and registry of named :class:`Stream` objects."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        # Stable 32-bit key from the name; combined with the experiment
        # seed this yields an independent child sequence per stream.
        key = zlib.crc32(name.encode("utf-8"))
        sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        stream = Stream(name, np.random.default_rng(sequence))
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Streams(seed={self.seed}, named={sorted(self._streams)})"
