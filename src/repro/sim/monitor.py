"""Output-collection primitives for simulation experiments.

Three collectors cover everything the paper reports:

* :class:`TimeWeighted` -- time-integrated averages (MPL, utilisation,
  memory in use).  Supports *snapshots* so PMM can compute averages over
  a batch window without storing individual readings.
* :class:`Tally` -- sample statistics (waiting times, execution times,
  miss indicators).  Also maintains the running sums PMM's large-sample
  tests need.
* :class:`Series` -- a raw ``(time, value)`` trace, used for Figures 6
  and 15 (PMM's target-MPL trajectory).

:class:`BatchMeans` implements the batch-means confidence intervals the
paper uses to validate its simulations [Sarg76].
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.sim.statmath import t_ppf


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal."""

    __slots__ = ("sim", "_value", "_last_change", "_integral", "_start")

    def __init__(self, sim, initial: float = 0.0):
        self.sim = sim
        self._value = float(initial)
        self._last_change = sim.now
        self._integral = 0.0
        self._start = sim.now

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def record(self, value: float) -> None:
        """Change the signal to ``value`` at the current time."""
        now = self.sim.now
        self._integral += self._value * (now - self._last_change)
        self._value = float(value)
        self._last_change = now

    def record_if_changed(self, value: float) -> None:
        """Hot-path variant of :meth:`record`: no-op when unchanged.

        Busy indicators flip between 0.0 and 1.0 on every resource
        dispatch; servers call this so redundant re-records of the same
        value cost only the comparison.
        """
        if value != self._value:
            now = self.sim.now
            self._integral += self._value * (now - self._last_change)
            self._value = value
            self._last_change = now

    def add(self, delta: float) -> None:
        """Increment the signal (convenience for counters like MPL)."""
        self.record(self._value + delta)

    def integral(self) -> float:
        """Integral of the signal from creation until now."""
        return self._integral + self._value * (self.sim.now - self._last_change)

    def mean(self) -> float:
        """Time average since creation (0 if no time has elapsed)."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return self._value
        return self.integral() / elapsed

    def snapshot(self) -> Tuple[float, float]:
        """Opaque marker for :meth:`mean_since` window averages."""
        return (self.sim.now, self.integral())

    def mean_since(self, snapshot: Tuple[float, float]) -> float:
        """Time average of the signal since ``snapshot`` was taken."""
        then, integral_then = snapshot
        elapsed = self.sim.now - then
        if elapsed <= 0:
            return self._value
        return (self.integral() - integral_then) / elapsed


class Tally:
    """Count / mean / variance of a stream of samples.

    Keeps only running sums (n, Σx, Σx²) -- the same economy of storage
    the paper emphasises for PMM's statistics.
    """

    __slots__ = ("count", "total", "total_sq")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def record(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def mean(self) -> float:
        """Sample mean (0 for an empty tally)."""
        return self.total / self.count if self.count else 0.0

    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        mean = self.total / self.count
        var = (self.total_sq - self.count * mean * mean) / (self.count - 1)
        return max(0.0, var)

    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance())

    def reset(self) -> None:
        """Discard all samples."""
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def copy(self) -> "Tally":
        """An independent copy of the current sums."""
        clone = Tally()
        clone.count = self.count
        clone.total = self.total
        clone.total_sq = self.total_sq
        return clone

    def diff(self, earlier: "Tally") -> "Tally":
        """Tally of the samples recorded since ``earlier`` was copied."""
        if earlier.count > self.count:
            raise ValueError("diff against a tally with more samples")
        delta = Tally()
        delta.count = self.count - earlier.count
        delta.total = self.total - earlier.total
        delta.total_sq = self.total_sq - earlier.total_sq
        return delta


class Series:
    """A raw trace of ``(time, value)`` observations."""

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent observation, or None when empty."""
        if not self.times:
            return None
        return (self.times[-1], self.values[-1])


class BatchMeans:
    """Batch-means confidence interval for steady-state output [Sarg76].

    Observations are grouped into fixed-size batches; the batch means
    are treated as approximately independent samples, giving a Student-t
    interval for the long-run mean.
    """

    def __init__(self, batch_size: int):
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self._pending: List[float] = []
        self.batch_means: List[float] = []

    def record(self, value: float) -> None:
        """Add an observation, closing a batch when one fills up."""
        self._pending.append(value)
        if len(self._pending) == self.batch_size:
            self.batch_means.append(sum(self._pending) / self.batch_size)
            self._pending.clear()

    def extend(self, values: Sequence[float]) -> None:
        """Add many observations."""
        for value in values:
            self.record(value)

    @property
    def num_batches(self) -> int:
        """Number of completed batches."""
        return len(self.batch_means)

    def mean(self) -> float:
        """Grand mean over completed batches (0 if none)."""
        if not self.batch_means:
            return 0.0
        return sum(self.batch_means) / len(self.batch_means)

    def confidence_interval(self, level: float = 0.90) -> Tuple[float, float]:
        """Two-sided CI for the mean at the given confidence level.

        Requires at least two completed batches.
        """
        k = len(self.batch_means)
        if k < 2:
            raise ValueError("need at least two batches for an interval")
        mean = self.mean()
        var = sum((m - mean) ** 2 for m in self.batch_means) / (k - 1)
        half = t_ppf(0.5 + level / 2.0, k - 1) * math.sqrt(var / k)
        return (mean - half, mean + half)

    def half_width(self, level: float = 0.90) -> float:
        """Half-width of :meth:`confidence_interval`."""
        low, high = self.confidence_interval(level)
        return (high - low) / 2.0
