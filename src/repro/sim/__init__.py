"""Discrete-event simulation kernel (the paper's DeNet substitute).

The paper's RTDBS model is written in DeNet [Livn90], a closed-source
discrete-event simulation language.  This subpackage provides the same
primitives in pure Python:

* :class:`~repro.sim.simulator.Simulator` -- event heap and clock.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.process.Process`
  -- generator-driven processes that ``yield`` events to wait on.
* :mod:`~repro.sim.resources` -- a preemptive-resume priority server (the
  CPU) and supporting synchronisation primitives.
* :mod:`~repro.sim.rng` -- independent named random streams so every
  stochastic element of an experiment is separately reproducible.
* :mod:`~repro.sim.monitor` -- time-weighted statistics, tallies and
  traces used by the experiment harness.
"""

from repro.sim.events import Event, Interrupt
from repro.sim.monitor import BatchMeans, Series, Tally, TimeWeighted
from repro.sim.process import Process
from repro.sim.resources import PreemptiveServer
from repro.sim.rng import Streams
from repro.sim.simulator import Simulator

__all__ = [
    "BatchMeans",
    "Event",
    "Interrupt",
    "PreemptiveServer",
    "Process",
    "Series",
    "Simulator",
    "Streams",
    "Tally",
    "TimeWeighted",
]
