"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence.  Processes wait on events by
``yield``-ing them; resources complete requests by calling
:meth:`Event.succeed`.  Events may also be *cancelled*, which silently
drops their callbacks -- used when a query is aborted at its firm
deadline while an I/O completion is still pending.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interruption happened (for the RTDBS model this is the string
    ``"deadline"`` when a firm deadline expires).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    The life cycle is: *pending* -> (*triggered* -> *processed*) or
    *cancelled*.  ``succeed(value)`` schedules the event's callbacks to
    run at the current simulation time; the value is delivered to every
    waiting process as the result of its ``yield``.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_cancelled", "_gen")

    def __init__(self, sim: "Simulator"):  # noqa: F821 - forward ref
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._cancelled = False
        #: Schedule generation.  A heap entry remembers the generation
        #: at push time; bumping this invalidates the entry without an
        #: O(n) heap removal (used by preemptive servers to re-time a
        #: directly-scheduled completion).
        self._gen = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True when the event succeeded (as opposed to failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` / :meth:`fail`."""
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks now."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if self._cancelled:
            return self
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes see the exception."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if self._cancelled:
            return self
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    def cancel(self) -> None:
        """Drop the event: callbacks will never run.

        Safe to call at any point; a cancelled event that is later
        ``succeed``-ed is ignored, and an already-triggered event that is
        cancelled before its callbacks ran has them suppressed.
        """
        self._cancelled = True
        self.callbacks.clear()

    # internal -- invoked by the simulator when the event is processed
    def _run_callbacks(self) -> None:
        if self._cancelled:
            return
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    A timeout is scheduled at creation but only becomes *triggered*
    when the simulator processes it at its fire time (processes waiting
    on it sleep until then).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay)


class AnyOf(Event):
    """Fires as soon as any of the given events fires.

    The value is the (event, value) pair of the first event to fire.
    Remaining events keep their own state; their callbacks into this
    composite are ignored after the first firing.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: List[Event]):  # noqa: F821
        super().__init__(sim)
        self._done = False
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for event in events:
            if event.triggered:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done or self._cancelled:
            return
        self._done = True
        self.succeed((event, event.value))


class AllOf(Event):
    """Fires once every one of the given events has fired.

    The value is always the list of the child events' values, in the
    order the events were given -- whether the children were already
    triggered at construction or fired later.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]):  # noqa: F821
        super().__init__(sim)
        self._events = list(events)
        pending = [event for event in self._events if not event.triggered]
        self._remaining = len(pending)
        if self._remaining == 0:
            self.succeed([event.value for event in self._events])
            return
        for event in pending:
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._cancelled:
            return
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([child.value for child in self._events])


def _type_check_callback(callback: Optional[Callable]) -> None:
    if callback is not None and not callable(callback):
        raise TypeError(f"callback must be callable, got {callback!r}")
