"""The simulation clock and event loop.

The kernel keeps two scheduling structures:

* a binary heap for events with a strictly positive delay (timeouts);
* a FIFO deque for *immediate* events -- ``succeed()``-ed events and
  deferred callbacks scheduled at the current simulation time.

Immediate events vastly outnumber timeouts on the RTDBS hot path (every
resource completion, process resume, and grant change is one), and the
deque turns each of those from an O(log n) heap push/pop pair into two
O(1) deque operations.  Both structures share one monotonically
increasing sequence counter, and the event loop interleaves them by
sequence number, so firing order among same-time events is *exactly*
the FIFO-by-schedule-time order the pure-heap kernel produced.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

_INFINITY = float("inf")


class Simulator:
    """Event heap, clock, and factory for events and processes.

    The simulator is deliberately minimal: it knows nothing about the
    database model.  Model components schedule events and spawn
    processes through this object.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     yield sim.timeout(5.0)
    ...     log.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run()
    >>> log
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Heap entries: ``(time, seq, event, generation)`` for events
        #: -- an entry whose generation no longer matches the event's
        #: is stale (the event was rescheduled) and is skipped on pop
        #: -- or ``(time, seq, None, (fn, arg))`` for bare timed
        #: callbacks (see :meth:`call_later`).
        self._heap: List[Tuple[float, int, Optional[Event], Any]] = []
        #: Immediate queue entries: ``(seq, event, generation, None)``
        #: for events firing at the current time, ``(seq, None, fn,
        #: arg)`` for bare deferred callbacks (see :meth:`call_soon`).
        self._immediate: Deque[Tuple[int, Optional[Event], Any, Any]] = deque()
        self._sequence = 0
        #: Total events (and deferred callbacks) processed; perf tests
        #: use this to pin down the hot-path event volume of a fixed
        #: seed so it cannot silently re-bloat.
        self.events_processed = 0

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Spawn a process that starts at the current simulation time."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event firing when the first child event fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event firing when every child event has fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # scheduling / running
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        if delay == 0.0:
            self._immediate.append((self._sequence, event, event._gen, None))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, self._sequence, event, event._gen)
            )

    def call_soon(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``fn(arg)`` on the next kernel step at the current time.

        This is the allocation-free alternative to creating a throwaway
        :class:`Event` just to defer a callback (process bootstrap,
        resume-on-already-fired-event, interrupt delivery).
        """
        self._sequence += 1
        self._immediate.append((self._sequence, None, fn, arg))

    def call_later(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``fn(arg)`` after ``delay`` simulated seconds.

        The Event-free counterpart of a :class:`Timeout`: resource
        servers use it to time completions without allocating a
        one-shot event per service.  The callback is responsible for
        its own staleness checks (there is nothing to cancel).
        """
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, None, (fn, arg)))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        immediate = self._immediate
        while immediate:
            event = immediate[0][1]
            if event is not None and event._cancelled:
                immediate.popleft()
                continue
            return self.now
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event is not None and (event._cancelled or heap[0][3] != event._gen):
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return _INFINITY

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is left."""
        immediate = self._immediate
        heap = self._heap
        while True:
            if immediate:
                # All deque entries fire at the current time.  A heap
                # event also at the current time runs first only if it
                # was scheduled earlier (smaller sequence number).
                if heap and heap[0][0] <= self.now and heap[0][1] < immediate[0][0]:
                    _when, _seq, event, extra = heapq.heappop(heap)
                    if event is None:
                        self.events_processed += 1
                        extra[0](extra[1])
                        return True
                    if event._cancelled or extra != event._gen:
                        continue
                else:
                    _seq, event, fn, arg = immediate.popleft()
                    if event is None:
                        self.events_processed += 1
                        fn(arg)
                        return True
                    if event._cancelled or fn != event._gen:
                        continue
            elif heap:
                when, _seq, event, extra = heapq.heappop(heap)
                if event is None:
                    if when > self.now:
                        self.now = when
                    self.events_processed += 1
                    extra[0](extra[1])
                    return True
                if event._cancelled or extra != event._gen:
                    continue
                if when > self.now:
                    self.now = when
            else:
                return False
            self.events_processed += 1
            event._triggered = True  # timeouts trigger at fire time
            event._run_callbacks()
            return True

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None) -> None:
        """Run until the heap drains, ``stop`` triggers, or the clock
        passes ``until``.

        When ``until`` is given and no ``stop`` event fired, the clock
        is left exactly at ``until`` even if the next event lies beyond
        it, matching the usual DES convention so that time-weighted
        statistics close their final interval at the horizon.  When
        ``stop`` triggers, the clock stays where the stop occurred.
        """
        if until is None:
            if stop is None:
                while self.step():
                    pass
            else:
                while not stop._triggered and self.step():
                    pass
            return
        if until < self.now:
            raise ValueError(f"cannot run backwards: until={until} < now={self.now}")
        immediate = self._immediate
        heap = self._heap
        check_stop = stop is not None
        while True:
            if check_stop and stop._triggered:
                return
            if immediate:
                # Immediate events are always at the current time, which
                # never exceeds the horizon inside this loop.
                self.step()
                continue
            # Heap-only: pop and fire inline so the horizon check and
            # the dispatch inspect the top entry just once.
            if not heap:
                break
            when, _seq, event, extra = heap[0]
            if event is not None and (event._cancelled or extra != event._gen):
                heapq.heappop(heap)
                continue
            if when > until:
                break
            heapq.heappop(heap)
            if when > self.now:
                self.now = when
            self.events_processed += 1
            if event is None:
                extra[0](extra[1])
            else:
                event._triggered = True
                event._run_callbacks()
        self.now = max(self.now, until)
