"""The simulation clock and event loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Simulator:
    """Event heap, clock, and factory for events and processes.

    The simulator is deliberately minimal: it knows nothing about the
    database model.  Model components schedule events and spawn
    processes through this object.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     yield sim.timeout(5.0)
    ...     log.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run()
    >>> log
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Spawn a process that starts at the current simulation time."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event firing when the first child event fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event firing when every child event has fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # scheduling / running
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> bool:
        """Process a single event.  Returns False when the heap is empty."""
        while self._heap:
            when, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if when < self.now - 1e-12:  # pragma: no cover - invariant guard
                raise RuntimeError(f"event scheduled in the past: {when} < {self.now}")
            self.now = max(self.now, when)
            event._triggered = True  # timeouts trigger at fire time
            event._run_callbacks()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until``
        even if the next event lies beyond it, matching the usual DES
        convention so that time-weighted statistics close their final
        interval at the horizon.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise ValueError(f"cannot run backwards: until={until} < now={self.now}")
        while self._heap:
            next_time = self.peek()
            if next_time > until:
                break
            if not self.step():  # pragma: no cover - peek guaranteed a step
                break
        self.now = max(self.now, until)
