"""Generator-driven simulation processes.

A process is a Python generator that ``yield``-s :class:`Event` objects.
When a yielded event fires, the process resumes with the event's value as
the result of the ``yield`` expression.  A process is itself an event
(it fires when the generator returns), so processes can wait on each
other.

Processes can be interrupted -- the kernel throws :class:`Interrupt`
into the generator at its current suspension point.  This is how the
RTDBS model implements firm deadlines: an expired query is interrupted
wherever it happens to be waiting.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Interrupt


class Process(Event):
    """Drives a generator, suspending on each yielded :class:`Event`."""

    __slots__ = ("generator", "name", "_target", "_alive")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821 - forward ref
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._alive = True
        # Bootstrap: start the generator at the current simulation time.
        sim.call_soon(self._bootstrap)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True until the generator returns, raises, or is interrupted
        without handling the interrupt."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        If the process is currently waiting on an event, that wait is
        abandoned (the event may still fire later but will no longer
        resume this process).  Interrupting a dead process is a no-op.
        """
        if not self._alive:
            return
        if self._target is not None:
            # Detach from whatever we were waiting on.
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        self.sim.call_soon(self._throw_interrupt, cause)

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------
    def _bootstrap(self, _arg: Any = None) -> None:
        if self._alive:
            self._step()

    def _throw_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        self._step(throw=Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if not self._alive:
            return
        self._target = None
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self._alive = False
            if not self.triggered and not self.cancelled:
                self.succeed(stop.value)
            return
        except Interrupt:
            # The generator chose not to handle its interruption; treat
            # as a normal (but flagged) termination.
            self._alive = False
            if not self.triggered and not self.cancelled:
                self.succeed(None)
            return
        except BaseException as error:
            self._alive = False
            if not self.triggered and not self.cancelled:
                self.fail(error)
            else:  # pragma: no cover - double fault safety net
                raise
            return

        if not isinstance(target, Event):
            self._alive = False
            self.fail(TypeError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.cancelled:
            self._alive = False
            self.fail(RuntimeError(f"process {self.name!r} waited on cancelled event"))
            return
        self._target = target
        if target.triggered:
            # Already fired: resume on the next kernel step at this time.
            self.sim.call_soon(self._resume, target)
        else:
            target.callbacks.append(self._resume)
