"""Small statistical helpers used by monitors and the PMM tests.

Only :mod:`numpy` is a hard dependency of the library, so the normal and
Student-t quantiles needed for confidence intervals and large-sample
tests [Devo91] are implemented here (and unit-tested against scipy,
which is a test-only dependency).
"""

from __future__ import annotations

import math


def normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1), far tighter than the simulation
    noise it is compared against.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"normal_ppf requires 0 < p < 1, got {p}")

    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )

    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


def t_ppf(p: float, dof: int) -> float:
    """Student-t quantile via the Cornish-Fisher expansion around z.

    Good to a few parts in 1e-3 for ``dof >= 3``, which is ample for
    batch-means confidence intervals on simulation output.
    """
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    z = normal_ppf(p)
    if dof > 200:
        return z
    g1 = (z**3 + z) / 4.0
    g2 = (5.0 * z**5 + 16.0 * z**3 + 3.0 * z) / 96.0
    g3 = (3.0 * z**7 + 19.0 * z**5 + 17.0 * z**3 - 15.0 * z) / 384.0
    g4 = (79.0 * z**9 + 776.0 * z**7 + 1482.0 * z**5 - 1920.0 * z**3 - 945.0 * z) / 92160.0
    return z + g1 / dof + g2 / dof**2 + g3 / dof**3 + g4 / dof**4
