"""Shared-resource primitives.

The only resource abstraction the RTDBS model needs from the kernel is a
single-server, *preemptive-resume*, priority-ordered server: the CPU.
(The disks implement their own non-preemptive ED + elevator queueing in
:mod:`repro.rtdbs.disk` because their service times depend on physical
head position.)

Priorities are "smaller wins" -- the RTDBS uses absolute deadlines as
priorities (Earliest Deadline scheduling [Liu73]).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.monitor import TimeWeighted


class ServiceRequest(Event):
    """Completion event for a unit of work submitted to a server.

    The request can be cancelled (e.g. when a query is aborted at its
    deadline); a cancelled request never fires and is discarded by the
    server, and any work already performed is simply lost.
    """

    __slots__ = ("work_remaining", "priority", "_seq")

    def __init__(self, sim, work: float, priority: float, seq: int):
        super().__init__(sim)
        self.work_remaining = work
        self.priority = priority
        self._seq = seq

    def _sort_key(self) -> Tuple[float, int]:
        return (self.priority, self._seq)


class CallbackBurst:
    """A unit of server work that invokes a plain callback on completion.

    The Event-free fast path for :meth:`PreemptiveServer.submit_call`:
    callers that chain work through callbacks (the per-block CPU+disk
    pipeline) skip the Event allocation, the callbacks list, and the
    kernel's event dispatch entirely.  Shares the queue discipline with
    :class:`ServiceRequest` (same ``priority``/``_seq``/``work_remaining``
    interface); ``_gen`` invalidates a scheduled completion after a
    preemption or cancellation.
    """

    __slots__ = ("work_remaining", "priority", "_seq", "callback", "_gen", "_cancelled")

    def __init__(self, work: float, priority: float, seq: int, callback):
        self.work_remaining = work
        self.priority = priority
        self._seq = seq
        self.callback = callback
        self._gen = 0
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def triggered(self) -> bool:
        return False  # completion is a callback, never an event state

    def cancel(self) -> None:
        self._cancelled = True
        self._gen += 1

    def _sort_key(self) -> Tuple[float, int]:
        return (self.priority, self._seq)


class PreemptiveServer:
    """Single server with preemptive-resume priority scheduling.

    ``rate`` converts work units into seconds (for the CPU: instructions
    per second).  When a request with a smaller priority value arrives
    while another is in service, the running request is paused with its
    remaining work recorded, and resumes -- without losing progress --
    once it is again the highest-priority request.

    Utilisation is tracked with a time-weighted busy indicator so the
    PMM resource-utilisation heuristic can read windowed averages.
    """

    def __init__(self, sim, rate: float, name: str = "server"):
        if rate <= 0:
            raise ValueError(f"server rate must be positive, got {rate}")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._queue: List[Tuple[float, int, ServiceRequest]] = []
        self._sequence = 0
        self._current: Optional[ServiceRequest] = None
        self._current_started: float = 0.0
        self.busy = TimeWeighted(sim, initial=0.0)
        #: Pre-bound completion callback (stable identity, so _start can
        #: tell whether a resumed request already carries it).
        self._complete_cb = self._complete

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of requests waiting (not counting the one in service)."""
        self._compact()
        return len(self._queue)

    @property
    def in_service(self) -> Optional[ServiceRequest]:
        """The request currently holding the server, if any."""
        return self._current

    def submit(self, work: float, priority: float) -> ServiceRequest:
        """Submit ``work`` units at ``priority`` (smaller = more urgent).

        Returns the completion event.  Zero-work requests complete
        immediately without touching the queue.
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        self._sequence += 1
        request = ServiceRequest(self.sim, float(work), float(priority), self._sequence)
        if work == 0:
            request.succeed(None)
            return request
        self._enqueue(request)
        return request

    def submit_call(self, work: float, priority: float, callback) -> CallbackBurst:
        """Submit work whose completion invokes ``callback(burst)``.

        The Event-free fast path: same preemptive-resume ED discipline
        as :meth:`submit`, but completion is a direct callback with no
        event allocation or kernel dispatch.  Zero-work bursts complete
        on the next kernel step (mirroring a zero-work :meth:`submit`).
        """
        self._sequence += 1
        burst = CallbackBurst(float(work), float(priority), self._sequence, callback)
        if work == 0:
            self.sim.call_soon(callback, burst)
            return burst
        self._enqueue(burst)
        return burst

    def resubmit_call(self, burst: CallbackBurst, work: float, priority: float) -> None:
        """Re-submit a completed :class:`CallbackBurst` with new work.

        Callers that issue one burst at a time (the per-block CPU+disk
        pipeline) reuse a single burst object per query instead of
        allocating one per block.  The burst must not be in service or
        queued.
        """
        self._sequence += 1
        burst._seq = self._sequence
        burst.priority = priority
        burst.work_remaining = work
        self._enqueue(burst)

    def _enqueue(self, request) -> None:
        current = self._current
        if current is None:
            self._start(request)
        elif request.priority < current.priority or (
            request.priority == current.priority and request._seq < current._seq
        ):
            self._preempt()
            self._start(request)
        else:
            heapq.heappush(self._queue, (request.priority, request._seq, request))

    def cancel(self, request: ServiceRequest) -> None:
        """Withdraw a request; if it is in service the server moves on."""
        if request.triggered or request.cancelled:
            return
        request.cancel()  # also invalidates any scheduled completion
        if self._current is request:
            self._current = None
            self._dispatch_next()
        # Queued cancelled requests are dropped lazily by _compact().

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)

    def _start(self, request) -> None:
        self._current = request
        self._current_started = self.sim.now
        self.busy.record_if_changed(1.0)
        duration = request.work_remaining / self.rate
        # The request is its own completion timer, scheduled directly
        # at its finish time (one kernel entry per burst, no Timeout).
        # Preemption bumps the request's generation, which invalidates
        # the pending heap entry without an O(n) removal; the request
        # is then re-scheduled when it regains the server.
        if type(request) is CallbackBurst:
            self.sim.call_later(duration, self._burst_done, (request, request._gen))
        else:
            callbacks = request.callbacks
            if not callbacks or callbacks[0] is not self._complete_cb:
                callbacks.insert(0, self._complete_cb)
            self.sim._schedule_event(request, duration)

    def _preempt(self) -> None:
        request = self._current
        assert request is not None
        elapsed = self.sim.now - self._current_started
        request.work_remaining = max(0.0, request.work_remaining - elapsed * self.rate)
        request._gen += 1  # stale the scheduled completion
        self._current = None
        heapq.heappush(self._queue, (request.priority, request._seq, request))

    def _complete(self, request: ServiceRequest) -> None:
        request.work_remaining = 0.0
        self._current = None
        self._dispatch_next()

    def _burst_done(self, token) -> None:
        burst, gen = token
        if burst._gen != gen or self._current is not burst:
            return  # stale: preempted, rescheduled, or cancelled
        burst.work_remaining = 0.0
        self._current = None
        self._dispatch_next()
        burst.callback(burst)

    def _dispatch_next(self) -> None:
        self._compact()
        if self._queue:
            _prio, _seq, request = heapq.heappop(self._queue)
            self._start(request)
        else:
            self.busy.record_if_changed(0.0)
