"""Shared-resource primitives.

The only resource abstraction the RTDBS model needs from the kernel is a
single-server, *preemptive-resume*, priority-ordered server: the CPU.
(The disks implement their own non-preemptive ED + elevator queueing in
:mod:`repro.rtdbs.disk` because their service times depend on physical
head position.)

Priorities are "smaller wins" -- the RTDBS uses absolute deadlines as
priorities (Earliest Deadline scheduling [Liu73]).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.monitor import TimeWeighted


class ServiceRequest(Event):
    """Completion event for a unit of work submitted to a server.

    The request can be cancelled (e.g. when a query is aborted at its
    deadline); a cancelled request never fires and is discarded by the
    server, and any work already performed is simply lost.
    """

    __slots__ = ("work_remaining", "priority", "_seq")

    def __init__(self, sim, work: float, priority: float, seq: int):
        super().__init__(sim)
        self.work_remaining = work
        self.priority = priority
        self._seq = seq

    def _sort_key(self) -> Tuple[float, int]:
        return (self.priority, self._seq)


class PreemptiveServer:
    """Single server with preemptive-resume priority scheduling.

    ``rate`` converts work units into seconds (for the CPU: instructions
    per second).  When a request with a smaller priority value arrives
    while another is in service, the running request is paused with its
    remaining work recorded, and resumes -- without losing progress --
    once it is again the highest-priority request.

    Utilisation is tracked with a time-weighted busy indicator so the
    PMM resource-utilisation heuristic can read windowed averages.
    """

    def __init__(self, sim, rate: float, name: str = "server"):
        if rate <= 0:
            raise ValueError(f"server rate must be positive, got {rate}")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._queue: List[Tuple[float, int, ServiceRequest]] = []
        self._sequence = 0
        self._current: Optional[ServiceRequest] = None
        self._current_started: float = 0.0
        self._completion_timer: Optional[Event] = None
        self.busy = TimeWeighted(sim, initial=0.0)

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of requests waiting (not counting the one in service)."""
        self._compact()
        return len(self._queue)

    @property
    def in_service(self) -> Optional[ServiceRequest]:
        """The request currently holding the server, if any."""
        return self._current

    def submit(self, work: float, priority: float) -> ServiceRequest:
        """Submit ``work`` units at ``priority`` (smaller = more urgent).

        Returns the completion event.  Zero-work requests complete
        immediately without touching the queue.
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        self._sequence += 1
        request = ServiceRequest(self.sim, float(work), float(priority), self._sequence)
        if work == 0:
            request.succeed(None)
            return request
        if self._current is None:
            self._start(request)
        elif (priority, request._seq) < self._current._sort_key():
            self._preempt()
            self._start(request)
        else:
            heapq.heappush(self._queue, (priority, request._seq, request))
        return request

    def cancel(self, request: ServiceRequest) -> None:
        """Withdraw a request; if it is in service the server moves on."""
        if request.triggered or request.cancelled:
            return
        request.cancel()
        if self._current is request:
            if self._completion_timer is not None:
                self._completion_timer.cancel()
                self._completion_timer = None
            self._current = None
            self._dispatch_next()
        # Queued cancelled requests are dropped lazily by _compact().

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)

    def _start(self, request: ServiceRequest) -> None:
        self._current = request
        self._current_started = self.sim.now
        self.busy.record(1.0)
        duration = request.work_remaining / self.rate
        timer = self.sim.timeout(duration)
        timer.callbacks.append(self._complete)
        self._completion_timer = timer

    def _preempt(self) -> None:
        request = self._current
        assert request is not None
        elapsed = self.sim.now - self._current_started
        request.work_remaining = max(0.0, request.work_remaining - elapsed * self.rate)
        if self._completion_timer is not None:
            self._completion_timer.cancel()
            self._completion_timer = None
        self._current = None
        heapq.heappush(self._queue, (request.priority, request._seq, request))

    def _complete(self, _timer: Event) -> None:
        request = self._current
        self._current = None
        self._completion_timer = None
        if request is not None and not request.cancelled:
            request.work_remaining = 0.0
            request.succeed(None)
        self._dispatch_next()

    def _dispatch_next(self) -> None:
        self._compact()
        if self._queue:
            _prio, _seq, request = heapq.heappop(self._queue)
            self._start(request)
        else:
            self.busy.record(0.0)
