"""Always-on-able conservation laws for the simulated RTDBS.

The simulator's statistics are only as trustworthy as its internal
accounting, and the paper's figures exercise a handful of hand-built
workloads -- nothing guarantees the accounting stays consistent on the
workloads the scenario generator dreams up.  :class:`InvariantChecker`
closes that gap: it hooks the natural seams of the system (allocation,
buffer-ledger updates, departures, end of run) and asserts the
conservation laws that must hold on *every* workload:

* **memory** -- reservations are never negative, never exceed the pool,
  and the LRU region's capacity is exactly the unreserved remainder;
  every running query's grant matches its ledger entry;
* **policy contracts** -- an allocation vector only names present
  queries, grants lie inside each query's ``[min, max]`` demand
  envelope (MinMax never grants below the minimum), the vector never
  oversubscribes memory (PMM admission never exceeds the pool), and an
  explicit MPL limit is honoured;
* **population** -- ``arrivals = departures + present`` and
  ``departures = completions + misses`` at every departure;
* **disk queues** -- every submitted access is accounted for: prefetch
  cache hit, served by the arm, cancelled while queued, or still
  queued -- nothing lost, nothing double-served;
* **results** -- the final :class:`SimulationResult` is internally
  consistent (counts add up, ratios and utilisations in range).

The checker is **off by default** (a ``None`` attribute test on the hot
paths); tests and the fuzz harness enable it via
``RTDBSystem(config, policy, invariants=True)`` or, through the
experiment engine's ``setup`` hook, :func:`attach_invariants`.
Violations raise :class:`InvariantViolation` immediately, carrying the
simulated time and policy for reproduction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.allocation import QueryDemand
    from repro.core.broker import MemoryBroker
    from repro.rtdbs.system import RTDBSystem, SimulationResult

#: Slack for floating-point utilisation/ratio comparisons.
TOLERANCE = 1e-9


class InvariantViolation(AssertionError):
    """A conservation law failed; the simulation state is inconsistent."""


class InvariantChecker:
    """Runtime assertion harness over one :class:`RTDBSystem`.

    One checker instance watches one system (or one standalone broker)
    at a time; attaching it to a *new* target first resets all counters
    and recorded failures, so a checker can be reused across runs
    without carrying stale state.  ``checks`` counts assertions by
    category so tests can prove the hooks actually fired.
    """

    def __init__(self) -> None:
        self.system: Optional["RTDBSystem"] = None
        self.broker: Optional["MemoryBroker"] = None
        #: Live shared buffer pool (``repro.serve``'s
        #: :class:`~repro.serve.dataplane.LiveBufferPool``), when the
        #: checker watches a standalone broker with a live data plane.
        self.pool = None
        self.checks: Dict[str, int] = {}
        #: Every violation message, in detection order.  A violation
        #: raised inside a simulation *process* is captured by the
        #: process machinery (``Process.fail``) and may have no waiter;
        #: recording it here lets :meth:`check_final` re-raise it at
        #: the end of the run, so no violation can be swallowed.
        self.failures: list = []
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the counters and forget recorded failures."""
        self.checks = {
            "allocation": 0,
            "buffers": 0,
            "population": 0,
            "final": 0,
        }
        self.failures = []

    def detach(self) -> None:
        """Unhook from the current system/broker (counters survive)."""
        if self.system is not None:
            self.system.invariants = None
            self.system.query_manager.invariants = None
            self.system.query_manager.broker.invariants = None
            self.system.buffers.invariants = None
            self.system = None
        if self.broker is not None:
            self.broker.invariants = None
            self.broker = None
        if self.pool is not None:
            self.pool.invariants = None
            self.pool = None

    def attach(self, system: "RTDBSystem") -> "InvariantChecker":
        """Install the checker on a built (not yet run) system.

        Re-attaching to a different system detaches from the previous
        one and resets the counters -- each attachment starts a fresh
        accounting epoch.
        """
        if self.system is not None or self.broker is not None or self.pool is not None:
            self.detach()
            self.reset()
        self.system = system
        system.invariants = self
        system.query_manager.invariants = self
        system.query_manager.broker.invariants = self
        system.buffers.invariants = self
        return self

    def attach_broker(self, broker: "MemoryBroker", pool=None) -> "InvariantChecker":
        """Install the checker on a standalone broker (no simulator).

        The live serving layer uses this: the allocation-contract laws
        are checked on every decision the broker makes, and -- when the
        live shared buffer pool is given -- the buffer-ledger laws are
        checked on every pool update too (``pool`` exposes the same
        ledger surface as the DES :class:`BufferManager`, so
        :meth:`check_buffers` applies verbatim).
        """
        if self.system is not None or self.broker is not None or self.pool is not None:
            self.detach()
            self.reset()
        self.broker = broker
        broker.invariants = self
        if pool is not None:
            self.pool = pool
            pool.invariants = self
        return self

    def _fail(self, law: str, detail: str) -> None:
        if self.system is not None:
            now = self.system.sim.now
            policy = self.system.policy.name
        elif self.broker is not None:
            now = float("nan")
            policy = self.broker.policy.name
        else:
            now = float("nan")
            policy = "?"
        message = f"[{law}] t={now:.6f} policy={policy}: {detail}"
        self.failures.append(message)
        raise InvariantViolation(message)

    # ------------------------------------------------------------------
    # hook: MemoryBroker.reallocate, on every fresh allocation vector
    # ------------------------------------------------------------------
    def check_allocation(
        self,
        broker,
        demands: Sequence["QueryDemand"],
        allocation: Dict[int, int],
    ) -> None:
        """Policy-contract laws, checked before the vector is enacted."""
        self.checks["allocation"] += 1
        memory = broker.total_pages
        envelopes = {demand.qid: demand for demand in demands}
        total = 0
        granted = 0
        for qid, pages in allocation.items():
            demand = envelopes.get(qid)
            if demand is None:
                self._fail(
                    "allocation", f"vector names absent query {qid} (pages={pages})"
                )
            if pages < 0:
                self._fail("allocation", f"query {qid} granted {pages} < 0 pages")
            if pages > 0:
                granted += 1
                total += pages
                if pages < demand.min_pages or pages > demand.max_pages:
                    self._fail(
                        "allocation",
                        f"query {qid} granted {pages} pages outside its demand "
                        f"envelope [{demand.min_pages}, {demand.max_pages}]",
                    )
        if total > memory:
            self._fail(
                "allocation",
                f"vector allocates {total} pages of a {memory}-page pool",
            )
        limit = getattr(broker.policy, "target_mpl", None)
        if limit is not None and granted > limit:
            self._fail(
                "allocation",
                f"{granted} queries admitted under an MPL limit of {limit}",
            )

    # ------------------------------------------------------------------
    # hook: BufferManager.apply_allocation / release
    # ------------------------------------------------------------------
    def check_buffers(self, buffers) -> None:
        """Reservation-ledger laws, checked after every ledger update."""
        self.checks["buffers"] += 1
        reserved = 0
        for qid, pages in buffers._reserved.items():
            if pages <= 0:
                self._fail(
                    "buffers", f"ledger holds a non-positive entry: {qid} -> {pages}"
                )
            reserved += pages
        if reserved > buffers.total_pages:
            self._fail(
                "buffers",
                f"{reserved} pages reserved of a {buffers.total_pages}-page pool",
            )
        expected_free = buffers.total_pages - reserved
        if buffers.cache.capacity != expected_free:
            self._fail(
                "buffers",
                f"LRU region capacity {buffers.cache.capacity} != free "
                f"pages {expected_free}",
            )
        if len(buffers.cache) > buffers.cache.capacity:
            self._fail(
                "buffers",
                f"LRU region holds {len(buffers.cache)} pages over a "
                f"capacity of {buffers.cache.capacity}",
            )

    # ------------------------------------------------------------------
    # hook: QueryManager._depart, after every departure
    # ------------------------------------------------------------------
    def check_population(self, query_manager) -> None:
        """Query-count conservation, checked on every departure."""
        self.checks["population"] += 1
        departures = query_manager.departures
        completions = query_manager.completions
        misses = query_manager.misses
        if completions + misses != departures:
            self._fail(
                "population",
                f"departures {departures} != completions {completions} + "
                f"misses {misses}",
            )
        system = self.system
        if system is not None:
            arrivals = system.source.arrivals
            present = len(query_manager._jobs)
            if arrivals != departures + present:
                self._fail(
                    "population",
                    f"arrivals {arrivals} != departures {departures} + "
                    f"present {present}",
                )
        # Every grant held by a present query matches the ledger.
        buffers = query_manager.buffers
        for qid, job in query_manager._jobs.items():
            if buffers.reservation_of(qid) != job.grant.pages:
                self._fail(
                    "population",
                    f"query {qid} holds a {job.grant.pages}-page grant but the "
                    f"ledger records {buffers.reservation_of(qid)}",
                )

    # ------------------------------------------------------------------
    # hook: RTDBSystem.run, once after the horizon
    # ------------------------------------------------------------------
    def check_final(self, system: "RTDBSystem", result: "SimulationResult") -> None:
        """End-of-run conservation across every component.

        Re-raises any violation that was detected mid-run but swallowed
        by the process machinery (a failed source process has no
        waiter), then checks the end-state laws.
        """
        self.checks["final"] += 1
        if self.failures:
            raise InvariantViolation(self.failures[0])
        query_manager = system.query_manager
        present = len(query_manager._jobs)
        if system.source.arrivals != query_manager.departures + present:
            self._fail(
                "final",
                f"arrivals {system.source.arrivals} != departures "
                f"{query_manager.departures} + in-flight {present}",
            )
        for disk in system.disks:
            live_queue = sum(1 for entry in disk._queue if not entry[2].cancelled)
            accounted = (
                disk.cache.hits + disk.accesses + disk.cancelled_queued + live_queue
            )
            if disk.submitted != accounted:
                self._fail(
                    "final",
                    f"disk {disk.disk_id}: {disk.submitted} submitted accesses "
                    f"but {accounted} accounted for (cache hits "
                    f"{disk.cache.hits} + served {disk.accesses} + cancelled "
                    f"{disk.cancelled_queued} + queued {live_queue})",
                )
        self.check_buffers(system.buffers)
        self.check_result(result)

    def check_result(self, result: "SimulationResult") -> None:
        """Structural sanity of a finished :class:`SimulationResult`."""
        if result.served != result.completed + result.missed:
            self._fail(
                "final",
                f"served {result.served} != completed {result.completed} + "
                f"missed {result.missed}",
            )
        if result.served > result.arrivals:
            self._fail(
                "final",
                f"served {result.served} queries but only {result.arrivals} arrived",
            )
        if result.served:
            ratio = result.missed / result.served
            if abs(result.miss_ratio - ratio) > TOLERANCE:
                self._fail(
                    "final",
                    f"miss ratio {result.miss_ratio} != missed/served {ratio}",
                )
        if not -TOLERANCE <= result.miss_ratio <= 1.0 + TOLERANCE:
            self._fail("final", f"miss ratio {result.miss_ratio} outside [0, 1]")
        for label, value in (
            ("cpu", result.cpu_utilization),
            *((f"disk{i}", u) for i, u in enumerate(result.disk_utilizations)),
        ):
            if not -TOLERANCE <= value <= 1.0 + TOLERANCE:
                self._fail("final", f"{label} utilisation {value} outside [0, 1]")
        if result.observed_mpl < -TOLERANCE:
            self._fail("final", f"negative observed MPL {result.observed_mpl}")
        per_class_served = sum(cls.served for cls in result.per_class.values())
        if result.per_class and per_class_served != result.served:
            self._fail(
                "final",
                f"per-class served counts sum to {per_class_served}, "
                f"not {result.served}",
            )


def attach_invariants(system: "RTDBSystem") -> InvariantChecker:
    """Create and attach a checker; the engine's picklable ``setup`` hook.

    Use with :class:`repro.experiments.runner.RunSpec` as
    ``setup=attach_invariants, setup_signature=INVARIANTS_SIGNATURE``.
    """
    return InvariantChecker().attach(system)


#: Cache-key contribution of :func:`attach_invariants` runs.  The hook
#: only asserts -- it never changes simulation behaviour -- so results
#: are interchangeable with un-checked runs; the signature still keys
#: them separately out of caution.
INVARIANTS_SIGNATURE = ("invariants", 1)
