"""Parameter tables of the paper, encoded as dataclasses.

* :class:`PMMParams`      -- Table 1 (PMM algorithm parameters).
* :class:`RelationGroup`, :class:`DatabaseParams`, :class:`QueryClass`,
  :class:`WorkloadParams` -- Table 2 (database and workload model).
* :class:`ResourceParams` -- Table 3 (physical resource model).
* :class:`CPUCosts`       -- Table 4 (CPU instructions per operation).

Values the OCR of the paper garbled are restored from context and
flagged in ``DESIGN.md`` (``seek_factor = 0.617`` from the [Bitt88] disk
model, ``tuple_size = 200`` bytes, hash-join fudge factor ``F = 1.1``
from the paper's own worked numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PMMParams:
    """Table 1: knobs of the PMM algorithm."""

    #: Re-evaluation frequency, in query completions (``SampleSize``).
    sample_size: int = 30
    #: Lower edge of the "desirable" bottleneck-utilisation range.
    util_low: float = 0.70
    #: Upper edge of the "desirable" bottleneck-utilisation range.
    util_high: float = 0.85
    #: Confidence level of the large-sample tests guarding PMM's
    #: Max -> MinMax adaptation (``AdaptConfLevel``).
    adapt_conf_level: float = 0.95
    #: Confidence level of the workload-change tests
    #: (``ChangeConfLevel``); high so inherent fluctuations rarely
    #: trigger a spurious restart.
    change_conf_level: float = 0.99

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if self.sample_size < 2:
            raise ValueError("SampleSize must be at least 2")
        if not 0.0 < self.util_low < self.util_high <= 1.0:
            raise ValueError(
                f"need 0 < UtilLow < UtilHigh <= 1, got [{self.util_low}, {self.util_high}]"
            )
        for level in (self.adapt_conf_level, self.change_conf_level):
            if not 0.5 < level < 1.0:
                raise ValueError(f"confidence levels must lie in (0.5, 1), got {level}")


@dataclass(frozen=True)
class RelationGroup:
    """One group of relations (a row of the upper half of Table 2).

    ``rel_per_disk`` clustered relations are placed on every disk, with
    sizes chosen at equal intervals from ``size_range`` -- e.g. 5
    relations from [100, 200] pages gives 100, 125, 150, 175, 200.
    """

    #: Number of relations of this group placed on each disk.
    rel_per_disk: int
    #: Inclusive range of relation sizes, in pages.
    size_range: Tuple[int, int]

    def relation_sizes(self) -> List[int]:
        """The sizes of this group's relations on one disk."""
        count = self.rel_per_disk
        low, high = self.size_range
        if count <= 0:
            raise ValueError("rel_per_disk must be positive")
        if low > high or low <= 0:
            raise ValueError(f"bad size range {self.size_range}")
        if count == 1:
            return [int(round((low + high) / 2.0))]
        step = (high - low) / (count - 1)
        return [int(round(low + i * step)) for i in range(count)]


@dataclass(frozen=True)
class DatabaseParams:
    """Database half of Table 2."""

    #: The relation groups (``NumGroups`` is their count).
    groups: Tuple[RelationGroup, ...]
    #: Tuple size in bytes (``TupleSize``).
    tuple_size: int = 200

    @property
    def num_groups(self) -> int:
        """``NumGroups``."""
        return len(self.groups)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not self.groups:
            raise ValueError("database needs at least one relation group")
        if self.tuple_size <= 0:
            raise ValueError("tuple size must be positive")
        for group in self.groups:
            group.relation_sizes()  # validates ranges


HASH_JOIN = "hash_join"
EXTERNAL_SORT = "external_sort"


@dataclass(frozen=True)
class ArrivalModulation:
    """Piecewise-constant modulation of a class's Poisson arrival rate.

    The class cycles through *states* ``0, 1, 2, ...``; in state ``i``
    the instantaneous arrival rate is ``arrival_rate * factors[i %
    len(factors)]`` and the state lasts ``dwell_seconds[i %
    len(dwell_seconds)]`` seconds -- exactly that long when
    ``stochastic`` is False (deterministic phase shifts), or an
    exponential dwell with that mean when True (an on/off MMPP when
    ``factors`` alternates a high and a low value).

    The Source realises the modulated process by *thinning* a Poisson
    process running at the peak rate, which is exact for
    piecewise-constant rates.  ``factors == (1.0,) * n`` degenerates to
    the plain homogeneous process, arrival times bit-identical to an
    unmodulated class.
    """

    #: Multiplicative rate factors, cycled over states (``0.0`` = off).
    factors: Tuple[float, ...]
    #: Dwell time per state, cycled independently of ``factors``
    #: (seconds; the mean dwell when ``stochastic``).
    dwell_seconds: Tuple[float, ...]
    #: Exponential dwells (MMPP bursts) instead of fixed phases.
    stochastic: bool = False

    @property
    def peak_factor(self) -> float:
        """The largest rate factor (the thinning envelope)."""
        return max(self.factors)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if len(self.factors) < 2:
            raise ValueError("modulation needs at least two rate factors")
        if any(factor < 0.0 for factor in self.factors):
            raise ValueError(f"negative rate factor in {self.factors}")
        if self.peak_factor <= 0.0:
            raise ValueError("at least one rate factor must be positive")
        if not self.dwell_seconds:
            raise ValueError("modulation needs at least one dwell time")
        if any(dwell <= 0.0 for dwell in self.dwell_seconds):
            raise ValueError(f"dwell times must be positive, got {self.dwell_seconds}")


@dataclass(frozen=True)
class QueryClass:
    """One workload class (a row of the lower half of Table 2)."""

    #: Class name, used in per-class statistics.
    name: str
    #: ``QueryType``: :data:`HASH_JOIN` or :data:`EXTERNAL_SORT`.
    query_type: str
    #: ``RelGroup``: one group index for sorts, two for joins.  The
    #: smaller of a join's two chosen relations becomes the inner R.
    rel_groups: Tuple[int, ...]
    #: ``lambda``: mean arrival rate, queries/second (Poisson process).
    arrival_rate: float
    #: ``SRInterval``: slack ratios drawn uniformly from this range.
    slack_range: Tuple[float, float] = (2.5, 7.5)
    #: Optional bursty / phase-shifting arrival-rate modulation layered
    #: over the Poisson process (the paper's workloads are all
    #: homogeneous; generated scenarios are not).
    modulation: Optional[ArrivalModulation] = None

    def validate(self, num_groups: int) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.query_type not in (HASH_JOIN, EXTERNAL_SORT):
            raise ValueError(f"unknown query type {self.query_type!r}")
        expected = 2 if self.query_type == HASH_JOIN else 1
        if len(self.rel_groups) != expected:
            raise ValueError(
                f"class {self.name!r}: {self.query_type} needs {expected} relation "
                f"group(s), got {self.rel_groups}"
            )
        for group in self.rel_groups:
            if not 0 <= group < num_groups:
                raise ValueError(f"class {self.name!r}: group index {group} out of range")
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        low, high = self.slack_range
        if not 0 < low <= high:
            raise ValueError(f"bad slack range {self.slack_range}")
        if self.modulation is not None:
            self.modulation.validate()


@dataclass(frozen=True)
class WorkloadParams:
    """Workload half of Table 2."""

    classes: Tuple[QueryClass, ...]
    #: ``F``: hash-table space overhead factor [Shap86].  The paper's
    #: worked example (max demand 1321 pages for an 1200-page inner
    #: relation) pins this at 1.1.
    fudge_factor: float = 1.1
    #: Result tuples produced per probing (outer) tuple; the paper does
    #: not vary this, so joins default to producing one output tuple
    #: per outer tuple.
    join_selectivity: float = 1.0

    @property
    def num_classes(self) -> int:
        """``NumClasses``."""
        return len(self.classes)

    def validate(self, num_groups: int) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not self.classes:
            raise ValueError("workload needs at least one query class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        for cls in self.classes:
            cls.validate(num_groups)
        if self.fudge_factor < 1.0:
            raise ValueError("fudge factor must be >= 1")
        if self.join_selectivity < 0:
            raise ValueError("join selectivity must be non-negative")


@dataclass(frozen=True)
class ResourceParams:
    """Table 3: the physical resource model."""

    #: ``CPUSpeed``: MIPS rating of the CPU.
    cpu_mips: float = 40.0
    #: ``NumDisks``.
    num_disks: int = 10
    #: ``SeekFactor`` in msec: seek over n tracks takes
    #: ``SeekFactor * sqrt(n)`` msec [Bitt88].
    seek_factor_ms: float = 0.617
    #: ``RotationTime``: one full rotation, msec.
    rotation_ms: float = 16.7
    #: ``NumCylinders`` per disk.
    num_cylinders: int = 1500
    #: ``CylinderSize``: pages per cylinder.
    cylinder_size: int = 90
    #: Pages that pass under the head in one rotation (a cylinder is
    #: ``cylinder_size / pages_per_track`` tracks).  Not in Table 3;
    #: chosen together with the sequential-continuation rule so a
    #: query's stand-alone time lands in the paper's Table 7 range
    #: (~25 ms per 6-page sequential block on an early-1990s ~32 KB
    #: track).
    pages_per_track: int = 6
    #: ``PageSize`` in bytes.
    page_size: int = 8192
    #: ``BlockSize``: pages fetched per sequential I/O that misses the
    #: disk cache (merge-phase reads are page-at-a-time).
    block_size: int = 6
    #: ``M``: total buffer pool, pages.
    memory_pages: int = 2560
    #: Per-disk prefetch cache, bytes (256 KBytes in the paper).
    disk_cache_bytes: int = 256 * 1024
    #: Draw rotational latency ~ U(0, RotationTime) when True;
    #: otherwise use the expected RotationTime/2 deterministically.
    stochastic_rotation: bool = True

    @property
    def cpu_rate(self) -> float:
        """CPU speed in instructions per second."""
        return self.cpu_mips * 1e6

    @property
    def rotation_s(self) -> float:
        """Full rotation time in seconds."""
        return self.rotation_ms / 1e3

    @property
    def transfer_s_per_page(self) -> float:
        """Transfer time for one page: a full track passes under the
        head in one rotation, so a page takes 1/pages_per_track of it."""
        return self.rotation_s / self.pages_per_track

    @property
    def disk_cache_pages(self) -> int:
        """Capacity of the per-disk prefetch cache, in pages."""
        return max(1, self.disk_cache_bytes // self.page_size)

    @property
    def pages_per_disk(self) -> int:
        """Total pages on one disk."""
        return self.num_cylinders * self.cylinder_size

    def seek_time(self, distance_cylinders: int) -> float:
        """Seconds to seek across ``distance_cylinders`` (0 -> 0)."""
        if distance_cylinders <= 0:
            return 0.0
        return self.seek_factor_ms * (distance_cylinders**0.5) / 1e3

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.cpu_mips <= 0:
            raise ValueError("CPU speed must be positive")
        if self.num_disks <= 0:
            raise ValueError("need at least one disk")
        if self.block_size <= 0 or self.block_size > self.cylinder_size:
            raise ValueError("block size must lie in [1, cylinder size]")
        if self.memory_pages <= 0:
            raise ValueError("buffer pool must be positive")
        if self.num_cylinders <= 0 or self.cylinder_size <= 0:
            raise ValueError("disk geometry must be positive")
        if self.pages_per_track <= 0 or self.pages_per_track > self.cylinder_size:
            raise ValueError("pages_per_track must lie in [1, cylinder_size]")


@dataclass(frozen=True)
class CPUCosts:
    """Table 4: CPU instructions per operation."""

    start_io: int = 1_000
    initiate_query: int = 40_000
    terminate_query: int = 10_000
    hash_insert: int = 100  # hash tuple and insert into hash table
    hash_probe: int = 200  # hash tuple and probe hash table
    hash_output: int = 100  # hash tuple and copy to output buffer
    sort_copy: int = 64  # copy a tuple to output buffer
    key_compare: int = 50  # compare two keys


@dataclass(frozen=True)
class SimulationConfig:
    """A complete, runnable experiment description."""

    database: DatabaseParams
    workload: WorkloadParams
    resources: ResourceParams = field(default_factory=ResourceParams)
    pmm: PMMParams = field(default_factory=PMMParams)
    cpu_costs: CPUCosts = field(default_factory=CPUCosts)
    #: Random seed; every stochastic stream derives from it.
    seed: int = 1
    #: Simulated horizon in seconds (the paper runs 10 hours).
    duration: float = 36_000.0
    #: Optional early stop after this many query departures.
    max_completions: Optional[int] = None
    #: Place temp files on the operand's disk ("local") or spread them
    #: round-robin over all disks ("round_robin").
    temp_placement: str = "local"
    #: Abort queries at their deadline (firm RTDBS semantics [Hari90]).
    firm_deadlines: bool = True

    def validate(self) -> "SimulationConfig":
        """Validate all nested parameter tables; returns self."""
        self.database.validate()
        self.workload.validate(self.database.num_groups)
        self.resources.validate()
        self.pmm.validate()
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.temp_placement not in ("local", "round_robin"):
            raise ValueError(f"unknown temp placement {self.temp_placement!r}")
        return self

    def with_overrides(self, **changes) -> "SimulationConfig":
        """A copy with top-level fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)

    @property
    def tuples_per_page(self) -> int:
        """Tuples that fit on one page."""
        return max(1, self.resources.page_size // self.database.tuple_size)
