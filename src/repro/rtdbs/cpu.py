"""The CPU Manager: an ED-scheduled, preemptive-resume processor.

The CPU has a MIPS rating (``CPUSpeed``) and is scheduled by Earliest
Deadline [Liu73]: the burst belonging to the query with the most
imminent deadline always holds the processor, preempting (and later
resuming, without lost work) less urgent bursts.
"""

from __future__ import annotations

from repro.rtdbs.config import ResourceParams
from repro.sim.resources import CallbackBurst, PreemptiveServer, ServiceRequest
from repro.sim.simulator import Simulator


class CPU:
    """Thin wrapper binding a :class:`PreemptiveServer` to MIPS units."""

    def __init__(self, sim: Simulator, resources: ResourceParams):
        self.sim = sim
        self.resources = resources
        self._server = PreemptiveServer(sim, rate=resources.cpu_rate, name="cpu")
        self.instructions_executed = 0.0

    def execute(self, instructions: float, priority: float) -> ServiceRequest:
        """Submit a burst of ``instructions`` at ED ``priority``.

        Returns the completion event; the burst may be preempted and
        resumed arbitrarily often before it fires.
        """
        if instructions < 0:
            raise ValueError(f"negative instruction count: {instructions}")
        self.instructions_executed += instructions
        return self._server.submit(instructions, priority)

    def execute_call(self, instructions: float, priority: float, callback) -> CallbackBurst:
        """Submit a burst whose completion invokes ``callback(burst)``.

        The Event-free fast path for callers that chain resources via
        callbacks (the per-block CPU-then-disk pipeline).
        """
        if instructions < 0:
            raise ValueError(f"negative instruction count: {instructions}")
        self.instructions_executed += instructions
        return self._server.submit_call(instructions, priority, callback)

    def execute_reuse(self, burst: CallbackBurst, instructions: float, priority: float) -> None:
        """Re-submit a recycled :class:`CallbackBurst` with fresh work."""
        self.instructions_executed += instructions
        self._server.resubmit_call(burst, instructions, priority)

    def cancel(self, request: ServiceRequest) -> None:
        """Withdraw a burst (used when a query hits its firm deadline)."""
        self._server.cancel(request)

    def utilization(self) -> float:
        """Fraction of time the CPU has been busy since the run began."""
        return self._server.busy.mean()

    @property
    def busy(self):
        """Time-weighted busy indicator (for windowed PMM statistics)."""
        return self._server.busy

    @property
    def queue_length(self) -> int:
        """Bursts waiting behind the one in service."""
        return self._server.queue_length
