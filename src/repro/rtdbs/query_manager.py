"""The Query Manager: query lifecycle under firm deadlines.

Responsibilities (Section 4, plus firm-RTDBS semantics [Hari90]):

* keep the population of present queries (waiting for admission or
  executing) ordered by Earliest Deadline;
* drive the simulator-agnostic :class:`~repro.core.broker.MemoryBroker`
  on every arrival / departure / policy request, then enact its
  allocation decision: admit waiting queries granted memory, adjust
  running queries' grants (operators adapt), and suspend those whose
  grant dropped to zero;
* translate operator requests (CPU bursts, disk accesses, allocation
  waits) into simulated resource usage, charging the Table 4 "start an
  I/O" CPU cost before every disk access and consulting the buffer
  pool's LRU region for cacheable reads;
* abort a query the instant its deadline expires, wherever it is,
  releasing its memory and temp files -- it then counts as a missed,
  "served" query;
* after every ``SampleSize`` departures, hand the policy a batch
  summary (utilisations and realized MPL over the batch window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.broker import MemoryBroker
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.queries.base import MemoryGrant, Operator
from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess, READ
from repro.rtdbs.buffer_manager import BufferManager
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.cpu import CPU
from repro.rtdbs.disk import Disk
from repro.sim.events import Event, Interrupt
from repro.sim.monitor import TimeWeighted
from repro.sim.resources import CallbackBurst, ServiceRequest
from repro.sim.process import Process
from repro.sim.simulator import Simulator

WAITING = "waiting"
RUNNING = "running"
DONE = "done"
ABORTED = "aborted"


class _DiskOp(Event):
    """Completion event for one operator :class:`DiskAccess`.

    Chains the combined CPU submission (carried per-block burst plus
    the Table 4 start-I/O cost) and the disk access itself through
    plain callbacks, so the query's process suspends and resumes once
    per page-block instead of once per resource.  Resource ordering is
    unchanged: the disk request is still submitted at the simulated
    instant the CPU burst completes.

    The op is also the *disk request itself* (via ``Disk.submit_op``)
    and its CPU stage is an Event-free :class:`CallbackBurst`.  A job
    has at most one outstanding access, so the op (and its burst) are
    allocated once per query and recycled for every block.
    """

    __slots__ = ("cpu", "disk", "kind", "start_page", "npages", "priority",
                 "stage", "burst", "_seq", "cylinder")

    def __init__(self, sim, cpu, priority: float):
        super().__init__(sim)
        self.cpu = cpu
        self.priority = priority
        self.disk = None
        self.kind = READ
        self.start_page = 0
        self.npages = 0
        self.stage = "cpu"
        self.burst = CallbackBurst(0.0, priority, 0, self._cpu_done)

    def begin(self, disk, access, start_io: float) -> None:
        """Arm the op for one :class:`DiskAccess` and submit its CPU leg."""
        self._triggered = False
        self._value = None
        self.disk = disk
        self.kind = access.kind
        self.start_page = access.start_page
        self.npages = access.npages
        self.stage = "cpu"
        self.cpu.execute_reuse(self.burst, start_io + access.cpu, self.priority)

    def _cpu_done(self, _burst) -> None:
        if self._cancelled:
            return
        self.stage = "disk"
        if self.disk.submit_op(self):
            # Disk-cache hit: no arm time; complete in place (the
            # waiting process resumes synchronously, exactly when a
            # direct wait on the disk request would resume).
            self._triggered = True
            self._run_callbacks()

    def cancel_op(self) -> None:
        """Abort: withdraw whichever resource request is outstanding."""
        if self.stage == "cpu":
            self.cancel()
            self.cpu.cancel(self.burst)
        else:
            # The op *is* the disk request; the disk distinguishes
            # in-service (bookkeeping still runs) from queued requests.
            self.disk.cancel(self)


@dataclass
class QueryJob:
    """One query's runtime state."""

    qid: int
    class_name: str
    operator: Operator
    grant: MemoryGrant
    arrival: float
    deadline: float
    standalone: float
    state: str = WAITING
    admit_time: Optional[float] = None
    process: Optional[Process] = None
    #: Outstanding resource request handle: a :class:`_DiskOp`, a CPU
    #: :class:`ServiceRequest`, or an allocation-wait :class:`Event`.
    pending: Optional[object] = None
    #: Deadline-expiry timer (cancelled on completion).
    expiry_timer: Optional[Event] = None
    demand_min: int = 0
    demand_max: int = 0

    @property
    def priority(self) -> float:
        """ED priority: the absolute deadline (smaller = more urgent)."""
        return self.deadline

    @property
    def time_constraint(self) -> float:
        """Deadline minus arrival."""
        return self.deadline - self.arrival


class QueryManager:
    """Lifecycle engine binding operators to the simulated resources."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        policy: MemoryPolicy,
        cpu: CPU,
        disks: List[Disk],
        buffers: BufferManager,
    ):
        self.sim = sim
        self.config = config
        self.policy = policy
        self.cpu = cpu
        self.disks = disks
        self.buffers = buffers

        self._jobs: Dict[int, QueryJob] = {}
        #: The simulator-agnostic admission/allocation core.  It owns
        #: the policy-facing population, the departure counters, and
        #: the batch feedback cadence; this manager enacts its
        #: decisions against the simulated resources.
        self.broker = MemoryBroker(
            policy, buffers.total_pages, config.pmm.sample_size
        )
        #: Time-weighted number of admitted queries (the observed MPL).
        self.mpl_monitor = TimeWeighted(sim, initial=0.0)
        #: Time-weighted number of present queries (admitted + waiting).
        self.present_monitor = TimeWeighted(sim, initial=0.0)
        #: Callbacks invoked with each DepartureRecord (Source wires its
        #: statistics collection here).
        self.departure_listeners: List = []
        #: Optional stop condition: set by the system when a departure
        #: quota is reached.
        self.stop_event: Optional[Event] = None
        self.max_departures: Optional[int] = None

        # Utilisation snapshots for the policy's batch feedback.
        self._batch_snapshots = self._take_snapshots()
        self._reallocating = False
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps the hot paths hook-free.
        self.invariants = None

    # -- departure counters live on the broker --------------------------
    @property
    def departures(self) -> int:
        return self.broker.departures

    @property
    def completions(self) -> int:
        return self.broker.completions

    @property
    def misses(self) -> int:
        return self.broker.misses

    @property
    def batches_delivered(self) -> int:
        return self.broker.batches_delivered

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def submit(self, job: QueryJob) -> None:
        """A new query arrives: register, arm its expiry, reallocate."""
        if job.qid in self._jobs:
            raise ValueError(f"duplicate query id {job.qid}")
        # Demands are capped at the pool size so an oversized query can
        # still run (in multiple passes) rather than starve forever.
        job.demand_max = min(job.operator.max_pages, self.buffers.total_pages)
        job.demand_min = min(job.operator.min_pages, job.demand_max)
        self._jobs[job.qid] = job
        self.broker.register(
            job.qid, job.class_name, job.priority, job.demand_min, job.demand_max
        )
        self.present_monitor.add(1)
        if self.config.firm_deadlines:
            delay = max(0.0, job.deadline - self.sim.now)
            timer = self.sim.timeout(delay)
            timer.callbacks.append(lambda _evt, j=job: self._expire(j))
            job.expiry_timer = timer
        self.reallocate()

    @property
    def present_jobs(self) -> List[QueryJob]:
        """All present queries in ED order."""
        return sorted(self._jobs.values(), key=lambda job: (job.deadline, job.qid))

    @property
    def admitted_count(self) -> int:
        """Queries currently holding memory."""
        return sum(1 for job in self._jobs.values() if job.grant.pages > 0)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def reallocate(self) -> None:
        """Ask the broker for a fresh allocation decision and enact it.

        Grants are enacted in the decision's ED order -- the order the
        pre-broker code walked the population in -- so process creation
        and wake-ups interleave identically and fixed-seed runs stay
        bit-identical.
        """
        if self._reallocating:  # defensive: no re-entrant allocation
            return
        self._reallocating = True
        try:
            decision = self.broker.reallocate(now=self.sim.now)
            allocation = decision.allocation
            self.buffers.apply_allocation(allocation)
            jobs = self._jobs
            for qid in decision.order:
                job = jobs[qid]
                pages = allocation.get(qid, 0)
                if job.state == WAITING and pages > 0:
                    self._admit(job, pages)
                elif job.state == RUNNING:
                    job.grant.set(pages)
            self.mpl_monitor.record(self.admitted_count)
        finally:
            self._reallocating = False

    def _admit(self, job: QueryJob, pages: int) -> None:
        job.state = RUNNING
        job.admit_time = self.sim.now
        job.grant.set(pages)
        job.grant.started = True  # fluctuations count from here on
        job.process = self.sim.process(self._drive(job), name=f"query-{job.qid}")
        job.process.callbacks.append(lambda _evt, j=job: self._finished(j))

    # ------------------------------------------------------------------
    # operator driving
    # ------------------------------------------------------------------
    def _drive(self, job: QueryJob):
        """Translate the operator's request stream into resource usage."""
        start_io = self.config.cpu_costs.start_io
        cpu = self.cpu
        disks = self.disks
        buffers = self.buffers
        priority = job.priority  # the deadline: fixed for the job's life
        op: Optional[_DiskOp] = None  # lazily created, reused per block
        try:
            for request in job.operator.run():
                request_type = type(request)
                if request_type is DiskAccess:
                    cacheable_read = request.kind == READ and request.cacheable
                    if cacheable_read and buffers.read_hit(
                        request.disk, request.start_page, request.npages
                    ):
                        # Served from the buffer pool: no I/O, but the
                        # attached per-block processing burst still runs.
                        if request.cpu > 0.0:
                            handle = cpu.execute(request.cpu, priority)
                            job.pending = handle
                            yield handle
                            job.pending = None
                        continue
                    if op is None:
                        op = _DiskOp(self.sim, cpu, priority)
                    op.begin(disks[request.disk], request, start_io)
                    job.pending = op
                    yield op
                    job.pending = None
                    if cacheable_read:
                        buffers.install(
                            request.disk, request.start_page, request.npages
                        )
                elif request_type is CPUBurst:
                    handle = cpu.execute(request.instructions, priority)
                    if not handle.triggered:  # zero-work bursts skip the queue
                        job.pending = handle
                        yield handle
                    job.pending = None
                elif request_type is AllocationWait:
                    if job.grant.pages > 0:
                        continue  # raced with a re-grant: keep going
                    wake = self.sim.event()
                    job.grant.on_change(lambda evt=wake: evt.succeed(None))
                    job.pending = wake
                    yield wake
                    job.pending = None
                else:  # pragma: no cover - operator contract violation
                    raise TypeError(f"unknown operator request {request!r}")
        except Interrupt:
            # Firm-deadline abort: fall through, _expire() cleans up.
            return

    # ------------------------------------------------------------------
    # departures
    # ------------------------------------------------------------------
    def _finished(self, job: QueryJob) -> None:
        """The operator ran to completion."""
        if job.state not in (RUNNING,):
            return  # already aborted
        if job.process is not None and not job.process.ok:
            raise job.process.value  # surface model bugs immediately
        job.state = DONE
        if job.expiry_timer is not None:
            job.expiry_timer.cancel()
        missed = self.sim.now > job.deadline + 1e-9
        self._depart(job, missed=missed)

    def _expire(self, job: QueryJob) -> None:
        """Firm deadline reached: the query loses all value [Hari90]."""
        if job.state in (DONE, ABORTED):
            return
        was_running = job.state == RUNNING
        job.state = ABORTED
        pending = job.pending
        if pending is not None:
            if type(pending) is _DiskOp:
                pending.cancel_op()
            elif isinstance(pending, ServiceRequest):
                self.cpu.cancel(pending)
            else:
                pending.cancel()  # allocation-wait wake event
            job.pending = None
        if was_running and job.process is not None:
            job.process.interrupt("deadline")
        self._depart(job, missed=True)

    def _depart(self, job: QueryJob, missed: bool) -> None:
        job.operator.release_resources()
        self.buffers.release(job.qid)
        del self._jobs[job.qid]
        self.broker.release(job.qid)
        self.present_monitor.add(-1)

        now = self.sim.now
        if job.admit_time is None:
            waiting = now - job.arrival
            execution = 0.0
        else:
            waiting = job.admit_time - job.arrival
            execution = now - job.admit_time
        record = DepartureRecord(
            qid=job.qid,
            class_name=job.class_name,
            missed=missed,
            arrival=job.arrival,
            departure=now,
            waiting_time=waiting,
            execution_time=execution,
            time_constraint=job.time_constraint,
            max_demand=job.demand_max,
            min_demand=job.demand_min,
            operand_io_count=job.operator.operand_io_count,
            memory_fluctuations=job.grant.fluctuations,
        )

        self.broker.note_departure(missed)

        for listener in self.departure_listeners:
            listener(record)
        window = self.broker.departure_feedback(record)
        if self.invariants is not None:
            self.invariants.check_population(self)

        if window is not None:
            self._close_batch(window)

        self.reallocate()

        if (
            self.max_departures is not None
            and self.departures >= self.max_departures
            and self.stop_event is not None
            and not self.stop_event.triggered
        ):
            self.stop_event.succeed(None)

    # ------------------------------------------------------------------
    # batch feedback
    # ------------------------------------------------------------------
    def _take_snapshots(self) -> Dict[str, object]:
        return {
            "cpu": self.cpu.busy.snapshot(),
            "disks": [disk.busy.snapshot() for disk in self.disks],
            "mpl": self.mpl_monitor.snapshot(),
            "pool": (self.buffers.cache.hits, self.buffers.cache.misses),
        }

    def _close_batch(self, window) -> None:
        """Build the batch telemetry only this host can measure and
        hand it to the broker (which forwards it to the policy)."""
        snapshots = self._batch_snapshots
        pool_hits, pool_misses = snapshots.get("pool", (0, 0))
        consulted = (self.buffers.cache.hits - pool_hits) + (
            self.buffers.cache.misses - pool_misses
        )
        stats = BatchStats(
            time=self.sim.now,
            served=window.served,
            missed=window.missed,
            realized_mpl=self.mpl_monitor.mean_since(snapshots["mpl"]),
            cpu_utilization=min(1.0, self.cpu.busy.mean_since(snapshots["cpu"])),
            disk_utilizations=tuple(
                min(1.0, disk.busy.mean_since(snapshot))
                for disk, snapshot in zip(self.disks, snapshots["disks"])
            ),
            pool_hit_ratio=(
                (self.buffers.cache.hits - pool_hits) / consulted if consulted else 0.0
            ),
        )
        self._batch_snapshots = self._take_snapshots()
        self.broker.deliver_batch(stats)
        # reallocate() runs unconditionally right after in _depart().
