"""The Query Manager: query lifecycle under firm deadlines.

Responsibilities (Section 4, plus firm-RTDBS semantics [Hari90]):

* keep the population of present queries (waiting for admission or
  executing) ordered by Earliest Deadline;
* invoke the memory policy on every arrival / departure / policy
  request, then enact its allocation vector: admit waiting queries
  granted memory, adjust running queries' grants (operators adapt),
  and suspend those whose grant dropped to zero;
* translate operator requests (CPU bursts, disk accesses, allocation
  waits) into simulated resource usage, charging the Table 4 "start an
  I/O" CPU cost before every disk access and consulting the buffer
  pool's LRU region for cacheable reads;
* abort a query the instant its deadline expires, wherever it is,
  releasing its memory and temp files -- it then counts as a missed,
  "served" query;
* after every ``SampleSize`` departures, hand the policy a batch
  summary (utilisations and realized MPL over the batch window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import QueryDemand
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.queries.base import MemoryGrant, Operator
from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess, READ
from repro.rtdbs.buffer_manager import BufferManager
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.cpu import CPU
from repro.rtdbs.disk import Disk
from repro.sim.events import Event, Interrupt
from repro.sim.monitor import TimeWeighted
from repro.sim.process import Process
from repro.sim.simulator import Simulator

WAITING = "waiting"
RUNNING = "running"
DONE = "done"
ABORTED = "aborted"


@dataclass
class QueryJob:
    """One query's runtime state."""

    qid: int
    class_name: str
    operator: Operator
    grant: MemoryGrant
    arrival: float
    deadline: float
    standalone: float
    state: str = WAITING
    admit_time: Optional[float] = None
    process: Optional[Process] = None
    #: Outstanding resource request: ("cpu"|"disk"|"wait", handle, resource).
    pending: Optional[Tuple[str, Event, object]] = None
    #: Deadline-expiry timer (cancelled on completion).
    expiry_timer: Optional[Event] = None
    demand_min: int = 0
    demand_max: int = 0

    @property
    def priority(self) -> float:
        """ED priority: the absolute deadline (smaller = more urgent)."""
        return self.deadline

    @property
    def time_constraint(self) -> float:
        """Deadline minus arrival."""
        return self.deadline - self.arrival


class QueryManager:
    """Lifecycle engine binding operators to the simulated resources."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        policy: MemoryPolicy,
        cpu: CPU,
        disks: List[Disk],
        buffers: BufferManager,
    ):
        self.sim = sim
        self.config = config
        self.policy = policy
        self.cpu = cpu
        self.disks = disks
        self.buffers = buffers

        self._jobs: Dict[int, QueryJob] = {}
        self.departures = 0
        self.completions = 0
        self.misses = 0
        #: Time-weighted number of admitted queries (the observed MPL).
        self.mpl_monitor = TimeWeighted(sim, initial=0.0)
        #: Time-weighted number of present queries (admitted + waiting).
        self.present_monitor = TimeWeighted(sim, initial=0.0)
        #: Callbacks invoked with each DepartureRecord (Source wires its
        #: statistics collection here).
        self.departure_listeners: List = []
        #: Optional stop condition: set by the system when a departure
        #: quota is reached.
        self.stop_event: Optional[Event] = None
        self.max_departures: Optional[int] = None

        # Batch bookkeeping for policy feedback.
        self._batch_start_departures = 0
        self._batch_misses = 0
        self._batch_snapshots = self._take_snapshots()
        self.batches_delivered = 0
        self._reallocating = False

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def submit(self, job: QueryJob) -> None:
        """A new query arrives: register, arm its expiry, reallocate."""
        if job.qid in self._jobs:
            raise ValueError(f"duplicate query id {job.qid}")
        # Demands are capped at the pool size so an oversized query can
        # still run (in multiple passes) rather than starve forever.
        job.demand_max = min(job.operator.max_pages, self.buffers.total_pages)
        job.demand_min = min(job.operator.min_pages, job.demand_max)
        self._jobs[job.qid] = job
        self.present_monitor.add(1)
        if self.config.firm_deadlines:
            delay = max(0.0, job.deadline - self.sim.now)
            timer = self.sim.timeout(delay)
            timer.callbacks.append(lambda _evt, j=job: self._expire(j))
            job.expiry_timer = timer
        self.reallocate()

    @property
    def present_jobs(self) -> List[QueryJob]:
        """All present queries in ED order."""
        return sorted(self._jobs.values(), key=lambda job: (job.deadline, job.qid))

    @property
    def admitted_count(self) -> int:
        """Queries currently holding memory."""
        return sum(1 for job in self._jobs.values() if job.grant.pages > 0)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def reallocate(self) -> None:
        """Ask the policy for a fresh allocation vector and enact it."""
        if self._reallocating:  # defensive: no re-entrant allocation
            return
        self._reallocating = True
        try:
            jobs = self.present_jobs
            demands = [
                QueryDemand(
                    job.qid,
                    job.priority,
                    job.demand_min,
                    job.demand_max,
                    class_name=job.class_name,
                )
                for job in jobs
            ]
            allocation = self.policy.allocate(
                demands, self.buffers.total_pages, now=self.sim.now
            )
            self.buffers.apply_allocation(allocation)
            for job in jobs:
                pages = allocation.get(job.qid, 0)
                if job.state == WAITING and pages > 0:
                    self._admit(job, pages)
                elif job.state == RUNNING:
                    job.grant.set(pages)
            self.mpl_monitor.record(self.admitted_count)
        finally:
            self._reallocating = False

    def _admit(self, job: QueryJob, pages: int) -> None:
        job.state = RUNNING
        job.admit_time = self.sim.now
        job.grant.set(pages)
        job.grant.started = True  # fluctuations count from here on
        job.process = self.sim.process(self._drive(job), name=f"query-{job.qid}")
        job.process.callbacks.append(lambda _evt, j=job: self._finished(j))

    # ------------------------------------------------------------------
    # operator driving
    # ------------------------------------------------------------------
    def _drive(self, job: QueryJob):
        """Translate the operator's request stream into resource usage."""
        start_io = self.config.cpu_costs.start_io
        try:
            for request in job.operator.run():
                if isinstance(request, CPUBurst):
                    handle = self.cpu.execute(request.instructions, job.priority)
                    job.pending = ("cpu", handle, self.cpu)
                    yield handle
                    job.pending = None
                elif isinstance(request, DiskAccess):
                    if (
                        request.kind == READ
                        and request.cacheable
                        and self.buffers.read_hit(
                            request.disk, request.start_page, request.npages
                        )
                    ):
                        continue  # served from the buffer pool
                    handle = self.cpu.execute(start_io, job.priority)
                    job.pending = ("cpu", handle, self.cpu)
                    yield handle
                    disk = self.disks[request.disk]
                    handle = disk.submit(
                        request.kind, request.start_page, request.npages, job.priority
                    )
                    job.pending = ("disk", handle, disk)
                    yield handle
                    job.pending = None
                    if request.kind == READ and request.cacheable:
                        self.buffers.install(
                            request.disk, request.start_page, request.npages
                        )
                elif isinstance(request, AllocationWait):
                    if job.grant.pages > 0:
                        continue  # raced with a re-grant: keep going
                    wake = self.sim.event()
                    job.grant.on_change(lambda evt=wake: evt.succeed(None))
                    job.pending = ("wait", wake, None)
                    yield wake
                    job.pending = None
                else:  # pragma: no cover - operator contract violation
                    raise TypeError(f"unknown operator request {request!r}")
        except Interrupt:
            # Firm-deadline abort: fall through, _expire() cleans up.
            return

    # ------------------------------------------------------------------
    # departures
    # ------------------------------------------------------------------
    def _finished(self, job: QueryJob) -> None:
        """The operator ran to completion."""
        if job.state not in (RUNNING,):
            return  # already aborted
        if job.process is not None and not job.process.ok:
            raise job.process.value  # surface model bugs immediately
        job.state = DONE
        if job.expiry_timer is not None:
            job.expiry_timer.cancel()
        missed = self.sim.now > job.deadline + 1e-9
        self._depart(job, missed=missed)

    def _expire(self, job: QueryJob) -> None:
        """Firm deadline reached: the query loses all value [Hari90]."""
        if job.state in (DONE, ABORTED):
            return
        was_running = job.state == RUNNING
        job.state = ABORTED
        if job.pending is not None:
            kind, handle, resource = job.pending
            if kind == "cpu":
                self.cpu.cancel(handle)
            elif kind == "disk":
                resource.cancel(handle)
            else:
                handle.cancel()
            job.pending = None
        if was_running and job.process is not None:
            job.process.interrupt("deadline")
        self._depart(job, missed=True)

    def _depart(self, job: QueryJob, missed: bool) -> None:
        job.operator.release_resources()
        self.buffers.release(job.qid)
        del self._jobs[job.qid]
        self.present_monitor.add(-1)

        now = self.sim.now
        if job.admit_time is None:
            waiting = now - job.arrival
            execution = 0.0
        else:
            waiting = job.admit_time - job.arrival
            execution = now - job.admit_time
        record = DepartureRecord(
            qid=job.qid,
            class_name=job.class_name,
            missed=missed,
            arrival=job.arrival,
            departure=now,
            waiting_time=waiting,
            execution_time=execution,
            time_constraint=job.time_constraint,
            max_demand=job.demand_max,
            min_demand=job.demand_min,
            operand_io_count=job.operator.operand_io_count,
            memory_fluctuations=job.grant.fluctuations,
        )

        self.departures += 1
        if missed:
            self.misses += 1
            self._batch_misses += 1
        else:
            self.completions += 1

        for listener in self.departure_listeners:
            listener(record)
        self.policy.on_departure(record)

        if self.departures - self._batch_start_departures >= self.config.pmm.sample_size:
            self._close_batch()

        self.reallocate()

        if (
            self.max_departures is not None
            and self.departures >= self.max_departures
            and self.stop_event is not None
            and not self.stop_event.triggered
        ):
            self.stop_event.succeed(None)

    # ------------------------------------------------------------------
    # batch feedback
    # ------------------------------------------------------------------
    def _take_snapshots(self) -> Dict[str, object]:
        return {
            "cpu": self.cpu.busy.snapshot(),
            "disks": [disk.busy.snapshot() for disk in self.disks],
            "mpl": self.mpl_monitor.snapshot(),
        }

    def _close_batch(self) -> None:
        served = self.departures - self._batch_start_departures
        snapshots = self._batch_snapshots
        stats = BatchStats(
            time=self.sim.now,
            served=served,
            missed=self._batch_misses,
            realized_mpl=self.mpl_monitor.mean_since(snapshots["mpl"]),
            cpu_utilization=min(1.0, self.cpu.busy.mean_since(snapshots["cpu"])),
            disk_utilizations=tuple(
                min(1.0, disk.busy.mean_since(snapshot))
                for disk, snapshot in zip(self.disks, snapshots["disks"])
            ),
        )
        self._batch_start_departures = self.departures
        self._batch_misses = 0
        self._batch_snapshots = self._take_snapshots()
        self.batches_delivered += 1
        self.policy.on_batch(stats)
        # reallocate() runs unconditionally right after in _depart().
