"""The Source: workload generation, deadlines, and statistics.

Each query class submits queries following a Poisson process with its
own arrival rate.  A new query draws its operand relation(s) from the
class's relation group(s) (for joins, the smaller of the two chosen
relations becomes the inner relation R) and receives a deadline

    Deadline = StandAlone * SlackRatio + Arrival

where *StandAlone* is the closed-form stand-alone execution time at the
query's maximum allocation and *SlackRatio* ~ U(SRInterval)
(Section 4.1).  The Source also collects every statistic the paper
reports: miss ratios (global, per class, per time window), admission
waiting / execution / response time averages, and memory-fluctuation
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.policies.base import DepartureRecord
from repro.queries.base import MemoryGrant, OperatorContext
from repro.queries.cost_model import StandAloneCostModel
from repro.queries.hash_join import HashJoinOperator
from repro.queries.sort import ExternalSortOperator
from repro.rtdbs.config import EXTERNAL_SORT, HASH_JOIN, QueryClass, SimulationConfig
from repro.rtdbs.database import Database
from repro.rtdbs.query_manager import QueryJob, QueryManager
from repro.sim.monitor import Tally
from repro.sim.rng import Streams
from repro.sim.simulator import Simulator


@dataclass
class ClassStats:
    """Per-class accumulators."""

    served: int = 0
    missed: int = 0
    waiting: Tally = field(default_factory=Tally)
    execution: Tally = field(default_factory=Tally)
    response: Tally = field(default_factory=Tally)
    fluctuations: Tally = field(default_factory=Tally)

    @property
    def miss_ratio(self) -> float:
        """Fraction of this class's served queries that missed."""
        return self.missed / self.served if self.served else 0.0

    def observe(self, record: DepartureRecord) -> None:
        """Fold one departure into the accumulators.

        Waiting/execution/response times are tallied over *completed*
        queries, matching the paper's Table 7 (missed queries are
        aborted mid-flight and have no meaningful completion timings).
        """
        self.served += 1
        if record.missed:
            self.missed += 1
            return
        self.waiting.record(record.waiting_time)
        self.execution.record(record.execution_time)
        self.response.record(record.waiting_time + record.execution_time)
        self.fluctuations.record(float(record.memory_fluctuations))

    def reset(self) -> None:
        """Zero every accumulator (end of warm-up)."""
        self.served = 0
        self.missed = 0
        self.waiting.reset()
        self.execution.reset()
        self.response.reset()
        self.fluctuations.reset()


class Source:
    """Per-class Poisson arrival processes plus statistics collection."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        database: Database,
        query_manager: QueryManager,
        operator_context: OperatorContext,
        cost_model: StandAloneCostModel,
        streams: Streams,
    ):
        self.sim = sim
        self.config = config
        self.database = database
        self.query_manager = query_manager
        self.operator_context = operator_context
        self.cost_model = cost_model
        self.streams = streams

        self._next_qid = 0
        self._temp_disk_cursor = 0
        self.stats: Dict[str, ClassStats] = {
            cls.name: ClassStats() for cls in config.workload.classes
        }
        self.overall = ClassStats()
        #: Raw departure log: (time, class, missed, waiting, execution,
        #: fluctuations) -- windowed series (Figures 12-14) are computed
        #: from this after the run.
        self.departure_log: List[tuple] = []
        #: Queries generated so far (arrivals, not departures).
        self.arrivals = 0

        query_manager.departure_listeners.append(self._on_departure)
        #: Mutable per-class arrival-rate overrides, keyed by class
        #: name; the workload-change experiment (Section 5.3) flips
        #: these mid-run.
        self.rate_overrides: Dict[str, float] = {}
        self._active: Dict[str, bool] = {cls.name: True for cls in config.workload.classes}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one arrival process per workload class."""
        for query_class in self.config.workload.classes:
            self.sim.process(
                self._arrival_process(query_class), name=f"source-{query_class.name}"
            )

    def set_rate(self, class_name: str, rate: float) -> None:
        """Override a class's arrival rate mid-run (0 disables it)."""
        if class_name not in self.stats:
            raise KeyError(f"unknown class {class_name!r}")
        self.rate_overrides[class_name] = rate

    def reset_statistics(self) -> None:
        """Drop accumulated statistics (end of warm-up)."""
        for stats in self.stats.values():
            stats.reset()
        self.overall.reset()
        self.departure_log.clear()

    # ------------------------------------------------------------------
    def _arrival_process(self, query_class: QueryClass):
        if query_class.modulation is not None:
            yield from self._modulated_arrivals(query_class)
            return
        arrivals = self.streams.stream(f"arrivals.{query_class.name}")
        poll = max(1.0, 10.0 / max(query_class.arrival_rate, 1e-9))
        while True:
            rate = self.rate_overrides.get(query_class.name, query_class.arrival_rate)
            if rate <= 0.0:
                # Disabled: poll for re-activation.
                yield self.sim.timeout(poll)
                continue
            yield self.sim.timeout(arrivals.exponential(1.0 / rate))
            self._submit_query(query_class)

    def _modulated_arrivals(self, query_class: QueryClass):
        """Bursty / phase-shifting arrivals by thinning a peak-rate process.

        Candidate arrivals are drawn at ``base_rate * peak_factor`` and
        each is accepted with probability ``factor(now) / peak_factor``
        -- exact for the piecewise-constant rates an
        :class:`~repro.rtdbs.config.ArrivalModulation` describes.  The
        state path (phase boundaries, or MMPP dwell draws) comes from
        its own ``modulation.<class>`` stream, so it is independent of
        the candidate process and of every policy decision: for a given
        config the arrival sequence is identical under every policy.
        """
        modulation = query_class.modulation
        arrivals = self.streams.stream(f"arrivals.{query_class.name}")
        state_stream = self.streams.stream(f"modulation.{query_class.name}")
        factors = modulation.factors
        dwells = modulation.dwell_seconds
        peak = modulation.peak_factor
        stochastic = modulation.stochastic

        def dwell(state: int) -> float:
            mean = dwells[state % len(dwells)]
            return state_stream.exponential(mean) if stochastic else mean

        state = 0
        next_toggle = dwell(0)
        poll = max(1.0, 10.0 / max(query_class.arrival_rate * peak, 1e-9))
        while True:
            base = self.rate_overrides.get(query_class.name, query_class.arrival_rate)
            peak_rate = base * peak
            if peak_rate <= 0.0:
                yield self.sim.timeout(poll)
                continue
            yield self.sim.timeout(arrivals.exponential(1.0 / peak_rate))
            now = self.sim.now
            while now >= next_toggle:
                state += 1
                next_toggle += dwell(state)
            factor = factors[state % len(factors)]
            if factor >= peak or state_stream.uniform(0.0, 1.0) * peak < factor:
                self._submit_query(query_class)

    def _submit_query(self, query_class: QueryClass) -> None:
        qid = self._next_qid
        self._next_qid += 1
        self.arrivals += 1
        grant = MemoryGrant(0)
        picker = self.streams.stream(f"relations.{query_class.name}")
        slack_stream = self.streams.stream(f"slack.{query_class.name}")

        if query_class.query_type == HASH_JOIN:
            first = self.database.pick_relation(query_class.rel_groups[0], picker)
            second = self.database.pick_relation(query_class.rel_groups[1], picker)
            inner, outer = (
                (first, second) if first.pages <= second.pages else (second, first)
            )
            operator = HashJoinOperator(
                self.operator_context,
                grant,
                inner,
                outer,
                fudge_factor=self.config.workload.fudge_factor,
                selectivity=self.config.workload.join_selectivity,
                temp_disk=self._pick_temp_disk(inner.disk),
            )
            standalone = self.cost_model.hash_join_standalone(inner.pages, outer.pages)
        elif query_class.query_type == EXTERNAL_SORT:
            relation = self.database.pick_relation(query_class.rel_groups[0], picker)
            operator = ExternalSortOperator(
                self.operator_context,
                grant,
                relation,
                temp_disk=self._pick_temp_disk(relation.disk),
            )
            standalone = self.cost_model.sort_standalone(relation.pages)
        else:  # pragma: no cover - validated at config time
            raise ValueError(f"unknown query type {query_class.query_type!r}")

        slack = slack_stream.uniform(*query_class.slack_range)
        now = self.sim.now
        job = QueryJob(
            qid=qid,
            class_name=query_class.name,
            operator=operator,
            grant=grant,
            arrival=now,
            deadline=now + standalone * slack,
            standalone=standalone,
        )
        self.query_manager.submit(job)

    def _pick_temp_disk(self, local_disk: int) -> int:
        if self.config.temp_placement == "local":
            return local_disk
        cursor = self._temp_disk_cursor
        self._temp_disk_cursor = (cursor + 1) % self.config.resources.num_disks
        return cursor

    # ------------------------------------------------------------------
    def _on_departure(self, record: DepartureRecord) -> None:
        self.overall.observe(record)
        self.stats[record.class_name].observe(record)
        self.departure_log.append(
            (
                record.departure,
                record.class_name,
                record.missed,
                record.waiting_time,
                record.execution_time,
                record.memory_fluctuations,
            )
        )
