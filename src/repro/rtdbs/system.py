"""The complete simulated RTDBS (the paper's Figure 2), wired together.

:class:`RTDBSystem` builds the five model components around a memory
policy (PMM or a baseline) and runs the simulation;
:class:`SimulationResult` packages every statistic the paper's
evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.policies.base import MemoryPolicy
from repro.policies.registry import make_policy
from repro.queries.base import OperatorContext
from repro.queries.cost_model import StandAloneCostModel
from repro.rtdbs.buffer_manager import BufferManager
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.cpu import CPU
from repro.rtdbs.database import Database
from repro.rtdbs.disk import Disk
from repro.rtdbs.query_manager import QueryManager
from repro.rtdbs.source import Source
from repro.sim.rng import Streams
from repro.sim.simulator import Simulator


@dataclass
class ClassResult:
    """Per-class outcome summary."""

    served: int
    missed: int
    miss_ratio: float
    avg_waiting: float
    avg_execution: float
    avg_response: float
    avg_fluctuations: float


@dataclass
class SimulationResult:
    """Everything the paper's figures and tables are drawn from.

    The experiment engine ships results across process-pool workers and
    stores them in a persistent on-disk cache, so every field must stay
    plain picklable data (numbers, strings, tuples/lists/dicts of
    those) -- no simulator handles, no callables.
    """

    policy: str
    simulated_seconds: float
    arrivals: int
    served: int
    completed: int
    missed: int
    miss_ratio: float
    #: Averages over completed queries (the paper's Table 7).
    avg_waiting: float
    avg_execution: float
    avg_response: float
    #: Average memory-allocation changes per completed query (Fig. 7).
    avg_fluctuations: float
    cpu_utilization: float
    disk_utilizations: Tuple[float, ...]
    #: Time-averaged observed MPL (Figures 5 and 10).
    observed_mpl: float
    per_class: Dict[str, ClassResult] = field(default_factory=dict)
    #: PMM introspection (empty for static policies): (time, MPL).
    pmm_mpl_trace: List[Tuple[float, float]] = field(default_factory=list)
    pmm_mode_trace: List[Tuple[float, str]] = field(default_factory=list)
    pmm_restarts: int = 0
    #: Raw departure log: (time, class, missed, waiting, execution,
    #: fluctuations).
    departure_log: List[tuple] = field(default_factory=list)
    buffer_hits: int = 0
    buffer_misses: int = 0
    disk_cache_hits: int = 0

    @property
    def avg_disk_utilization(self) -> float:
        """Mean utilisation across the disk farm."""
        if not self.disk_utilizations:
            return 0.0
        return sum(self.disk_utilizations) / len(self.disk_utilizations)

    def equals_exactly(self, other: "SimulationResult") -> bool:
        """Bit-exact equality, tolerating NaN statistics.

        Dataclass ``==`` is the natural comparison, but a run with zero
        completions reports NaN averages and ``NaN != NaN`` would make
        two genuinely identical results compare unequal.  Comparing the
        full ``repr`` sidesteps that (``repr(nan) == repr(nan)``) while
        staying exact for every finite float -- ``repr`` round-trips
        Python floats losslessly.  The engine's serial-vs-parallel and
        pickle round-trip guarantees are asserted with this.
        """
        if not isinstance(other, SimulationResult):
            return False
        return repr(self) == repr(other)

    def windowed_miss_ratio(
        self, window_seconds: float, class_name: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Miss-ratio time series over fixed windows (Figures 12-14)."""
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        buckets: Dict[int, List[int]] = {}
        for entry in self.departure_log:
            time, cls, missed = entry[0], entry[1], entry[2]
            if class_name is not None and cls != class_name:
                continue
            bucket = int(time // window_seconds)
            served_missed = buckets.setdefault(bucket, [0, 0])
            served_missed[0] += 1
            served_missed[1] += 1 if missed else 0
        return [
            ((bucket + 0.5) * window_seconds, counts[1] / counts[0])
            for bucket, counts in sorted(buckets.items())
        ]


class RTDBSystem:
    """Builds and runs one simulated RTDBS experiment.

    ``invariants`` enables the runtime conservation-law checks of
    :mod:`repro.rtdbs.invariants`: pass ``True`` (or a prepared
    :class:`~repro.rtdbs.invariants.InvariantChecker`) to have every
    allocation, ledger update, departure, and the final result asserted
    against the system's accounting laws.  Off by default -- the checks
    exist for tests and the scenario fuzz harness.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: Union[str, MemoryPolicy],
        invariants=None,
    ):
        config.validate()
        self.config = config
        self.policy: MemoryPolicy = (
            make_policy(policy, config.pmm) if isinstance(policy, str) else policy
        )
        self.sim = Simulator()
        self.streams = Streams(config.seed)
        resources = config.resources
        self.cpu = CPU(self.sim, resources)
        self.disks = [
            Disk(self.sim, index, resources, self.streams.stream(f"rotation.{index}"))
            for index in range(resources.num_disks)
        ]
        self.database = Database(config.database, resources, self.streams)
        self.buffers = BufferManager(self.sim, resources.memory_pages)
        self.operator_context = OperatorContext(
            tuples_per_page=config.tuples_per_page,
            block_size=resources.block_size,
            costs=config.cpu_costs,
            allocate_temp=lambda disk, pages: self.database.temp_space(disk).allocate(pages),
            release_temp=lambda temp: self.database.temp_space(temp.disk).release(temp),
        )
        self.cost_model = StandAloneCostModel(
            resources=resources,
            costs=config.cpu_costs,
            tuples_per_page=config.tuples_per_page,
            fudge_factor=config.workload.fudge_factor,
            join_selectivity=config.workload.join_selectivity,
        )
        self.query_manager = QueryManager(
            self.sim, config, self.policy, self.cpu, self.disks, self.buffers
        )
        self.source = Source(
            self.sim,
            config,
            self.database,
            self.query_manager,
            self.operator_context,
            self.cost_model,
            self.streams,
        )
        self._warmup_snapshots: Optional[Dict[str, object]] = None
        #: Runtime conservation-law checker (None = checks disabled).
        self.invariants = None
        if invariants:
            from repro.rtdbs.invariants import InvariantChecker

            checker = (
                invariants
                if isinstance(invariants, InvariantChecker)
                else InvariantChecker()
            )
            checker.attach(self)

    # ------------------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at the given simulation time (experiment
        drivers use this for mid-run workload changes)."""
        if time < self.sim.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.sim.now}")
        timer = self.sim.timeout(time - self.sim.now)
        timer.callbacks.append(lambda _evt: action())

    def run(
        self,
        duration: Optional[float] = None,
        max_completions: Optional[int] = None,
        warmup: float = 0.0,
    ) -> SimulationResult:
        """Run the experiment and summarise it.

        ``duration`` defaults to the config's horizon;
        ``max_completions`` stops early after that many departures;
        ``warmup`` discards statistics gathered before that time (the
        policy's adaptive state is *not* reset -- warm-up only affects
        reporting).
        """
        horizon = duration if duration is not None else self.config.duration
        cap = (
            max_completions
            if max_completions is not None
            else self.config.max_completions
        )
        if cap is not None:
            self.query_manager.max_departures = cap
            self.query_manager.stop_event = self.sim.event()
        if warmup > 0.0:
            if warmup >= horizon:
                raise ValueError("warm-up must end before the horizon")
            self.schedule(warmup, self._end_warmup)
        self.source.start()

        stop_event = self.query_manager.stop_event
        self.sim.run(until=horizon, stop=stop_event)
        result = self._build_result(warmup)
        if self.invariants is not None:
            self.invariants.check_final(self, result)
        return result

    # ------------------------------------------------------------------
    def _end_warmup(self) -> None:
        self.source.reset_statistics()
        self._warmup_snapshots = {
            "cpu": self.cpu.busy.snapshot(),
            "disks": [disk.busy.snapshot() for disk in self.disks],
            "mpl": self.query_manager.mpl_monitor.snapshot(),
        }

    def _utilizations(self) -> Tuple[float, Tuple[float, ...], float]:
        snapshots = self._warmup_snapshots
        if snapshots is None:
            cpu = self.cpu.busy.mean()
            disks = tuple(disk.busy.mean() for disk in self.disks)
            mpl = self.query_manager.mpl_monitor.mean()
        else:
            cpu = self.cpu.busy.mean_since(snapshots["cpu"])
            disks = tuple(
                disk.busy.mean_since(snapshot)
                for disk, snapshot in zip(self.disks, snapshots["disks"])
            )
            mpl = self.query_manager.mpl_monitor.mean_since(snapshots["mpl"])
        return cpu, disks, mpl

    def _build_result(self, warmup: float) -> SimulationResult:
        source = self.source
        overall = source.overall
        cpu_util, disk_utils, observed_mpl = self._utilizations()
        per_class = {
            name: ClassResult(
                served=stats.served,
                missed=stats.missed,
                miss_ratio=stats.miss_ratio,
                avg_waiting=stats.waiting.mean(),
                avg_execution=stats.execution.mean(),
                avg_response=stats.response.mean(),
                avg_fluctuations=stats.fluctuations.mean(),
            )
            for name, stats in source.stats.items()
        }
        pmm_trace: List[Tuple[float, float]] = []
        pmm_modes: List[Tuple[float, str]] = []
        pmm_restarts = 0
        if hasattr(self.policy, "mpl_trace"):
            pmm_trace = list(self.policy.mpl_trace)  # type: ignore[attr-defined]
            pmm_modes = list(self.policy.mode_trace)  # type: ignore[attr-defined]
            pmm_restarts = getattr(self.policy, "restarts", 0)
        return SimulationResult(
            policy=self.policy.name,
            simulated_seconds=self.sim.now - warmup,
            arrivals=source.arrivals,
            served=overall.served,
            completed=overall.served - overall.missed,
            missed=overall.missed,
            miss_ratio=overall.miss_ratio,
            avg_waiting=overall.waiting.mean(),
            avg_execution=overall.execution.mean(),
            avg_response=overall.response.mean(),
            avg_fluctuations=overall.fluctuations.mean(),
            cpu_utilization=cpu_util,
            disk_utilizations=disk_utils,
            observed_mpl=observed_mpl,
            per_class=per_class,
            pmm_mpl_trace=pmm_trace,
            pmm_mode_trace=pmm_modes,
            pmm_restarts=pmm_restarts,
            departure_log=list(source.departure_log),
            buffer_hits=self.buffers.cache.hits,
            buffer_misses=self.buffers.cache.misses,
            disk_cache_hits=sum(disk.cache.hits for disk in self.disks),
        )
