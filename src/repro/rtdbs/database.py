"""Database layout: relations on middle cylinders, temp space outside.

The paper's placement rules (Section 4.1):

* Each group ``i`` has ``RelPerDisk_i`` clustered relations on *every*
  disk, with sizes at equal intervals from ``SizeRange_i``.
* To minimise head movement, relations on a disk sit on its **middle
  cylinders** (we centre the concatenation of all relations around the
  middle cylinder, in an order shuffled per disk).
* Temporary files live on the **inner or outer cylinders** -- we keep a
  simple extent allocator over the two regions left free on each side
  and hand out whichever side currently has more room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rtdbs.config import DatabaseParams, ResourceParams
from repro.sim.rng import Streams


@dataclass(frozen=True)
class Relation:
    """A base relation, clustered on a single disk."""

    #: Unique id, stable across runs for a given configuration.
    rel_id: int
    #: Index of the group (Table 2 row) this relation belongs to.
    group: int
    #: Disk the relation is clustered on.
    disk: int
    #: Size in pages.
    pages: int
    #: First page number on the disk (pages are numbered from the
    #: outermost cylinder inward: page // CylinderSize = cylinder).
    start_page: int

    @property
    def end_page(self) -> int:
        """One past the relation's last page."""
        return self.start_page + self.pages


@dataclass
class TempFile:
    """A temporary-file extent handed out by :class:`TempSpace`."""

    disk: int
    start_page: int
    pages: int
    #: True when the extent was served virtually (overflow); it holds
    #: valid addresses but reserves no physical space.
    virtual: bool = False

    @property
    def end_page(self) -> int:
        """One past the extent's last page."""
        return self.start_page + self.pages


class TempSpace:
    """First-fit extent allocator over a disk's free (non-relation) space.

    Two free regions exist per disk -- the outer cylinders (below the
    relation area) and the inner cylinders (above it).  Extents are
    allocated from whichever region currently has the most free space,
    mirroring the paper's "inner or the outer cylinders" rule, and are
    coalesced on release.
    """

    def __init__(self, disk: int, regions: List[Tuple[int, int]]):
        self.disk = disk
        #: Sorted list of free (start, end) half-open page extents.
        self._free: List[Tuple[int, int]] = sorted(
            (start, end) for start, end in regions if end > start
        )
        self._regions = list(self._free)
        #: Allocations served virtually because physical space ran out.
        self.overflow_allocations = 0

    @property
    def free_pages(self) -> int:
        """Total free pages across all extents."""
        return sum(end - start for start, end in self._free)

    def allocate(self, pages: int) -> TempFile:
        """Carve a ``pages``-page extent out of the largest free extent.

        Operators reserve temp space for their *worst case* spool
        volume, which can transiently exceed the physical free space
        under extreme multiprogramming.  Rather than fail (the paper's
        model never runs out of temp space), an oversubscribed request
        is served *virtually*: it receives addresses within the largest
        free region without reserving them, so only timing locality --
        not correctness -- is affected.  ``overflow_allocations``
        counts these events for visibility.
        """
        if pages <= 0:
            raise ValueError(f"temp allocation must be positive, got {pages}")
        best_index: Optional[int] = None
        best_size = -1
        for index, (start, end) in enumerate(self._free):
            size = end - start
            if size >= pages and size > best_size:
                best_index = index
                best_size = size
        if best_index is None:
            self.overflow_allocations += 1
            region_start, region_end = max(
                self._regions, key=lambda extent: extent[1] - extent[0]
            )
            span = max(1, region_end - region_start)
            virtual = TempFile(self.disk, region_start, min(pages, span), virtual=True)
            return virtual
        start, end = self._free[best_index]
        allocated = TempFile(self.disk, start, pages)
        remaining_start = start + pages
        if remaining_start < end:
            self._free[best_index] = (remaining_start, end)
        else:
            del self._free[best_index]
        return allocated

    def release(self, temp: TempFile) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        if temp.virtual:
            return  # virtual extents never reserved physical space
        extents = sorted(self._free + [(temp.start_page, temp.end_page)])
        coalesced: List[Tuple[int, int]] = []
        for start, end in extents:
            if coalesced and coalesced[-1][1] >= start:
                previous_start, previous_end = coalesced[-1]
                coalesced[-1] = (previous_start, max(previous_end, end))
            else:
                coalesced.append((start, end))
        self._free = coalesced


class Database:
    """Relations laid out over the disk farm, plus per-disk temp space."""

    def __init__(self, params: DatabaseParams, resources: ResourceParams, streams: Streams):
        params.validate()
        resources.validate()
        self.params = params
        self.resources = resources
        self.relations: List[Relation] = []
        #: Relations of each group, across all disks.
        self.by_group: Dict[int, List[Relation]] = {
            g: [] for g in range(params.num_groups)
        }
        self.temp_spaces: List[TempSpace] = []
        self._layout(streams)

    # ------------------------------------------------------------------
    def _layout(self, streams: Streams) -> None:
        pages_per_disk = self.resources.pages_per_disk
        rel_id = 0
        for disk in range(self.resources.num_disks):
            sizes: List[Tuple[int, int]] = []  # (group, pages)
            for group_index, group in enumerate(self.params.groups):
                for size in group.relation_sizes():
                    sizes.append((group_index, size))
            total = sum(pages for _g, pages in sizes)
            if total > pages_per_disk:
                raise ValueError(
                    f"disk {disk}: relations need {total} pages but the disk "
                    f"holds only {pages_per_disk}"
                )
            # "Randomly placed on its middle cylinders": shuffle the order
            # then centre the concatenation around the middle of the disk.
            order = list(range(len(sizes)))
            rng = streams.stream(f"layout.disk{disk}").generator
            rng.shuffle(order)
            cursor = (pages_per_disk - total) // 2
            region_start = cursor
            for index in order:
                group_index, pages = sizes[index]
                relation = Relation(rel_id, group_index, disk, pages, cursor)
                self.relations.append(relation)
                self.by_group[group_index].append(relation)
                rel_id += 1
                cursor += pages
            self.temp_spaces.append(
                TempSpace(disk, [(0, region_start), (cursor, pages_per_disk)])
            )

    # ------------------------------------------------------------------
    def pick_relation(self, group: int, stream) -> Relation:
        """Uniformly choose one of the group's relations (any disk)."""
        candidates = self.by_group.get(group)
        if not candidates:
            raise ValueError(f"no relations in group {group}")
        return stream.choice(candidates)

    def temp_space(self, disk: int) -> TempSpace:
        """The temp-extent allocator of a disk."""
        return self.temp_spaces[disk]

    def cylinder_of(self, page: int) -> int:
        """Cylinder number a page lives on."""
        return page // self.resources.cylinder_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database({len(self.relations)} relations over "
            f"{self.resources.num_disks} disks)"
        )
