"""The simulated firm real-time DBMS (the paper's Figure 2 model).

Five components, as in the paper: a :mod:`~repro.rtdbs.source` that
generates the workload and collects statistics, a
:mod:`~repro.rtdbs.query_manager` that models query execution, a
:mod:`~repro.rtdbs.buffer_manager` that implements LRU replacement plus
the pluggable memory policy (PMM or a static baseline), and
:mod:`~repro.rtdbs.cpu` / :mod:`~repro.rtdbs.disk` managers for the
physical resources.  :mod:`~repro.rtdbs.system` wires them together.
"""

from repro.rtdbs.config import (
    CPUCosts,
    DatabaseParams,
    PMMParams,
    QueryClass,
    RelationGroup,
    ResourceParams,
    SimulationConfig,
    WorkloadParams,
)
from repro.rtdbs.system import RTDBSystem, SimulationResult

__all__ = [
    "CPUCosts",
    "DatabaseParams",
    "PMMParams",
    "QueryClass",
    "RelationGroup",
    "ResourceParams",
    "RTDBSystem",
    "SimulationConfig",
    "SimulationResult",
    "WorkloadParams",
]
