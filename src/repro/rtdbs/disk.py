"""The Disk Manager: ED-scheduled disks with an elevator tie-break.

Each disk (Section 4.2):

* manages its own queue by the Earliest Deadline policy; requests that
  ED assigns the same priority are serviced in elevator order;
* has a small cache (256 KBytes by default) used for prefetching --
  sequential scans fetch ``BlockSize`` pages per I/O that misses the
  cache, so re-reads of recently transferred pages cost nothing;
* charges ``Seek + RotateDelay + Transfer`` per access, with
  ``Seek(n) = SeekFactor * sqrt(n)`` over ``n`` cylinders [Bitt88] and a
  transfer time of one rotation per full track (= cylinder).

Requests are non-preemptive: once an access starts it completes even if
a more urgent request (or an abort) arrives meanwhile.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import List, Optional, Tuple

from repro.rtdbs.config import ResourceParams
from repro.sim.events import Event
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.rng import Stream
from repro.sim.simulator import Simulator

READ = "read"
WRITE = "write"


class DiskRequest(Event):
    """Completion event for one disk access."""

    __slots__ = ("kind", "start_page", "npages", "priority", "_seq", "cylinder")

    def __init__(
        self,
        sim: Simulator,
        kind: str,
        start_page: int,
        npages: int,
        priority: float,
        seq: int,
        cylinder: int,
    ):
        super().__init__(sim)
        self.kind = kind
        self.start_page = start_page
        self.npages = npages
        self.priority = priority
        self._seq = seq
        self.cylinder = cylinder


class PrefetchCache:
    """LRU cache of recently transferred pages (one per disk).

    Backed by a plain insertion-ordered dict: recency refresh is a
    delete-and-reinsert, eviction pops from the iteration front.  Plain
    dicts beat ``OrderedDict`` on every operation this hot path uses.
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_pages
        self._pages: dict = {}
        self.hits = 0
        self.misses = 0

    def contains_all(self, start_page: int, npages: int) -> bool:
        """True when every page of the range is cached (a free read)."""
        pages = self._pages
        for page in range(start_page, start_page + npages):
            if page not in pages:
                return False
        return True

    def touch(self, start_page: int, npages: int) -> None:
        """Record a hit: refresh the pages' recency."""
        self.hits += 1
        pages = self._pages
        pop = pages.pop
        for page in range(start_page, start_page + npages):
            pop(page)
            pages[page] = None

    def insert(self, start_page: int, npages: int) -> None:
        """Record a transfer: install the pages, evicting LRU ones.

        Evictions are deferred to the end of the block: the surviving
        set (the ``capacity`` most recently touched pages) is identical
        to per-page eviction, without a capacity test on every page.
        """
        self.misses += 1
        pages = self._pages
        pop = pages.pop
        for page in range(start_page, start_page + npages):
            pop(page, None)
            pages[page] = None
        excess = len(pages) - self.capacity
        if excess > 0:
            victims = list(islice(pages, excess))
            for page in victims:
                del pages[page]

    def __len__(self) -> int:
        return len(self._pages)


class Disk:
    """A single disk with ED queueing and physical timing."""

    def __init__(
        self,
        sim: Simulator,
        disk_id: int,
        resources: ResourceParams,
        rotation_stream: Optional[Stream] = None,
    ):
        self.sim = sim
        self.disk_id = disk_id
        self.resources = resources
        self._rotation_stream = rotation_stream
        self._queue: List[Tuple[float, int, DiskRequest]] = []
        self._sequence = 0
        self._serving: Optional[DiskRequest] = None
        #: Current head position, cylinders; starts at the middle.
        self.head = resources.num_cylinders // 2
        #: Elevator sweep direction: +1 inward, -1 outward.
        self.direction = 1
        #: Tails of recently active sequential streams.  A request that
        #: starts exactly at a tracked tail continues that stream and
        #: pays pure transfer -- no seek, no rotational delay -- which
        #: is what the paper's 256-KByte prefetch cache buys: several
        #: interleaved sequential scans each stay efficient.  The
        #: number of simultaneously tracked streams is bounded by the
        #: cache size (256 KB / 32 pages ~ a handful of block streams);
        #: beyond that, streams evict each other and sequentiality is
        #: lost -- the physical face of thrashing.  (Insertion-ordered
        #: plain dict; oldest tail is the iteration front.)
        self._streams: dict = {}
        self._max_streams = max(1, resources.disk_cache_pages // resources.block_size)
        self.sequential_continuations = 0
        self.cache = PrefetchCache(resources.disk_cache_pages)
        self.busy = TimeWeighted(sim, initial=0.0)
        self.service_times = Tally()
        self.accesses = 0
        #: Conservation counters (see :mod:`repro.rtdbs.invariants`):
        #: every submitted access is either a prefetch-cache hit, served
        #: by the arm (``accesses``), cancelled while queued, or still
        #: queued -- these let the invariant checker prove no request is
        #: ever lost or double-served.
        self.submitted = 0
        self.cancelled_queued = 0
        self._complete_cb = self._complete  # pre-bound: one per serve
        # Physical constants hoisted off the per-access path.
        self._cylinder_size = resources.cylinder_size
        self._pages_per_disk = resources.pages_per_disk
        self._transfer_s = resources.transfer_s_per_page
        self._rotation_s = resources.rotation_s
        self._half_rotation_s = resources.rotation_s / 2.0
        self._stochastic_rotation = resources.stochastic_rotation
        self._seek_time = resources.seek_time

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, kind: str, start_page: int, npages: int, priority: float) -> DiskRequest:
        """Queue one access; returns its completion event.

        Reads whose pages are all in the prefetch cache complete
        immediately without using the disk arm.
        """
        if npages <= 0:
            raise ValueError(f"disk access must cover at least one page, got {npages}")
        if kind != READ and kind != WRITE:
            raise ValueError(f"unknown access kind {kind!r}")
        last_page = start_page + npages - 1
        if start_page < 0 or last_page >= self._pages_per_disk:
            raise ValueError(
                f"disk {self.disk_id}: access [{start_page}, {last_page}] out of range"
            )
        self.submitted += 1
        self._sequence += 1
        cylinder = start_page // self._cylinder_size
        request = DiskRequest(
            self.sim, kind, start_page, npages, priority, self._sequence, cylinder
        )
        if kind == READ and self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            request.succeed(None)
            return request
        if self._serving is None and not self._queue:
            self._serve(request)  # uncontended: skip the heap entirely
        else:
            heapq.heappush(self._queue, (priority, request._seq, request))
            if self._serving is None:
                self._serve_next()
        return request

    def submit_op(self, op) -> bool:
        """Queue an access whose completion event is ``op`` itself.

        ``op`` must carry ``kind``/``start_page``/``npages``/``priority``
        and be a waitable :class:`Event` (the query manager's per-block
        CPU+disk op).  Scheduling the op directly avoids allocating a
        separate :class:`DiskRequest` per access.  Returns ``True`` when
        the access was served from the prefetch cache (no arm time; the
        op was not queued and the caller completes it).
        """
        start_page = op.start_page
        npages = op.npages
        if npages <= 0:
            raise ValueError(f"disk access must cover at least one page, got {npages}")
        if start_page < 0 or start_page + npages > self._pages_per_disk:
            raise ValueError(
                f"disk {self.disk_id}: access [{start_page}, "
                f"{start_page + npages - 1}] out of range"
            )
        self.submitted += 1
        if op.kind == READ and self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            return True
        self._sequence += 1
        op._seq = self._sequence
        op.cylinder = start_page // self._cylinder_size
        if self._serving is None and not self._queue:
            self._serve(op)
        else:
            heapq.heappush(self._queue, (op.priority, op._seq, op))
            if self._serving is None:
                self._serve_next()
        return False

    def cancel(self, request: DiskRequest) -> None:
        """Withdraw a request, honouring non-preemptive service.

        An access already holding the arm runs to the end: its head
        movement, stream-tail bookkeeping, and cache installation in
        :meth:`_complete` all still happen -- only the completion is
        delivered to no-one (every waiter callback is dropped).  A
        *queued* request, by contrast, is dropped before it ever
        reaches the arm: it contributes no service time and leaves no
        physical trace on the disk.
        """
        if request.triggered or request.cancelled:
            return
        if self._serving is request:
            # Keep the scheduled completion alive so _complete still
            # runs its physical bookkeeping; just detach all waiters
            # (the first callback is the disk's own _complete).
            del request.callbacks[1:]
            return
        request.cancel()
        queue = self._queue
        for index, entry in enumerate(queue):
            if entry[2] is request:
                queue[index] = queue[-1]
                queue.pop()
                heapq.heapify(queue)
                self.cancelled_queued += 1
                break

    @property
    def queue_length(self) -> int:
        """Waiting requests (excluding any in service)."""
        self._compact()
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of time the arm has been busy since the run began."""
        return self.busy.mean()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)

    def _pop_best(self) -> Optional[DiskRequest]:
        """Highest-priority request; elevator order among equal priorities."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        top = heapq.heappop(queue)
        if not queue or queue[0][0] != top[0]:
            return top[2]  # common case: unique priority, no re-push
        # Collect the (rare) priority ties and pick by elevator order.
        ties: List[Tuple[float, int, DiskRequest]] = [top]
        while queue and queue[0][0] == top[0]:
            entry = heapq.heappop(queue)
            if not entry[2].cancelled:
                ties.append(entry)
        if len(ties) == 1:
            return ties[0][2]
        chosen = self._elevator_choice([entry[2] for entry in ties])
        for entry in ties:
            if entry[2] is not chosen:
                heapq.heappush(queue, entry)
        return chosen

    def _elevator_choice(self, requests: List[DiskRequest]) -> DiskRequest:
        """Nearest cylinder in the sweep direction, else reverse sweep."""
        ahead = [
            req
            for req in requests
            if (req.cylinder - self.head) * self.direction >= 0
        ]
        if ahead:
            return min(ahead, key=lambda req: abs(req.cylinder - self.head))
        self.direction *= -1
        return min(requests, key=lambda req: abs(req.cylinder - self.head))

    def _service_time(self, request: DiskRequest) -> float:
        transfer = request.npages * self._transfer_s
        if request.start_page in self._streams:
            # Sequential continuation of a tracked stream: prefetched.
            self.sequential_continuations += 1
            return transfer
        seek = self._seek_time(abs(request.cylinder - self.head))
        if self._stochastic_rotation and self._rotation_stream is not None:
            rotate = self._rotation_stream.uniform(0.0, self._rotation_s)
        else:
            rotate = self._half_rotation_s
        return seek + rotate + transfer

    def _serve_next(self) -> None:
        request = self._pop_best()
        if request is None:
            self.busy.record_if_changed(0.0)
            return
        self._serve(request)

    def _serve(self, request: DiskRequest) -> None:
        self.busy.record_if_changed(1.0)
        self._serving = request
        duration = self._service_time(request)
        self.service_times.record(duration)
        self.accesses += 1
        # Service is non-preemptive, so the request itself doubles as
        # its own completion timer: one kernel event per access instead
        # of a Timeout that then re-schedules the request.  The disk's
        # bookkeeping runs first (callbacks[0]), then any waiters.
        request.callbacks.insert(0, self._complete_cb)
        self.sim._schedule_event(request, duration)

    def _complete(self, request: DiskRequest) -> None:
        # Head movement and sweep direction update.
        end_cylinder = (request.start_page + request.npages - 1) // self._cylinder_size
        if end_cylinder != self.head:
            self.direction = 1 if end_cylinder > self.head else -1
        self.head = end_cylinder
        streams = self._streams
        streams.pop(request.start_page, None)
        streams[request.start_page + request.npages] = None
        while len(streams) > self._max_streams:
            del streams[next(iter(streams))]
        self.cache.insert(request.start_page, request.npages)
        self._serving = None
        if self._queue:
            self._serve_next()
        else:
            self.busy.record_if_changed(0.0)
