"""The Disk Manager: ED-scheduled disks with an elevator tie-break.

Each disk (Section 4.2):

* manages its own queue by the Earliest Deadline policy; requests that
  ED assigns the same priority are serviced in elevator order;
* has a small cache (256 KBytes by default) used for prefetching --
  sequential scans fetch ``BlockSize`` pages per I/O that misses the
  cache, so re-reads of recently transferred pages cost nothing;
* charges ``Seek + RotateDelay + Transfer`` per access, with
  ``Seek(n) = SeekFactor * sqrt(n)`` over ``n`` cylinders [Bitt88] and a
  transfer time of one rotation per full track (= cylinder).

Requests are non-preemptive: once an access starts it completes even if
a more urgent request (or an abort) arrives meanwhile.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.rtdbs.config import ResourceParams
from repro.sim.events import Event
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.rng import Stream
from repro.sim.simulator import Simulator

READ = "read"
WRITE = "write"


class DiskRequest(Event):
    """Completion event for one disk access."""

    __slots__ = ("kind", "start_page", "npages", "priority", "_seq", "cylinder")

    def __init__(
        self,
        sim: Simulator,
        kind: str,
        start_page: int,
        npages: int,
        priority: float,
        seq: int,
        cylinder: int,
    ):
        super().__init__(sim)
        self.kind = kind
        self.start_page = start_page
        self.npages = npages
        self.priority = priority
        self._seq = seq
        self.cylinder = cylinder


class PrefetchCache:
    """LRU cache of recently transferred pages (one per disk)."""

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_pages
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def contains_all(self, start_page: int, npages: int) -> bool:
        """True when every page of the range is cached (a free read)."""
        for page in range(start_page, start_page + npages):
            if page not in self._pages:
                return False
        return True

    def touch(self, start_page: int, npages: int) -> None:
        """Record a hit: refresh the pages' recency."""
        self.hits += 1
        for page in range(start_page, start_page + npages):
            self._pages.move_to_end(page)

    def insert(self, start_page: int, npages: int) -> None:
        """Record a transfer: install the pages, evicting LRU ones."""
        self.misses += 1
        for page in range(start_page, start_page + npages):
            if page in self._pages:
                self._pages.move_to_end(page)
            else:
                self._pages[page] = None
                if len(self._pages) > self.capacity:
                    self._pages.popitem(last=False)

    def __len__(self) -> int:
        return len(self._pages)


class Disk:
    """A single disk with ED queueing and physical timing."""

    def __init__(
        self,
        sim: Simulator,
        disk_id: int,
        resources: ResourceParams,
        rotation_stream: Optional[Stream] = None,
    ):
        self.sim = sim
        self.disk_id = disk_id
        self.resources = resources
        self._rotation_stream = rotation_stream
        self._queue: List[Tuple[float, int, DiskRequest]] = []
        self._sequence = 0
        self._serving: Optional[DiskRequest] = None
        #: Current head position, cylinders; starts at the middle.
        self.head = resources.num_cylinders // 2
        #: Elevator sweep direction: +1 inward, -1 outward.
        self.direction = 1
        #: Tails of recently active sequential streams.  A request that
        #: starts exactly at a tracked tail continues that stream and
        #: pays pure transfer -- no seek, no rotational delay -- which
        #: is what the paper's 256-KByte prefetch cache buys: several
        #: interleaved sequential scans each stay efficient.  The
        #: number of simultaneously tracked streams is bounded by the
        #: cache size (256 KB / 32 pages ~ a handful of block streams);
        #: beyond that, streams evict each other and sequentiality is
        #: lost -- the physical face of thrashing.
        self._streams: "OrderedDict[int, None]" = OrderedDict()
        self._max_streams = max(1, resources.disk_cache_pages // resources.block_size)
        self.sequential_continuations = 0
        self.cache = PrefetchCache(resources.disk_cache_pages)
        self.busy = TimeWeighted(sim, initial=0.0)
        self.service_times = Tally()
        self.accesses = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, kind: str, start_page: int, npages: int, priority: float) -> DiskRequest:
        """Queue one access; returns its completion event.

        Reads whose pages are all in the prefetch cache complete
        immediately without using the disk arm.
        """
        if npages <= 0:
            raise ValueError(f"disk access must cover at least one page, got {npages}")
        if kind not in (READ, WRITE):
            raise ValueError(f"unknown access kind {kind!r}")
        last_page = start_page + npages - 1
        if start_page < 0 or last_page >= self.resources.pages_per_disk:
            raise ValueError(
                f"disk {self.disk_id}: access [{start_page}, {last_page}] out of range"
            )
        self._sequence += 1
        cylinder = start_page // self.resources.cylinder_size
        request = DiskRequest(
            self.sim, kind, start_page, npages, priority, self._sequence, cylinder
        )
        if kind == READ and self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            request.succeed(None)
            return request
        heapq.heappush(self._queue, (priority, request._seq, request))
        if self._serving is None:
            self._serve_next()
        return request

    def cancel(self, request: DiskRequest) -> None:
        """Withdraw a queued request (in-service accesses finish)."""
        if request.triggered or request.cancelled:
            return
        if self._serving is request:
            # Non-preemptive: let the arm finish, but deliver nowhere.
            request.cancel()
            return
        request.cancel()

    @property
    def queue_length(self) -> int:
        """Waiting requests (excluding any in service)."""
        self._compact()
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of time the arm has been busy since the run began."""
        return self.busy.mean()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)

    def _pop_best(self) -> Optional[DiskRequest]:
        """Highest-priority request; elevator order among equal priorities."""
        self._compact()
        if not self._queue:
            return None
        top_priority = self._queue[0][0]
        # Collect the (rare) priority ties and pick by elevator order.
        ties: List[Tuple[float, int, DiskRequest]] = []
        while self._queue and self._queue[0][0] == top_priority:
            entry = heapq.heappop(self._queue)
            if not entry[2].cancelled:
                ties.append(entry)
        if not ties:
            return self._pop_best()
        if len(ties) == 1:
            return ties[0][2]
        chosen = self._elevator_choice([entry[2] for entry in ties])
        for entry in ties:
            if entry[2] is not chosen:
                heapq.heappush(self._queue, entry)
        return chosen

    def _elevator_choice(self, requests: List[DiskRequest]) -> DiskRequest:
        """Nearest cylinder in the sweep direction, else reverse sweep."""
        ahead = [
            req
            for req in requests
            if (req.cylinder - self.head) * self.direction >= 0
        ]
        if ahead:
            return min(ahead, key=lambda req: abs(req.cylinder - self.head))
        self.direction *= -1
        return min(requests, key=lambda req: abs(req.cylinder - self.head))

    def _service_time(self, request: DiskRequest) -> float:
        resources = self.resources
        transfer = request.npages * resources.transfer_s_per_page
        if request.start_page in self._streams:
            # Sequential continuation of a tracked stream: prefetched.
            self.sequential_continuations += 1
            return transfer
        seek = resources.seek_time(abs(request.cylinder - self.head))
        if resources.stochastic_rotation and self._rotation_stream is not None:
            rotate = self._rotation_stream.uniform(0.0, resources.rotation_s)
        else:
            rotate = resources.rotation_s / 2.0
        return seek + rotate + transfer

    def _serve_next(self) -> None:
        request = self._pop_best()
        if request is None:
            if self.busy.value != 0.0:
                self.busy.record(0.0)
            return
        if self.busy.value != 1.0:
            self.busy.record(1.0)
        self._serving = request
        duration = self._service_time(request)
        self.service_times.record(duration)
        self.accesses += 1
        timer = self.sim.timeout(duration)
        timer.callbacks.append(lambda _evt, req=request: self._complete(req))

    def _complete(self, request: DiskRequest) -> None:
        # Head movement and sweep direction update.
        end_cylinder = (request.start_page + request.npages - 1) // self.resources.cylinder_size
        if end_cylinder != self.head:
            self.direction = 1 if end_cylinder > self.head else -1
        self.head = end_cylinder
        self._streams.pop(request.start_page, None)
        self._streams[request.start_page + request.npages] = None
        while len(self._streams) > self._max_streams:
            self._streams.popitem(last=False)
        self.cache.insert(request.start_page, request.npages)
        self._serving = None
        if not request.cancelled and not request.triggered:
            request.succeed(None)
        self._serve_next()
