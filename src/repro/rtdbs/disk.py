"""The Disk Manager: ED-scheduled disks with an elevator tie-break.

Each disk (Section 4.2):

* manages its own queue by the Earliest Deadline policy; requests that
  ED assigns the same priority are serviced in elevator order;
* has a small cache (256 KBytes by default) used for prefetching --
  sequential scans fetch ``BlockSize`` pages per I/O that misses the
  cache, so re-reads of recently transferred pages cost nothing;
* charges ``Seek + RotateDelay + Transfer`` per access, with
  ``Seek(n) = SeekFactor * sqrt(n)`` over ``n`` cylinders [Bitt88] and a
  transfer time of one rotation per full track (= cylinder).

Requests are non-preemptive: once an access starts it completes even if
a more urgent request (or an abort) arrives meanwhile.

The physical model itself -- head/sweep state, stream tails, the
prefetch cache, pricing, and the ED+elevator selection -- lives in the
host-agnostic :class:`repro.core.devices.DeviceCore`; this module is
the simulator-clock adapter around it: it owns the request heap, the
completion events, and the simulated-time monitors.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.devices import READ, WRITE, DeviceCore, PrefetchCache
from repro.rtdbs.config import ResourceParams
from repro.sim.events import Event
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.rng import Stream
from repro.sim.simulator import Simulator

__all__ = ["READ", "WRITE", "DiskRequest", "PrefetchCache", "Disk"]


class DiskRequest(Event):
    """Completion event for one disk access."""

    __slots__ = ("kind", "start_page", "npages", "priority", "_seq", "cylinder")

    def __init__(
        self,
        sim: Simulator,
        kind: str,
        start_page: int,
        npages: int,
        priority: float,
        seq: int,
        cylinder: int,
    ):
        super().__init__(sim)
        self.kind = kind
        self.start_page = start_page
        self.npages = npages
        self.priority = priority
        self._seq = seq
        self.cylinder = cylinder


class Disk:
    """A single disk with ED queueing and physical timing.

    Thin adapter: all physical state and scheduling decisions are taken
    by the shared :class:`DeviceCore`; this class binds them to the
    simulator's clock and event queue.
    """

    def __init__(
        self,
        sim: Simulator,
        disk_id: int,
        resources: ResourceParams,
        rotation_stream: Optional[Stream] = None,
    ):
        self.sim = sim
        self.disk_id = disk_id
        self.resources = resources
        self.core = DeviceCore(resources, rotation_stream)
        self._queue: List[Tuple[float, int, DiskRequest]] = []
        self._sequence = 0
        self._serving: Optional[DiskRequest] = None
        self.cache = self.core.cache
        self.busy = TimeWeighted(sim, initial=0.0)
        self.service_times = Tally()
        self.accesses = 0
        #: Conservation counters (see :mod:`repro.rtdbs.invariants`):
        #: every submitted access is either a prefetch-cache hit, served
        #: by the arm (``accesses``), cancelled while queued, or still
        #: queued -- these let the invariant checker prove no request is
        #: ever lost or double-served.
        self.submitted = 0
        self.cancelled_queued = 0
        self._complete_cb = self._complete  # pre-bound: one per serve
        # Hoisted off the per-access path.
        self._cylinder_size = resources.cylinder_size
        self._pages_per_disk = resources.pages_per_disk

    # ------------------------------------------------------------------
    # views onto the shared core
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Current head position, cylinders."""
        return self.core.head

    @head.setter
    def head(self, value: int) -> None:
        self.core.head = value

    @property
    def direction(self) -> int:
        """Elevator sweep direction: +1 inward, -1 outward."""
        return self.core.direction

    @direction.setter
    def direction(self, value: int) -> None:
        self.core.direction = value

    @property
    def sequential_continuations(self) -> int:
        return self.core.sequential_continuations

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, kind: str, start_page: int, npages: int, priority: float) -> DiskRequest:
        """Queue one access; returns its completion event.

        Reads whose pages are all in the prefetch cache complete
        immediately without using the disk arm.
        """
        if npages <= 0:
            raise ValueError(f"disk access must cover at least one page, got {npages}")
        if kind != READ and kind != WRITE:
            raise ValueError(f"unknown access kind {kind!r}")
        last_page = start_page + npages - 1
        if start_page < 0 or last_page >= self._pages_per_disk:
            raise ValueError(
                f"disk {self.disk_id}: access [{start_page}, {last_page}] out of range"
            )
        self.submitted += 1
        self._sequence += 1
        cylinder = start_page // self._cylinder_size
        request = DiskRequest(
            self.sim, kind, start_page, npages, priority, self._sequence, cylinder
        )
        if kind == READ and self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            request.succeed(None)
            return request
        if self._serving is None and not self._queue:
            self._serve(request)  # uncontended: skip the heap entirely
        else:
            heapq.heappush(self._queue, (priority, request._seq, request))
            if self._serving is None:
                self._serve_next()
        return request

    def submit_op(self, op) -> bool:
        """Queue an access whose completion event is ``op`` itself.

        ``op`` must carry ``kind``/``start_page``/``npages``/``priority``
        and be a waitable :class:`Event` (the query manager's per-block
        CPU+disk op).  Scheduling the op directly avoids allocating a
        separate :class:`DiskRequest` per access.  Returns ``True`` when
        the access was served from the prefetch cache (no arm time; the
        op was not queued and the caller completes it).
        """
        start_page = op.start_page
        npages = op.npages
        if npages <= 0:
            raise ValueError(f"disk access must cover at least one page, got {npages}")
        if start_page < 0 or start_page + npages > self._pages_per_disk:
            raise ValueError(
                f"disk {self.disk_id}: access [{start_page}, "
                f"{start_page + npages - 1}] out of range"
            )
        self.submitted += 1
        if op.kind == READ and self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            return True
        self._sequence += 1
        op._seq = self._sequence
        op.cylinder = start_page // self._cylinder_size
        if self._serving is None and not self._queue:
            self._serve(op)
        else:
            heapq.heappush(self._queue, (op.priority, op._seq, op))
            if self._serving is None:
                self._serve_next()
        return False

    def cancel(self, request: DiskRequest) -> None:
        """Withdraw a request, honouring non-preemptive service.

        An access already holding the arm runs to the end: its head
        movement, stream-tail bookkeeping, and cache installation in
        :meth:`_complete` all still happen -- only the completion is
        delivered to no-one (every waiter callback is dropped).  A
        *queued* request, by contrast, is dropped before it ever
        reaches the arm: it contributes no service time and leaves no
        physical trace on the disk.
        """
        if request.triggered or request.cancelled:
            return
        if self._serving is request:
            # Keep the scheduled completion alive so _complete still
            # runs its physical bookkeeping; just detach all waiters
            # (the first callback is the disk's own _complete).
            del request.callbacks[1:]
            return
        request.cancel()
        queue = self._queue
        for index, entry in enumerate(queue):
            if entry[2] is request:
                queue[index] = queue[-1]
                queue.pop()
                heapq.heapify(queue)
                self.cancelled_queued += 1
                break

    @property
    def queue_length(self) -> int:
        """Waiting requests (excluding any in service)."""
        self._compact()
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of time the arm has been busy since the run began."""
        return self.busy.mean()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)

    def _serve_next(self) -> None:
        request = self.core.select(self._queue)
        if request is None:
            self.busy.record_if_changed(0.0)
            return
        self._serve(request)

    def _serve(self, request: DiskRequest) -> None:
        self.busy.record_if_changed(1.0)
        self._serving = request
        duration = self.core.service_time(
            request.start_page, request.npages, request.cylinder
        )
        self.service_times.record(duration)
        self.accesses += 1
        # Service is non-preemptive, so the request itself doubles as
        # its own completion timer: one kernel event per access instead
        # of a Timeout that then re-schedules the request.  The disk's
        # bookkeeping runs first (callbacks[0]), then any waiters.
        request.callbacks.insert(0, self._complete_cb)
        self.sim._schedule_event(request, duration)

    def _complete(self, request: DiskRequest) -> None:
        self.core.note_transfer(request.start_page, request.npages)
        self._serving = None
        if self._queue:
            self._serve_next()
        else:
            self.busy.record_if_changed(0.0)
