"""The Buffer Manager: reservations + LRU over the unreserved pool.

Section 4.2: query operators (sorts and joins) *reserve* buffers for
use as workspaces and manage those pages themselves; page replacement
for the non-reserved remainder of the pool follows LRU.  Here:

* the **reservation ledger** tracks each query's granted workspace
  (the memory policy decides the grants; this class enforces that they
  never oversubscribe the pool);
* the **LRU data cache** uses whatever is left of the pool to retain
  recently read operand pages, letting concurrent scans of the same
  relation skip disk reads.  Its capacity shrinks automatically when
  reservations grow.

The cache itself is the host-agnostic
:class:`repro.core.devices.LRUDataCache` (shared with the live serving
layer's :class:`repro.serve.dataplane.LiveBufferPool`); this module is
the simulator-side ledger around it.
"""

from __future__ import annotations

from typing import Dict

from repro.core.devices import LRUDataCache
from repro.sim.monitor import TimeWeighted

__all__ = ["LRUDataCache", "BufferManager"]


class BufferManager:
    """Reservation ledger plus the LRU region over unreserved pages."""

    def __init__(self, sim, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        self.sim = sim
        self.total_pages = total_pages
        self._reserved: Dict[int, int] = {}
        self.cache = LRUDataCache(total_pages)
        #: Time-weighted total reserved pages (memory pressure signal).
        self.reserved_monitor = TimeWeighted(sim, initial=0.0)
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps ledger updates hook-free.
        self.invariants = None

    # ------------------------------------------------------------------
    @property
    def reserved_pages(self) -> int:
        """Total pages currently reserved by queries."""
        return sum(self._reserved.values())

    @property
    def free_pages(self) -> int:
        """Pages not reserved (the LRU region's capacity)."""
        return self.total_pages - self.reserved_pages

    def reservation_of(self, qid: int) -> int:
        """Pages reserved by one query (0 when none)."""
        return self._reserved.get(qid, 0)

    # ------------------------------------------------------------------
    def apply_allocation(self, allocation: Dict[int, int]) -> None:
        """Install a full allocation vector from the memory policy.

        Queries absent from the vector lose their reservation.  Raises
        ``ValueError`` if the vector oversubscribes the pool -- policy
        bugs must fail loudly, not silently thrash.
        """
        total = sum(allocation.values())
        if total > self.total_pages:
            raise ValueError(
                f"allocation of {total} pages exceeds the {self.total_pages}-page pool"
            )
        self._reserved = {qid: pages for qid, pages in allocation.items() if pages > 0}
        self.reserved_monitor.record(self.reserved_pages)
        self.cache.capacity = self.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    def release(self, qid: int) -> None:
        """Drop one query's reservation (departure or abort)."""
        if self._reserved.pop(qid, None) is not None:
            self.reserved_monitor.record(self.reserved_pages)
            self.cache.capacity = self.free_pages
            if self.invariants is not None:
                self.invariants.check_buffers(self)

    # ------------------------------------------------------------------
    def read_hit(self, disk: int, start_page: int, npages: int) -> bool:
        """Whether a cacheable read is fully served from the pool."""
        return self.cache.contains_all(disk, start_page, npages)

    def install(self, disk: int, start_page: int, npages: int) -> None:
        """Retain pages that just arrived from disk."""
        self.cache.insert(disk, start_page, npages)
