"""The Buffer Manager: reservations + LRU over the unreserved pool.

Section 4.2: query operators (sorts and joins) *reserve* buffers for
use as workspaces and manage those pages themselves; page replacement
for the non-reserved remainder of the pool follows LRU.  Here:

* the **reservation ledger** tracks each query's granted workspace
  (the memory policy decides the grants; this class enforces that they
  never oversubscribe the pool);
* the **LRU data cache** uses whatever is left of the pool to retain
  recently read operand pages, letting concurrent scans of the same
  relation skip disk reads.  Its capacity shrinks automatically when
  reservations grow.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict

from repro.sim.monitor import TimeWeighted


class LRUDataCache:
    """Page-granular LRU cache with a dynamically adjustable capacity.

    Pages are keyed by a single packed integer (``disk << 48 | page``)
    rather than a ``(disk, page)`` tuple: the cache is consulted on
    every cacheable read, and integer keys avoid a tuple allocation and
    hash per page on that hot path.  The backing store is a plain
    insertion-ordered dict (recency refresh = delete-and-reinsert),
    which outperforms ``OrderedDict`` on every operation used here.
    """

    _DISK_SHIFT = 48  # pages-per-disk fits comfortably below 2**48

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._capacity = capacity
        self._pages: dict = {}
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Current capacity in pages."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative capacity: {value}")
        self._capacity = value
        self._evict_excess()

    def _evict_excess(self) -> None:
        pages = self._pages
        excess = len(pages) - self._capacity
        if excess > 0:
            victims = list(islice(pages, excess))
            for key in victims:
                del pages[key]

    def __len__(self) -> int:
        return len(self._pages)

    def contains_all(self, disk: int, start_page: int, npages: int) -> bool:
        """True when the whole range is cached (counts one hit/miss)."""
        pages = self._pages
        base = (disk << self._DISK_SHIFT) + start_page
        for key in range(base, base + npages):
            if key not in pages:
                self.misses += 1
                return False
        self.hits += 1
        pop = pages.pop
        for key in range(base, base + npages):
            pop(key)
            pages[key] = None
        return True

    def insert(self, disk: int, start_page: int, npages: int) -> None:
        """Install pages just read from disk, evicting LRU victims.

        Evictions are deferred to the end of the range; the surviving
        set (the ``capacity`` most recently touched pages) is the same
        as with per-page eviction.
        """
        if self._capacity == 0:
            return
        pages = self._pages
        pop = pages.pop
        base = (disk << self._DISK_SHIFT) + start_page
        for key in range(base, base + npages):
            pop(key, None)
            pages[key] = None
        self._evict_excess()

    def invalidate_all(self) -> None:
        """Drop every cached page."""
        self._pages.clear()


class BufferManager:
    """Reservation ledger plus the LRU region over unreserved pages."""

    def __init__(self, sim, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        self.sim = sim
        self.total_pages = total_pages
        self._reserved: Dict[int, int] = {}
        self.cache = LRUDataCache(total_pages)
        #: Time-weighted total reserved pages (memory pressure signal).
        self.reserved_monitor = TimeWeighted(sim, initial=0.0)
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps ledger updates hook-free.
        self.invariants = None

    # ------------------------------------------------------------------
    @property
    def reserved_pages(self) -> int:
        """Total pages currently reserved by queries."""
        return sum(self._reserved.values())

    @property
    def free_pages(self) -> int:
        """Pages not reserved (the LRU region's capacity)."""
        return self.total_pages - self.reserved_pages

    def reservation_of(self, qid: int) -> int:
        """Pages reserved by one query (0 when none)."""
        return self._reserved.get(qid, 0)

    # ------------------------------------------------------------------
    def apply_allocation(self, allocation: Dict[int, int]) -> None:
        """Install a full allocation vector from the memory policy.

        Queries absent from the vector lose their reservation.  Raises
        ``ValueError`` if the vector oversubscribes the pool -- policy
        bugs must fail loudly, not silently thrash.
        """
        total = sum(allocation.values())
        if total > self.total_pages:
            raise ValueError(
                f"allocation of {total} pages exceeds the {self.total_pages}-page pool"
            )
        self._reserved = {qid: pages for qid, pages in allocation.items() if pages > 0}
        self.reserved_monitor.record(self.reserved_pages)
        self.cache.capacity = self.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    def release(self, qid: int) -> None:
        """Drop one query's reservation (departure or abort)."""
        if self._reserved.pop(qid, None) is not None:
            self.reserved_monitor.record(self.reserved_pages)
            self.cache.capacity = self.free_pages
            if self.invariants is not None:
                self.invariants.check_buffers(self)

    # ------------------------------------------------------------------
    def read_hit(self, disk: int, start_page: int, npages: int) -> bool:
        """Whether a cacheable read is fully served from the pool."""
        return self.cache.contains_all(disk, start_page, npages)

    def install(self, disk: int, start_page: int, npages: int) -> None:
        """Retain pages that just arrived from disk."""
        self.cache.insert(disk, start_page, npages)
