"""Clairvoyant-optimum oracle over recorded broker traces.

Answers the question no online shootout can: *how far is each policy
from optimal on this exact workload?*  Given a recorded
:class:`~repro.core.broker.BrokerTrace`, the oracle chooses -- with
full hindsight -- which queries to serve, when to admit each, and how
many pages to grant it, minimising missed deadlines (ties broken by
total admission wait) subject to pool capacity over time.

* :mod:`repro.oracle.problem` -- the formulation: a deliberate
  relaxation of the broker's online semantics whose optimum
  lower-bounds every realisable schedule, so ``regret = policy misses
  - oracle misses`` is a sound upper bound on the true gap.
* :mod:`repro.oracle.solver` -- ``solve(trace, budget)``: exact
  branch-and-bound on small traces (tagged ``exact``), greedy + local
  search everywhere else (tagged ``bound``), plus the brute-force
  cross-checker.
* :mod:`repro.oracle.scenario` -- ``solve_scenario``: record + solve
  one generated scenario, content-hash cached in ``.repro_cache/``.

See ``src/repro/oracle/README.md`` for the full formulation and how
to read the regret column.
"""

from repro.oracle.problem import (
    EPS,
    ORACLE_VERSION,
    SPEEDUP,
    OracleProblem,
    OracleQuery,
)
from repro.oracle.scenario import (
    oracle_cache_key,
    solve_scenario,
    trace_scenario,
)
from repro.oracle.solver import (
    DEFAULT_EVAL_BUDGET,
    DEFAULT_EXACT_LIMIT,
    DEFAULT_NODE_LIMIT,
    OracleResult,
    ScheduledQuery,
    brute_force,
    solve,
)

__all__ = [
    "EPS",
    "ORACLE_VERSION",
    "SPEEDUP",
    "OracleProblem",
    "OracleQuery",
    "OracleResult",
    "ScheduledQuery",
    "DEFAULT_EVAL_BUDGET",
    "DEFAULT_EXACT_LIMIT",
    "DEFAULT_NODE_LIMIT",
    "brute_force",
    "solve",
    "solve_scenario",
    "trace_scenario",
    "oracle_cache_key",
]
