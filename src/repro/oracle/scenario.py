"""Oracle over generated scenarios, cached in the experiment engine.

``solve_scenario`` is the shootout's entry point: run the scenario's
DES simulation with a broker recorder attached, extract the
clairvoyant problem from the trace, solve it, and content-hash the
:class:`~repro.oracle.solver.OracleResult` into the same persistent
``.repro_cache/`` store the experiment engine uses -- keyed on the
walked scenario config, the policy, and every solver knob, salted with
:data:`~repro.oracle.problem.ORACLE_VERSION` and the engine's
``CACHE_VERSION``.  A warm shootout therefore never re-simulates *or*
re-solves for its regret column.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Optional, Tuple

from repro.core.broker import BrokerTrace
from repro.experiments import runner
from repro.oracle.problem import ORACLE_VERSION, OracleProblem
from repro.oracle.solver import (
    DEFAULT_EVAL_BUDGET,
    DEFAULT_EXACT_LIMIT,
    DEFAULT_NODE_LIMIT,
    OracleResult,
    solve,
)
from repro.rtdbs.system import SimulationResult


def trace_scenario(
    scenario, policy: str, invariants: bool = True
) -> Tuple[BrokerTrace, SimulationResult]:
    """Run one scenario in-process with a broker recorder attached.

    Mirrors the engine's execution of ``scenario.run_spec(policy)``
    (same config, horizon, and invariant hook), so the trace's
    departure stream must agree with the cached
    :class:`~repro.rtdbs.system.SimulationResult` for the same cell --
    the shootout cross-checks exactly that.
    """
    from repro.rtdbs.invariants import attach_invariants
    from repro.rtdbs.system import RTDBSystem

    system = RTDBSystem(scenario.config, policy)
    if invariants:
        attach_invariants(system)
    trace = BrokerTrace()
    system.query_manager.broker.recorder = trace
    result = system.run(duration=scenario.config.duration)
    return trace, result


def oracle_cache_key(
    scenario,
    policy: str,
    invariants: bool,
    exact_limit: int,
    node_limit: int,
    eval_budget: int,
) -> str:
    """Content-hash key of one scenario's oracle solution."""
    material = (
        "repro-oracle",
        ORACLE_VERSION,
        runner.CACHE_VERSION,
        runner.canonical_record(scenario.config),
        str(policy),
        bool(invariants),
        int(exact_limit),
        int(node_limit),
        int(eval_budget),
    )
    return sha256(repr(material).encode("utf-8")).hexdigest()


def solve_scenario(
    scenario,
    policy: str,
    cache: bool = True,
    invariants: bool = True,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    node_limit: int = DEFAULT_NODE_LIMIT,
    eval_budget: int = DEFAULT_EVAL_BUDGET,
) -> OracleResult:
    """The clairvoyant optimum for one (scenario, policy) cell, cached.

    On a cache hit the DES run is skipped entirely; on a miss the
    scenario is simulated with a recorder, solved, and the result
    stored under :func:`oracle_cache_key`.
    """
    key = oracle_cache_key(
        scenario, policy, invariants, exact_limit, node_limit, eval_budget
    )
    store: Optional[runner.ResultCache] = None
    if cache and runner.cache_enabled():
        store = runner.ResultCache(runner.cache_dir())
        hit = store.get(key)
        if isinstance(hit, OracleResult):
            return hit
    trace, _result = trace_scenario(scenario, policy, invariants=invariants)
    problem = OracleProblem.from_trace(trace)
    oracle = solve(
        problem,
        exact_limit=exact_limit,
        node_limit=node_limit,
        eval_budget=eval_budget,
    )
    if store is not None:
        store.put(key, oracle)
    return oracle
