"""Clairvoyant solvers: exact branch-and-bound and greedy + local search.

Both solvers share one schedule evaluator built on a theorem about the
relaxed problem (see :mod:`repro.oracle.problem` for the model):

    For any feasible schedule, order its served queries by start time
    and re-place them one at a time, each at the *earliest*
    capacity-feasible start at or after its arrival.  By induction the
    re-placed starts are componentwise no later than the originals
    (earlier placements only ever free capacity earlier), so the
    re-placed schedule serves the same set on time with no more total
    wait.

Hence the optimum is attained over (placement order, grant vector)
pairs evaluated greedily -- a finite space -- and both solvers search
exactly that space:

* :func:`_branch_and_bound` explores it exhaustively for small
  instances: at each node either place one remaining query (any of
  them, any menu grant) at its earliest on-time start, or sacrifice
  everything still unplaced.  The bound is admissible because capacity
  only shrinks down a branch: a query that cannot start on time *now*
  never can later, so ``misses >= current + |unplaceable|``.  Completed
  searches are tagged ``exact``; hitting the node cap degrades the
  result to the best incumbent, tagged ``bound``.
* :func:`_heuristic` evaluates a few constructive seeds -- earliest
  deadline first at min and at max grants, plus the *realized
  projection* (the recorded run's own on-time queries in recorded
  admission order at min grants, which re-places the policy's actual
  schedule inside the relaxation and anchors ``regret >= 0``) -- then
  improves the best by deterministic local search: grant re-packing,
  admit-order (adjacent) swaps, and re-insertion of sacrificed
  queries.  Always tagged ``bound``.

:func:`brute_force` enumerates every (permutation x grant vector) for
cross-checking the branch-and-bound on tiny instances.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from itertools import permutations, product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.broker import TraceLike
from repro.oracle.problem import EPS, OracleProblem, OracleQuery

#: Traces with at most this many queries get the exact solver.
DEFAULT_EXACT_LIMIT = 30

#: Branch-and-bound node budget before degrading to ``bound``.
DEFAULT_NODE_LIMIT = 5000

#: Local-search evaluation budget (schedule evaluations, not time --
#: the solver must stay deterministic because results are content-hash
#: cached).
DEFAULT_EVAL_BUDGET = 1500

#: Refuse brute force beyond this many (permutation x grant) leaves.
BRUTE_FORCE_LEAF_LIMIT = 500_000


@dataclass(frozen=True)
class ScheduledQuery:
    """One query the oracle serves: when, how much, and the slack."""

    qid: int
    class_name: str
    arrival: float
    deadline: float
    grant: int
    start: float
    finish: float

    @property
    def wait(self) -> float:
        return self.start - self.arrival


@dataclass(frozen=True)
class OracleResult:
    """A clairvoyant solution over one trace's departed queries."""

    #: ``exact`` (provably optimal) or ``bound`` (heuristic / capped).
    tag: str
    query_count: int
    pool_pages: int
    served: int
    misses: int
    total_wait: float
    schedule: Tuple[ScheduledQuery, ...]
    missed_qids: Tuple[int, ...]
    #: Missed count of the recorded run over the same queries.
    recorded_misses: int
    #: Branch-and-bound nodes explored (0 on the heuristic path).
    nodes: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.query_count if self.query_count else 0.0

    @property
    def regret(self) -> int:
        """Recorded misses minus oracle misses (>= 0 when sound)."""
        return self.recorded_misses - self.misses


# ----------------------------------------------------------------------
# capacity profile: a step function over time, mutated in place
# ----------------------------------------------------------------------
def _insert_run(
    times: List[float], usage: List[int], start: float, end: float, grant: int
) -> None:
    """Add ``grant`` pages over ``[start, end)`` to the step function.

    ``usage[i]`` holds on ``[times[i], times[i+1])``; usage is 0 before
    ``times[0]`` and after the last breakpoint's level decays to 0.
    """
    i = bisect_right(times, start)
    if i == 0 or times[i - 1] != start:
        times.insert(i, start)
        usage.insert(i, usage[i - 1] if i > 0 else 0)
    else:
        i -= 1
    j = bisect_right(times, end)
    if j == 0 or times[j - 1] != end:
        times.insert(j, end)
        usage.insert(j, usage[j - 1] if j > 0 else 0)
    else:
        j -= 1
    for k in range(i, j):
        usage[k] += grant


def _fits(
    times: List[float],
    usage: List[int],
    start: float,
    end: float,
    limit: int,
) -> bool:
    """True when usage stays <= ``limit`` throughout ``[start, end)``."""
    i = bisect_right(times, start) - 1
    if i >= 0 and usage[i] > limit:
        return False
    j = i + 1
    while j < len(times) and times[j] < end:
        if usage[j] > limit:
            return False
        j += 1
    return True


def _earliest_on_time_start(
    times: List[float],
    usage: List[int],
    query: OracleQuery,
    grant: int,
    pool: int,
) -> Optional[float]:
    """Earliest capacity-feasible start that still meets the deadline.

    The earliest feasible start is either the arrival or a breakpoint
    of the usage step function (usage is constant in between, so an
    infeasible instant stays infeasible until the next breakpoint).
    """
    limit = pool - grant
    if limit < 0:
        return None
    duration = query.duration(grant)
    latest = query.deadline - duration
    if query.arrival > latest + EPS:
        return None
    if _fits(times, usage, query.arrival, query.arrival + duration, limit):
        return query.arrival
    for k in range(bisect_right(times, query.arrival), len(times)):
        t = times[k]
        if t > latest + EPS:
            return None
        if _fits(times, usage, t, t + duration, limit):
            return t
    return None


# ----------------------------------------------------------------------
# the shared evaluator: placement order + grants -> schedule
# ----------------------------------------------------------------------
@dataclass
class _Candidate:
    """One evaluated (order, grants) point in the search space."""

    order: List[Tuple[OracleQuery, int]]
    #: qid -> (start, finish, grant) for the on-time subset.
    scheduled: Dict[int, Tuple[float, float, int]]
    misses: int
    wait: float

    @property
    def key(self) -> Tuple[int, float]:
        return (self.misses, self.wait)


def _evaluate(
    order: Sequence[Tuple[OracleQuery, int]], pool: int
) -> _Candidate:
    """Greedily place each (query, grant) at its earliest on-time start.

    Queries that cannot be served on time under the placements made so
    far are sacrificed (consume nothing) -- the sacrifice-set model.
    """
    times: List[float] = []
    usage: List[int] = []
    scheduled: Dict[int, Tuple[float, float, int]] = {}
    misses = 0
    wait = 0.0
    for query, grant in order:
        start = _earliest_on_time_start(times, usage, query, grant, pool)
        if start is None:
            misses += 1
            continue
        finish = start + query.duration(grant)
        _insert_run(times, usage, start, finish, grant)
        scheduled[query.qid] = (start, finish, grant)
        wait += start - query.arrival
    return _Candidate(list(order), scheduled, misses, wait)


# ----------------------------------------------------------------------
# heuristic: constructive seeds + deterministic local search
# ----------------------------------------------------------------------
def _edf(queries: Sequence[OracleQuery]) -> List[OracleQuery]:
    return sorted(queries, key=lambda q: (q.deadline, q.arrival, q.qid))


def _seed_orders(
    problem: OracleProblem,
) -> List[List[Tuple[OracleQuery, int]]]:
    edf = _edf(problem.queries)
    seeds = [
        [(q, q.min_pages) for q in edf],
        [(q, q.max_pages) for q in edf],
    ]
    realized = sorted(
        (q for q in problem.queries if q.admitted and not q.realized_missed),
        key=lambda q: (q.realized_start, q.qid),
    )
    if realized:
        rest = _edf(
            q for q in problem.queries if q.realized_missed or not q.admitted
        )
        seeds.append([(q, q.min_pages) for q in realized + rest])
    return seeds


class _Budget:
    """Deterministic evaluation counter shared across search phases."""

    def __init__(self, evaluations: int):
        self.left = int(evaluations)

    def take(self) -> bool:
        self.left -= 1
        return self.left >= 0


def _local_search(
    candidate: _Candidate, pool: int, budget: _Budget
) -> _Candidate:
    """First-improvement hill climbing over order + grant moves."""
    best = candidate
    improved = True
    while improved and budget.left > 0:
        improved = False
        # Grant re-packing: try every other menu grant per position.
        for i in range(len(best.order)):
            query, grant = best.order[i]
            for other in query.grant_menu():
                if other == grant:
                    continue
                if not budget.take():
                    return best
                trial_order = list(best.order)
                trial_order[i] = (query, other)
                trial = _evaluate(trial_order, pool)
                if trial.key < best.key:
                    best = trial
                    improved = True
                    break
        # Re-insert sacrificed queries near their deadline rank, at
        # every menu grant, and at the front.  One accepted move ends
        # the pass (positions are stale after any reorder).
        while budget.left > 0:
            trial = _reinsert_missed(best, pool, budget)
            if trial is None:
                break
            best = trial
            improved = True
        # Admit-order adjacent swaps.
        for i in range(len(best.order) - 1):
            if not budget.take():
                return best
            trial_order = list(best.order)
            trial_order[i], trial_order[i + 1] = (
                trial_order[i + 1],
                trial_order[i],
            )
            trial = _evaluate(trial_order, pool)
            if trial.key < best.key:
                best = trial
                improved = True
    return best


def _reinsert_missed(
    best: _Candidate, pool: int, budget: _Budget
) -> Optional[_Candidate]:
    """First improving re-insertion of a sacrificed query, or None."""
    for i, (query, _grant) in enumerate(best.order):
        if query.qid in best.scheduled:
            continue
        ranks = [0]
        for j, (other, _g) in enumerate(best.order):
            if other.deadline >= query.deadline:
                ranks.extend((max(0, j - 1), j))
                break
        for position in dict.fromkeys(ranks):
            for grant in query.grant_menu():
                if not budget.take():
                    return None
                trial_order = list(best.order)
                trial_order.pop(i)
                trial_order.insert(min(position, len(trial_order)), (query, grant))
                trial = _evaluate(trial_order, pool)
                if trial.key < best.key:
                    return trial
    return None


def _heuristic(
    problem: OracleProblem, eval_budget: int = DEFAULT_EVAL_BUDGET
) -> _Candidate:
    """Best seed, locally improved; always includes the realized
    projection seed so the heuristic never loses to the recorded run
    by construction (modulo the documented suspension corner)."""
    budget = _Budget(eval_budget)
    evaluated = []
    for order in _seed_orders(problem):
        budget.take()
        evaluated.append(_evaluate(order, problem.pool_pages))
    # The projection seed (when present) is the regret anchor: the
    # winning candidate is at least as good as it even with no budget.
    projection = evaluated[-1] if len(evaluated) > 2 else None
    best_seed = min(evaluated, key=lambda c: c.key)
    best = _local_search(best_seed, problem.pool_pages, budget)
    if projection is not None and projection is not best_seed:
        improved = _local_search(projection, problem.pool_pages, budget)
        if improved.key < best.key:
            best = improved
    return best


# ----------------------------------------------------------------------
# exact branch-and-bound
# ----------------------------------------------------------------------
def _branch_and_bound(
    problem: OracleProblem,
    incumbent: _Candidate,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> Tuple[_Candidate, bool, int]:
    """Exhaustive search over (placement order, grants), pruned.

    Returns ``(best, complete, nodes)``; ``complete`` is False when the
    node cap stopped the search (the result is then only a bound).
    """
    pool = problem.pool_pages
    best_key = incumbent.key
    best_sched = dict(incumbent.scheduled)
    nodes = 0
    complete = True

    def recurse(
        remaining: Tuple[OracleQuery, ...],
        times: List[float],
        usage: List[int],
        misses: int,
        wait: float,
        scheduled: Dict[int, Tuple[float, float, int]],
    ) -> None:
        nonlocal best_key, best_sched, nodes, complete
        nodes += 1
        if nodes > node_limit:
            complete = False
            return
        # Leaf option: sacrifice everything still unplaced.
        leaf_key = (misses + len(remaining), wait)
        if leaf_key < best_key:
            best_key = leaf_key
            best_sched = dict(scheduled)
        if not remaining:
            return
        options = []
        for index, query in enumerate(remaining):
            placements = []
            for grant in query.grant_menu():
                start = _earliest_on_time_start(times, usage, query, grant, pool)
                if start is not None:
                    placements.append((grant, start))
            if placements:
                # Fastest grant first: shorter runs free capacity sooner
                # and tend to reach good incumbents early.
                placements.sort(key=lambda p: query.duration(p[0]))
                options.append((index, query, placements))
        # Admissible bound: a query unplaceable now stays unplaceable
        # (capacity only shrinks down a branch); wait only grows.
        bound_key = (misses + len(remaining) - len(options), wait)
        if bound_key >= best_key:
            return
        for index, query, placements in options:
            rest = remaining[:index] + remaining[index + 1:]
            for grant, start in placements:
                finish = start + query.duration(grant)
                child_times = list(times)
                child_usage = list(usage)
                _insert_run(child_times, child_usage, start, finish, grant)
                scheduled[query.qid] = (start, finish, grant)
                recurse(
                    rest,
                    child_times,
                    child_usage,
                    misses,
                    wait + (start - query.arrival),
                    scheduled,
                )
                del scheduled[query.qid]
                if not complete:
                    return

    recurse(tuple(_edf(problem.queries)), [], [], 0, 0.0, {})
    best = _Candidate(
        order=[], scheduled=best_sched, misses=best_key[0], wait=best_key[1]
    )
    return best, complete, nodes


def brute_force(problem: OracleProblem) -> OracleResult:
    """Exhaustive (permutation x grant vector) enumeration.

    The independent cross-check for :func:`_branch_and_bound` on tiny
    instances -- no pruning, no bounds, no incumbents.  Refuses
    instances beyond :data:`BRUTE_FORCE_LEAF_LIMIT` leaves.
    """
    queries = list(problem.queries)
    menus = [q.grant_menu() for q in queries]
    leaves = 1
    for index in range(len(queries)):
        leaves *= (index + 1) * len(menus[index])
        if leaves > BRUTE_FORCE_LEAF_LIMIT:
            raise ValueError(
                f"brute force over {len(queries)} queries exceeds "
                f"{BRUTE_FORCE_LEAF_LIMIT} leaves; shrink the instance"
            )
    best: Optional[_Candidate] = None
    for perm in permutations(range(len(queries))):
        for grants in product(*(menus[i] for i in perm)):
            order = [(queries[i], g) for i, g in zip(perm, grants)]
            candidate = _evaluate(order, problem.pool_pages)
            if best is None or candidate.key < best.key:
                best = candidate
    assert best is not None or not queries
    if best is None:
        best = _Candidate([], {}, 0, 0.0)
    return _result(problem, best, tag="exact", nodes=0)


# ----------------------------------------------------------------------
# the entry point
# ----------------------------------------------------------------------
def solve(
    trace: TraceLike,
    budget: Optional[int] = None,
    *,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    node_limit: int = DEFAULT_NODE_LIMIT,
    eval_budget: int = DEFAULT_EVAL_BUDGET,
) -> OracleResult:
    """Solve the clairvoyant problem behind one trace.

    ``trace`` is anything :class:`~repro.oracle.problem.OracleProblem`
    accepts (an in-memory trace, a bare op list, a saved-trace path) or
    an already-built problem; ``budget`` overrides the pool capacity in
    pages.  Instances with at most ``exact_limit`` queries go through
    branch-and-bound seeded with the heuristic incumbent (``exact``
    when the search completes, ``bound`` when the node cap fires);
    larger instances return the heuristic solution tagged ``bound``.
    """
    if isinstance(trace, OracleProblem):
        problem = trace
        if budget is not None and budget != problem.pool_pages:
            problem = replace(problem, pool_pages=int(budget))
    else:
        problem = OracleProblem.from_trace(trace, pool_pages=budget)
    heuristic = _heuristic(problem, eval_budget)
    if problem.query_count <= exact_limit:
        best, complete, nodes = _branch_and_bound(
            problem, heuristic, node_limit
        )
        return _result(
            problem, best, tag="exact" if complete else "bound", nodes=nodes
        )
    return _result(problem, heuristic, tag="bound", nodes=0)


def _result(
    problem: OracleProblem, candidate: _Candidate, tag: str, nodes: int
) -> OracleResult:
    by_qid = {query.qid: query for query in problem.queries}
    schedule = []
    for qid, (start, finish, grant) in candidate.scheduled.items():
        query = by_qid[qid]
        schedule.append(
            ScheduledQuery(
                qid=qid,
                class_name=query.class_name,
                arrival=query.arrival,
                deadline=query.deadline,
                grant=grant,
                start=start,
                finish=finish,
            )
        )
    schedule.sort(key=lambda s: (s.start, s.qid))
    missed = tuple(
        sorted(qid for qid in by_qid if qid not in candidate.scheduled)
    )
    return OracleResult(
        tag=tag,
        query_count=problem.query_count,
        pool_pages=problem.pool_pages,
        served=len(schedule),
        misses=len(missed),
        total_wait=candidate.wait,
        schedule=tuple(schedule),
        missed_qids=missed,
        recorded_misses=problem.recorded_misses,
        nodes=nodes,
    )
