"""From a recorded broker trace to a clairvoyant scheduling problem.

The oracle answers "how well could *any* admission/allocation policy
have done on this exact workload?" -- with hindsight, and freed from
the broker's online constraints.  The problem it solves is a
deliberate *relaxation* of the recorded run:

* **Decision variables.**  For every query that departed in the trace:
  whether to serve it at all, when to admit it (any time at or after
  its arrival), and a fixed page grant from its ``{min, mid, max}``
  demand menu.  Admission is non-preemptive: a served query holds its
  grant from admission to completion.
* **Constraints.**  At every instant the grants of concurrently
  running queries must fit in the buffer pool (the *largest* pool the
  trace ever saw -- mid-run shrinks by the memory thief are relaxed
  away, which only helps the oracle).  A served query must finish by
  its deadline; queries the oracle sacrifices consume nothing (a
  clairvoyant scheduler never starts work it knows is doomed, while
  the online broker must burn pool on queries that later abort).
* **Service model.**  A query's run time at its minimum grant is its
  *observed* execution time in the trace (which therefore bakes in the
  recorded disk/CPU contention); extra memory above the minimum speeds
  it up linearly, by :data:`SPEEDUP` at the maximum grant -- the
  direction hash joins and external sorts actually respond to
  workspace.  Queries the recorded run never admitted have no observed
  execution time, so theirs is estimated from their class's observed
  seconds-per-operand-IO (global fallback, then the time constraint).
* **Objective.**  Lexicographic: first minimise missed deadlines, then
  total admission wait (sum of ``admit - arrival`` over served
  queries).

Because the model is a relaxation, the oracle's miss count lower-bounds
every realisable schedule's, so ``regret = policy misses - oracle
misses`` upper-bounds the policy's true optimality gap and is >= 0 by
construction (the realized schedule projects into the model; see
:mod:`repro.oracle.solver`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.broker import TraceLike, coerce_trace_ops

#: Bump whenever the formulation, service model, or solver semantics
#: change: the scenario-level oracle cache keys are salted with it.
ORACLE_VERSION = 1

#: Fractional speed-up of a query's service time at its maximum grant
#: relative to its minimum grant (linear in between).
SPEEDUP = 0.25

#: Deadline slack tolerance: completions within EPS of the deadline
#: count as on time (guards float round-off, not semantics).
EPS = 1e-9


@dataclass(frozen=True)
class OracleQuery:
    """One departed query, as the clairvoyant scheduler sees it."""

    qid: int
    class_name: str
    arrival: float
    #: Absolute deadline (arrival + time constraint).
    deadline: float
    min_pages: int
    max_pages: int
    #: Service seconds at the minimum grant (observed, or estimated
    #: for queries the recorded run never admitted).
    base_seconds: float
    #: True when the recorded run admitted the query (first grant).
    admitted: bool
    #: Recorded first-admission time (``None`` if never admitted).
    realized_start: Optional[float]
    #: True when the recorded run missed the query's deadline.
    realized_missed: bool

    def duration(self, grant: int) -> float:
        """Service seconds at ``grant`` pages (linear speed-up model)."""
        span = self.max_pages - self.min_pages
        if span <= 0:
            return self.base_seconds
        fraction = (grant - self.min_pages) / span
        return self.base_seconds * (1.0 - SPEEDUP * fraction)

    def grant_menu(self) -> Tuple[int, ...]:
        """The grants the oracle considers: min, midpoint, max."""
        mid = (self.min_pages + self.max_pages) // 2
        return tuple(sorted({self.min_pages, mid, self.max_pages}))

    def latest_start(self, grant: int) -> float:
        """Latest admission that still meets the deadline at ``grant``."""
        return self.deadline - self.duration(grant)


@dataclass(frozen=True)
class OracleProblem:
    """A complete clairvoyant instance extracted from one trace."""

    queries: Tuple[OracleQuery, ...]
    #: Pool capacity the oracle packs grants into (max pool the trace
    #: ever saw -- see the module docstring on why max, not min).
    pool_pages: int
    #: Policy that produced the trace (metadata only).
    policy: str
    #: Missed-deadline count of the recorded run (over the same
    #: departed-query population), for regret.
    recorded_misses: int

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @classmethod
    def from_trace(
        cls, trace: TraceLike, pool_pages: Optional[int] = None
    ) -> "OracleProblem":
        """Extract the problem from a recorded broker op stream.

        ``trace`` may be a :class:`~repro.core.broker.BrokerTrace`, a
        bare op list, or a path to a saved trace file.  Only queries
        with a departure record enter the problem (queries still in
        flight at the horizon were never charged to any policy).
        ``pool_pages`` overrides the capacity when the trace carries no
        pool metadata (bare op lists from old recordings).
        """
        meta: Dict[str, object] = {}
        if hasattr(trace, "meta") and isinstance(trace.meta, dict):
            meta = trace.meta
        ops = coerce_trace_ops(trace)
        if not meta:
            for candidate in (trace,):
                # A path: load once for the header metadata too.
                if isinstance(candidate, (str, bytes)) or hasattr(
                    candidate, "__fspath__"
                ):
                    from repro.core.broker import BrokerTrace

                    meta = BrokerTrace.load(candidate).meta

        registered: Dict[int, tuple] = {}
        departures: List[tuple] = []
        pool_candidates: List[int] = []
        if pool_pages is not None:
            pool_candidates.append(int(pool_pages))
        meta_pool = meta.get("total_pages")
        if isinstance(meta_pool, int):
            pool_candidates.append(meta_pool)
        for op in ops:
            kind = op[0]
            if kind == "register":
                _kind, qid, class_name, priority, min_pages, max_pages = op
                registered[qid] = (class_name, priority, min_pages, max_pages)
            elif kind == "departure":
                departures.append(op[1])
            elif kind == "pool":
                pool_candidates.append(int(op[1]))
        if not pool_candidates:
            raise ValueError(
                "trace carries no pool capacity (no meta, no pool ops); "
                "pass pool_pages explicitly"
            )
        pool = max(pool_candidates)

        io_rates = _class_io_rates(departures)
        queries: List[OracleQuery] = []
        recorded_misses = 0
        for record in departures:
            (
                qid,
                class_name,
                missed,
                arrival,
                _departure,
                waiting_time,
                execution_time,
                time_constraint,
                max_demand,
                min_demand,
                operand_io_count,
                _fluctuations,
            ) = record
            if missed:
                recorded_misses += 1
            admitted = execution_time > 0.0
            if admitted:
                base = float(execution_time)
                realized_start = float(arrival) + float(waiting_time)
            else:
                base = _estimate_base_seconds(
                    class_name, operand_io_count, time_constraint, io_rates
                )
                realized_start = None
            min_pages = int(min_demand)
            max_pages = max(int(max_demand), min_pages)
            queries.append(
                OracleQuery(
                    qid=int(qid),
                    class_name=str(class_name),
                    arrival=float(arrival),
                    deadline=float(arrival) + float(time_constraint),
                    min_pages=min_pages,
                    max_pages=max_pages,
                    base_seconds=base,
                    admitted=admitted,
                    realized_start=realized_start,
                    realized_missed=bool(missed),
                )
            )
        # Stable order: by arrival, qid -- the solvers re-sort as needed.
        queries.sort(key=lambda q: (q.arrival, q.qid))
        return cls(
            queries=tuple(queries),
            pool_pages=pool,
            policy=str(meta.get("policy", "?")),
            recorded_misses=recorded_misses,
        )


def _class_io_rates(departures: List[tuple]) -> Dict[str, float]:
    """Mean observed seconds-per-operand-IO per class (admitted runs)."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in departures:
        class_name, execution_time, operand_io_count = (
            record[1],
            record[6],
            record[10],
        )
        if execution_time > 0.0:
            sums[class_name] = sums.get(class_name, 0.0) + (
                float(execution_time) / max(1, int(operand_io_count))
            )
            counts[class_name] = counts.get(class_name, 0) + 1
    rates = {name: sums[name] / counts[name] for name in sums}
    if rates:
        rates["*"] = sum(sums.values()) / sum(counts.values())
    return rates


def _estimate_base_seconds(
    class_name: str,
    operand_io_count: int,
    time_constraint: float,
    io_rates: Dict[str, float],
) -> float:
    """Service-time estimate for a query the run never admitted.

    Class-mean seconds-per-operand-IO scaled by the query's own IO
    count; global mean when the class never ran; the full time
    constraint when nothing ran at all.  Pessimism here is safe: an
    overestimate can only make the oracle serve fewer queries, which
    keeps the reported regret an upper bound on the true gap.
    """
    rate = io_rates.get(str(class_name), io_rates.get("*"))
    if rate is None:
        return float(time_constraint)
    return rate * max(1, int(operand_io_count))
