"""Terminal line charts for experiment series (no plotting deps).

The reproduction harness prints tables; for eyeballing shapes --
crossovers, knees, the concavity of Figure 11 -- an ASCII chart is
often faster to read.  Used by ``python -m repro.experiments --chart``
and available to notebooks/scripts via :func:`render_chart`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Plot glyph per series, cycled in sorted-name order.
MARKERS = "ox+*#@%&"


def render_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    All series share one pair of axes; y starts at 0 (miss ratios and
    utilisations are the typical payload).  Returns a multi-line
    string.
    """
    if not series:
        raise ValueError("no series to chart")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    points = [point for values in series.values() for point in values]
    if not points:
        raise ValueError("series contain no points")
    x_values = [x for x, _y in points]
    y_values = [y for _x, y in points]
    x_low, x_high = min(x_values), max(x_values)
    y_low, y_high = 0.0, max(max(y_values), 1e-12)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _row in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = int(round((x - x_low) / x_span * (width - 1)))
        row = int(round((y - y_low) / y_span * (height - 1)))
        row = height - 1 - row  # origin at the bottom
        existing = grid[row][column]
        grid[row][column] = "∗" if existing not in (" ", marker) else marker

    legend: List[str] = []
    for index, name in enumerate(sorted(series)):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker}={name}")
        values = sorted(series[name])
        # Linear interpolation between sample points for a line feel.
        for (x0, y0), (x1, y1) in zip(values, values[1:]):
            steps = max(
                2, int(abs(x1 - x0) / x_span * (width - 1)) + 1
            )
            for step in range(steps + 1):
                fraction = step / steps
                place(x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction, marker)
        for x, y in values:  # emphasise the actual samples
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_low:.3g}".ljust(width - 8) + f"{x_high:.3g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis)
    lines.append(" " * (label_width + 2) + f"{x_label}  ({y_label}; {', '.join(legend)})")
    return "\n".join(lines)
