"""Output analysis: batch-means intervals, series utilities, reports."""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.output import (
    departure_miss_series,
    miss_ratio_confidence,
    phase_average,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "departure_miss_series",
    "format_series",
    "format_table",
    "miss_ratio_confidence",
    "phase_average",
    "render_chart",
]
