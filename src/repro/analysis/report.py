"""Shared report surfaces: ASCII tables, series, and shootout reports.

The benchmark harness prints each reproduced figure or table through
the formatting helpers so the output can be pasted straight into
``EXPERIMENTS.md`` next to the paper's numbers.

The second half of the module is the **unified shootout report API**:
every policy-comparison harness (the DES ``scenario-shootout``, the
live ``live-shootout``, the fault-plane ``chaos-shootout``) emits one
:class:`ShootoutReport` -- columns declared once as :class:`Column`
records, one :class:`PolicyRow` per policy, free-form pre-rendered
``sections``, and the cross-check verdicts recorded through
:func:`check_fail` / :func:`check_pass`.  Rendering and the
schema-versioned ``--json`` serialisation live here, in one place,
instead of three hand-rolled print paths.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Version of the ``--json`` payload.  Bump on any key rename or
#: semantic change; consumers (CI smoke jobs, ``bench_gate.py``) pin it.
SCHEMA_VERSION = 1


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("row arity does not match headers")
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(
    series: Dict[str, List[Tuple[Number, Number]]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render several named (x, y) series as one aligned table.

    All series must share the same x grid (which figure sweeps do).
    """
    if not series:
        raise ValueError("no series to format")
    names = sorted(series)
    x_grid = [x for x, _y in series[names[0]]]
    for name in names:
        xs = [x for x, _y in series[name]]
        if xs != x_grid:
            raise ValueError(f"series {name!r} has a different x grid")
    headers = [x_label] + [f"{name} {y_label}" for name in names]
    rows = []
    for index, x in enumerate(x_grid):
        rows.append([x] + [series[name][index][1] for name in names])
    return format_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# The unified shootout report API
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Column:
    """One declared report column: stable JSON key + table presentation."""

    #: Stable machine-facing key (snake_case; never renamed without a
    #: :data:`SCHEMA_VERSION` bump).
    key: str
    #: Table header (defaults to the key).
    header: Optional[str] = None
    #: Decimal places in the ASCII table (None: default formatting).
    digits: Optional[int] = None

    @property
    def label(self) -> str:
        return self.header if self.header is not None else self.key

    def cell(self, value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            if self.digits is not None:
                return f"{value:.{self.digits}f}"
        return _format_cell(value)


@dataclass
class PolicyRow:
    """One policy's counters, keyed by :class:`Column` keys."""

    policy: str
    values: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str):
        return self.values.get(key)


def check_fail(report, name: str, detail: str) -> None:
    """Record one failed cross-check verdict on a shootout report.

    Appends the human-readable ``detail`` to ``report.failures`` (the
    rendering path) and a ``{name, ok, detail}`` verdict to
    ``report.checks`` (the JSON path).  Works on any report object with
    those two lists -- the domain reports and :class:`ShootoutReport`
    alike.
    """
    report.failures.append(detail)
    report.checks.append({"name": name, "ok": False, "detail": detail})


def check_pass(report, name: str, detail: str = "") -> None:
    """Record a passed verdict unless ``name`` already failed."""
    if any(check["name"] == name for check in report.checks):
        return
    report.checks.append({"name": name, "ok": True, "detail": detail})


def _jsonify(value):
    """JSON-safe projection: tuples to lists, NaN/inf to None."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value


@dataclass
class ShootoutReport:
    """The one result surface every shootout harness emits.

    ``columns`` are declared once per harness; ``rows`` hold one
    :class:`PolicyRow` per policy; ``sections`` are pre-rendered text
    blocks (per-scenario matrices, per-tenant tables, fault schedules)
    appended below the main table; ``checks`` carries every cross-check
    verdict and ``failures`` the failing details.
    """

    kind: str
    title: str
    columns: List[Column]
    rows: List[PolicyRow]
    meta: Dict[str, Any] = field(default_factory=dict)
    sections: List[str] = field(default_factory=list)
    checks: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    failure_heading: str = "CROSS-CHECK FAILURES"
    success_line: str = "All cross-checks passed."

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def policies(self) -> Tuple[str, ...]:
        return tuple(row.policy for row in self.rows)

    def render(self) -> str:
        """The harness's complete plain-text output."""
        headers = ["policy"] + [column.label for column in self.columns]
        cells = [
            [row.policy]
            + [column.cell(row.get(column.key)) for column in self.columns]
            for row in self.rows
        ]
        parts = [format_table(headers, cells, title=self.title)]
        parts.extend(self.sections)
        if self.failures:
            parts.append(
                f"{self.failure_heading}:\n"
                + "\n".join(f"  - {failure}" for failure in self.failures)
            )
        else:
            parts.append(self.success_line)
        return "\n\n".join(parts)

    def to_json(self) -> Dict[str, Any]:
        """The schema-versioned machine interface of every shootout."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "title": self.title,
            "meta": _jsonify(self.meta),
            "columns": [column.key for column in self.columns],
            "policies": list(self.policies),
            "rows": [
                {"policy": row.policy, **_jsonify(row.values)}
                for row in self.rows
            ],
            "checks": _jsonify(self.checks),
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def save_json(self, path: Union[str, os.PathLike]) -> Path:
        """Write :meth:`to_json` to ``path`` (UTF-8, trailing newline)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
