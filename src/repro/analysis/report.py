"""Plain-text table / series formatting for experiment reports.

The benchmark harness prints each reproduced figure or table through
these helpers so the output can be pasted straight into
``EXPERIMENTS.md`` next to the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

Number = Union[int, float]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("row arity does not match headers")
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(
    series: Dict[str, List[Tuple[Number, Number]]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render several named (x, y) series as one aligned table.

    All series must share the same x grid (which figure sweeps do).
    """
    if not series:
        raise ValueError("no series to format")
    names = sorted(series)
    x_grid = [x for x, _y in series[names[0]]]
    for name in names:
        xs = [x for x, _y in series[name]]
        if xs != x_grid:
            raise ValueError(f"series {name!r} has a different x grid")
    headers = [x_label] + [f"{name} {y_label}" for name in names]
    rows = []
    for index, x in enumerate(x_grid):
        rows.append([x] + [series[name][index][1] for name in names])
    return format_table(headers, rows, title=title)
