"""Statistical post-processing of simulation output.

The paper validates its results with 90% batch-means confidence
intervals on the miss ratio [Sarg76]; :func:`miss_ratio_confidence`
reproduces that computation from a departure log.  The time-series
helpers back the workload-change figures (12-15), which plot miss
ratios per phase of an alternating workload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.monitor import BatchMeans


def miss_ratio_confidence(
    departure_log: Sequence[tuple],
    batch_size: int = 100,
    level: float = 0.90,
    class_name: Optional[str] = None,
) -> Tuple[float, float, float]:
    """Batch-means mean and CI for the miss ratio.

    ``departure_log`` entries are the tuples
    ``(time, class, missed, ...)`` recorded by the Source.  Returns
    ``(mean, low, high)``; with fewer than two full batches the
    interval degenerates to the point estimate.
    """
    batches = BatchMeans(batch_size)
    for entry in departure_log:
        if class_name is not None and entry[1] != class_name:
            continue
        batches.record(1.0 if entry[2] else 0.0)
    mean = batches.mean()
    if batches.num_batches < 2:
        return (mean, mean, mean)
    low, high = batches.confidence_interval(level)
    return (mean, max(0.0, low), min(1.0, high))


def departure_miss_series(
    departure_log: Sequence[tuple],
    window_seconds: float,
    class_name: Optional[str] = None,
) -> List[Tuple[float, float]]:
    """Windowed miss-ratio series ``[(window_centre, miss_ratio)]``."""
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    buckets = {}
    for entry in departure_log:
        time, cls, missed = entry[0], entry[1], entry[2]
        if class_name is not None and cls != class_name:
            continue
        bucket = int(time // window_seconds)
        counts = buckets.setdefault(bucket, [0, 0])
        counts[0] += 1
        counts[1] += 1 if missed else 0
    return [
        ((bucket + 0.5) * window_seconds, counts[1] / counts[0])
        for bucket, counts in sorted(buckets.items())
    ]


def phase_average(
    departure_log: Sequence[tuple],
    phases: Sequence[Tuple[float, float]],
    class_name: Optional[str] = None,
) -> List[float]:
    """Average miss ratio within each ``(start, end)`` phase window.

    The workload-change experiment reports the average miss ratio per
    alternation interval (the numbers along the top of Figures 12-14).
    Phases with no departures yield 0.0.
    """
    results = []
    for start, end in phases:
        served = 0
        missed = 0
        for entry in departure_log:
            time, cls, was_missed = entry[0], entry[1], entry[2]
            if time < start or time >= end:
                continue
            if class_name is not None and cls != class_name:
                continue
            served += 1
            missed += 1 if was_missed else 0
        results.append(missed / served if served else 0.0)
    return results
