"""Workload presets for every experiment in the paper's Section 5."""

from repro.workloads.presets import (
    baseline,
    disk_contention,
    external_sort_workload,
    multiclass,
    scaled_contention,
    workload_changes,
)

__all__ = [
    "baseline",
    "disk_contention",
    "external_sort_workload",
    "multiclass",
    "scaled_contention",
    "workload_changes",
]
