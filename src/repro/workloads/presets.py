"""Experiment configurations (Tables 6 and 8, Sections 5.1-5.7).

Every preset accepts a ``scale`` parameter implementing the paper's own
scalability methodology (Section 5.7): relation sizes and the buffer
pool scale by ``scale`` while arrival rates scale by ``1/scale``, which
keeps resource utilisations level.  The paper validated that its
small-scale runs (``scale = 0.1``) show "essentially the same
qualitative algorithm behaviour" as the full-size ones -- the test and
benchmark suites rely on exactly that property to stay affordable.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.rtdbs.config import (
    EXTERNAL_SORT,
    HASH_JOIN,
    DatabaseParams,
    PMMParams,
    QueryClass,
    RelationGroup,
    ResourceParams,
    SimulationConfig,
    WorkloadParams,
)


def _scaled_range(size_range: Tuple[int, int], scale: float) -> Tuple[int, int]:
    low, high = size_range
    return (max(1, int(round(low * scale))), max(1, int(round(high * scale))))


def _resources(num_disks: int, scale: float, cylinders: int = 1500) -> ResourceParams:
    return ResourceParams(
        num_disks=num_disks,
        memory_pages=max(8, int(round(2560 * scale))),
        num_cylinders=max(100, int(round(cylinders * max(1.0, scale)))),
    )


# Table 6 / Table 8 relation groups -------------------------------------
def _medium_groups(scale: float) -> Tuple[RelationGroup, ...]:
    """Groups 1 and 2: the baseline (Medium) join operands."""
    return (
        RelationGroup(rel_per_disk=3, size_range=_scaled_range((600, 1800), scale)),
        RelationGroup(rel_per_disk=3, size_range=_scaled_range((3000, 9000), scale)),
    )


def _small_groups(scale: float) -> Tuple[RelationGroup, ...]:
    """Groups 3 and 4: the Small class's join operands (Table 8)."""
    return (
        RelationGroup(rel_per_disk=3, size_range=_scaled_range((50, 150), scale)),
        RelationGroup(rel_per_disk=3, size_range=_scaled_range((250, 750), scale)),
    )


# ----------------------------------------------------------------------
def baseline(
    arrival_rate: float = 0.06,
    scale: float = 1.0,
    seed: int = 1,
    duration: float = 36_000.0,
) -> SimulationConfig:
    """Section 5.1: one class of hash joins, 10 disks, memory-bound.

    ``arrival_rate`` is in queries/second at full scale (the paper
    sweeps 0.04 to 0.08) and is automatically rescaled by ``1/scale``.
    """
    return SimulationConfig(
        database=DatabaseParams(groups=_medium_groups(scale)),
        workload=WorkloadParams(
            classes=(
                QueryClass(
                    name="Medium",
                    query_type=HASH_JOIN,
                    rel_groups=(0, 1),
                    arrival_rate=arrival_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
            )
        ),
        resources=_resources(num_disks=10, scale=scale),
        pmm=PMMParams(),
        seed=seed,
        duration=duration,
    ).validate()


def disk_contention(
    arrival_rate: float = 0.06,
    scale: float = 1.0,
    seed: int = 1,
    duration: float = 36_000.0,
) -> SimulationConfig:
    """Section 5.2: the baseline with only 6 disks (moderate disk
    contention; memory remains the bottleneck)."""
    config = baseline(arrival_rate=arrival_rate, scale=scale, seed=seed, duration=duration)
    return config.with_overrides(resources=_resources(num_disks=6, scale=scale)).validate()


def workload_changes(
    scale: float = 1.0,
    seed: int = 1,
    duration: float = 86_000.0,
    medium_rate: float = 0.07,
    small_rate: float = 2.8,
) -> SimulationConfig:
    """Section 5.3 (Table 8): alternating Small / Medium hash joins.

    Both classes are defined here; the experiment driver toggles their
    arrival rates every 2-5 simulated hours via ``Source.set_rate``.
    """
    groups = _medium_groups(scale) + _small_groups(scale)
    return SimulationConfig(
        database=DatabaseParams(groups=groups),
        workload=WorkloadParams(
            classes=(
                QueryClass(
                    name="Medium",
                    query_type=HASH_JOIN,
                    rel_groups=(0, 1),
                    arrival_rate=medium_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
                QueryClass(
                    name="Small",
                    query_type=HASH_JOIN,
                    rel_groups=(2, 3),
                    arrival_rate=small_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
            )
        ),
        resources=_resources(num_disks=6, scale=scale),
        pmm=PMMParams(),
        seed=seed,
        duration=duration,
    ).validate()


def external_sort_workload(
    arrival_rate: float = 0.08,
    scale: float = 1.0,
    seed: int = 1,
    duration: float = 36_000.0,
) -> SimulationConfig:
    """Section 5.5: the baseline with external sorts instead of joins.

    Each query sorts one relation with ||R|| in [600, 1800] pages; the
    paper sweeps arrival rates 0.04 to 0.12 (sorts are lighter than
    joins, so the sweep extends further)."""
    return SimulationConfig(
        database=DatabaseParams(groups=_medium_groups(scale)),
        workload=WorkloadParams(
            classes=(
                QueryClass(
                    name="Sort",
                    query_type=EXTERNAL_SORT,
                    rel_groups=(0,),
                    arrival_rate=arrival_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
            )
        ),
        resources=_resources(num_disks=10, scale=scale),
        pmm=PMMParams(),
        seed=seed,
        duration=duration,
    ).validate()


def multiclass(
    small_rate: float = 0.4,
    medium_rate: float = 0.065,
    scale: float = 1.0,
    seed: int = 1,
    duration: float = 36_000.0,
) -> SimulationConfig:
    """Section 5.6: Small and Medium classes active together, 12 disks.

    The paper fixes the Medium rate at 0.065 queries/second and sweeps
    the Small rate from 0 to 1.2."""
    groups = _medium_groups(scale) + _small_groups(scale)
    return SimulationConfig(
        database=DatabaseParams(groups=groups),
        workload=WorkloadParams(
            classes=(
                QueryClass(
                    name="Medium",
                    query_type=HASH_JOIN,
                    rel_groups=(0, 1),
                    arrival_rate=medium_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
                QueryClass(
                    name="Small",
                    query_type=HASH_JOIN,
                    rel_groups=(2, 3),
                    arrival_rate=small_rate / scale,
                    slack_range=(2.5, 7.5),
                ),
            )
        ),
        resources=_resources(num_disks=12, scale=scale),
        pmm=PMMParams(),
        seed=seed,
        duration=duration,
    ).validate()


def scaled_contention(
    arrival_rate: float = 0.06,
    factor: float = 10.0,
    base_scale: float = 1.0,
    seed: int = 1,
    duration: float = 36_000.0,
) -> SimulationConfig:
    """Section 5.7: the disk-contention setup scaled up by ``factor``
    (sizes and memory x factor, arrival rates / factor)."""
    return disk_contention(
        arrival_rate=arrival_rate, scale=base_scale * factor, seed=seed, duration=duration
    )
