"""Memory-management policies: the PMM adapter and static baselines.

Table 5 of the paper lists the algorithms compared: **Max**,
**MinMax-N** (MinMax when N is unbounded), **Proportional-N**
(Proportional when unbounded), and **PMM** itself, which dynamically
chooses between Max and MinMax-N.  All of them implement the
:class:`~repro.policies.base.MemoryPolicy` interface consumed by the
buffer manager.
"""

from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.policies.registry import (
    DEFAULT_POLICIES,
    available_policies,
    make_policy,
    register_policy,
)
from repro.policies.static import MaxPolicy, MinMaxPolicy, ProportionalPolicy

__all__ = [
    "BatchStats",
    "DEFAULT_POLICIES",
    "DepartureRecord",
    "MaxPolicy",
    "MemoryPolicy",
    "MinMaxPolicy",
    "ProportionalPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
