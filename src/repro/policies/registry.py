"""The single policy registry: spec string -> policy factory.

Every component that names a policy -- the simulator
(:class:`~repro.rtdbs.system.RTDBSystem`), the experiment engine's
:class:`~repro.experiments.runner.RunSpec`, the scenario shootout, the
fuzz scripts, the live serving layer, and the examples -- resolves it
here.  A spec is a compact case-insensitive string:

=================  ===================================================
``max``            Max allocation or nothing, in ED order
``minmax``         MinMax with no MPL limit
``minmax-N``       MinMax admitting at most N queries (e.g. ``minmax-10``)
``proportional``   Proportional division, no MPL limit
``proportional-N`` Proportional with an MPL limit of N
``pmm``            the paper's adaptive PMM (needs/accepts ``pmm_params``)
``fairpmm``        PMM with per-class fairness goals (``goals=...``)
=================  ===================================================

``register_policy`` adds project-local policies to the same namespace,
so experiment CLIs and the live server pick them up with no further
wiring.  Parametric families (the ``name-N`` forms) register a prefix
handler via ``register_policy("name-", factory)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.policies.base import MemoryPolicy
from repro.policies.static import MaxPolicy, MinMaxPolicy, ProportionalPolicy

#: Factories for exact specs: ``name -> factory(pmm_params, **kwargs)``.
_EXACT: Dict[str, Callable[..., MemoryPolicy]] = {}
#: Factories for parametric specs: ``prefix -> factory(N, pmm_params, **kwargs)``.
_PARAMETRIC: Dict[str, Callable[..., MemoryPolicy]] = {}

#: The canonical policy set of every shootout: all of Table 5 plus the
#: adaptive PMM and its fairness extension.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "max",
    "minmax",
    "minmax-4",
    "proportional",
    "pmm",
    "fairpmm",
)


def register_policy(spec: str, factory: Callable[..., MemoryPolicy]) -> None:
    """Register a factory under an exact spec or a ``name-`` prefix.

    Exact factories are called ``factory(pmm_params=..., **kwargs)``;
    prefix factories (spec ends with ``-``) are called
    ``factory(n, pmm_params=..., **kwargs)`` with the integer suffix.
    """
    token = spec.strip().lower()
    if not token:
        raise ValueError("policy spec must be non-empty")
    if token.endswith("-"):
        _PARAMETRIC[token] = factory
    else:
        _EXACT[token] = factory


def available_policies() -> Tuple[str, ...]:
    """Every registered exact spec plus the parametric prefixes."""
    return tuple(sorted(_EXACT)) + tuple(f"{p}N" for p in sorted(_PARAMETRIC))


def make_policy(spec: str, pmm_params=None, **kwargs) -> MemoryPolicy:
    """Build a policy from its spec string (the single construction path).

    ``pmm_params`` (a :class:`repro.rtdbs.config.PMMParams`) seeds the
    adaptive policies and defaults when omitted; extra keyword
    arguments are forwarded to the factory (e.g. ``goals`` for
    ``fairpmm``).
    """
    token = spec.strip().lower()
    factory = _EXACT.get(token)
    if factory is not None:
        return factory(pmm_params=pmm_params, **kwargs)
    head, _sep, tail = token.partition("-")
    if tail:
        parametric = _PARAMETRIC.get(f"{head}-")
        if parametric is not None:
            try:
                n = int(tail)
            except ValueError:
                raise ValueError(
                    f"policy spec {spec!r}: expected an integer after "
                    f"{head!r}-, got {tail!r}"
                ) from None
            return parametric(n, pmm_params=pmm_params, **kwargs)
    raise ValueError(
        f"unknown policy spec {spec!r}; available: {', '.join(available_policies())}"
    )


# ----------------------------------------------------------------------
# built-in registrations (Table 5 + PMM variants)
# ----------------------------------------------------------------------
def _make_pmm(pmm_params=None, **kwargs):
    from repro.core.pmm import PMM
    from repro.rtdbs.config import PMMParams

    return PMM(pmm_params if pmm_params is not None else PMMParams(), **kwargs)


def _make_fairpmm(pmm_params=None, **kwargs):
    from repro.core.fairness import FairPMM
    from repro.rtdbs.config import PMMParams

    return FairPMM(pmm_params if pmm_params is not None else PMMParams(), **kwargs)


register_policy("max", lambda pmm_params=None, **kw: MaxPolicy(**kw))
register_policy("minmax", lambda pmm_params=None, **kw: MinMaxPolicy(**kw))
register_policy("minmax-", lambda n, pmm_params=None, **kw: MinMaxPolicy(n, **kw))
register_policy("proportional", lambda pmm_params=None, **kw: ProportionalPolicy(**kw))
register_policy(
    "proportional-", lambda n, pmm_params=None, **kw: ProportionalPolicy(n, **kw)
)
register_policy("pmm", _make_pmm)
register_policy("fairpmm", _make_fairpmm)
