"""The static baseline algorithms of Table 5.

* ``Max`` -- always the Max strategy (no MPL limit beyond memory).
* ``MinMax-N`` -- admits the N most urgent queries under the two-pass
  MinMax division; ``MinMax`` (N unbounded) admits as many queries as
  memory allows.
* ``Proportional-N`` / ``Proportional`` -- like MinMax-N but divides
  memory proportionally to maximum demands (with the minimum floor).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.allocation import (
    QueryDemand,
    allocate_max,
    allocate_minmax,
    allocate_proportional,
)
from repro.policies.base import MemoryPolicy


class MaxPolicy(MemoryPolicy):
    """Maximum allocation or nothing, in ED order."""

    name = "Max"

    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        return allocate_max(demands, memory)


class MinMaxPolicy(MemoryPolicy):
    """MinMax-N; ``mpl_limit=None`` gives the unbounded MinMax."""

    def __init__(self, mpl_limit: Optional[int] = None):
        if mpl_limit is not None and mpl_limit < 1:
            raise ValueError(f"MPL limit must be >= 1, got {mpl_limit}")
        self.mpl_limit = mpl_limit
        self.name = "MinMax" if mpl_limit is None else f"MinMax-{mpl_limit}"

    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        return allocate_minmax(demands, memory, self.mpl_limit)

    @property
    def target_mpl(self) -> Optional[int]:
        return self.mpl_limit


class ProportionalPolicy(MemoryPolicy):
    """Proportional-N; ``mpl_limit=None`` gives unbounded Proportional."""

    def __init__(self, mpl_limit: Optional[int] = None):
        if mpl_limit is not None and mpl_limit < 1:
            raise ValueError(f"MPL limit must be >= 1, got {mpl_limit}")
        self.mpl_limit = mpl_limit
        self.name = "Proportional" if mpl_limit is None else f"Proportional-{mpl_limit}"

    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        return allocate_proportional(demands, memory, self.mpl_limit)

    @property
    def target_mpl(self) -> Optional[int]:
        return self.mpl_limit


def make_policy(spec: str, pmm_params=None, **kwargs) -> MemoryPolicy:
    """Build a policy from a compact spec string.

    Back-compat shim: the construction logic lives in the single
    registry of :mod:`repro.policies.registry` (import site of record:
    ``repro.policies.make_policy``).
    """
    from repro.policies.registry import make_policy as _make

    return _make(spec, pmm_params=pmm_params, **kwargs)
