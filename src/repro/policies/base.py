"""The policy protocol between the buffer manager and an algorithm.

A memory policy sees the world through two channels:

* :meth:`MemoryPolicy.allocate` is called whenever the query population
  changes (arrival, departure) or the policy itself requests it; it
  receives the present queries in ED order and returns page grants.
* Feedback: :meth:`MemoryPolicy.on_departure` streams per-query
  :class:`DepartureRecord` facts, and :meth:`MemoryPolicy.on_batch`
  delivers a :class:`BatchStats` summary after every ``SampleSize``
  departures.  Static baselines ignore both; PMM adapts on them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.allocation import QueryDemand


@dataclass(frozen=True)
class DepartureRecord:
    """Facts about one query leaving the system (done or expired)."""

    qid: int
    class_name: str
    #: True when the query failed to complete by its deadline.
    missed: bool
    arrival: float
    departure: float
    #: Seconds spent waiting for admission (up to first memory grant,
    #: or the whole residence time if never admitted).
    waiting_time: float
    #: Seconds between first admission and departure (0 if never
    #: admitted).
    execution_time: float
    #: Deadline minus arrival.
    time_constraint: float
    #: Maximum memory demand, pages (workload characteristic 1).
    max_demand: int
    #: Minimum memory demand, pages.
    min_demand: int
    #: I/Os needed to read the operand relation(s) (characteristic 2).
    operand_io_count: int
    #: Number of memory-allocation changes experienced while running
    #: (Figure 7's metric).
    memory_fluctuations: int = 0


@dataclass(frozen=True)
class BatchStats:
    """System summary over the last ``SampleSize`` departures."""

    #: Simulation time at the batch boundary.
    time: float
    #: Departures in the batch (completed + missed).
    served: int
    #: Deadline misses in the batch.
    missed: int
    #: Time-averaged number of admitted queries over the batch window.
    realized_mpl: float
    #: CPU utilisation over the batch window.
    cpu_utilization: float
    #: Per-disk utilisations over the batch window.
    disk_utilizations: Tuple[float, ...] = field(default_factory=tuple)
    #: Shared buffer-pool hit ratio over the batch window (0.0 when the
    #: host measures none -- the DES buffer manager and the live
    #: :class:`~repro.serve.dataplane.LiveBufferPool` both supply it).
    pool_hit_ratio: float = 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of the batch that missed its deadline."""
        return self.missed / self.served if self.served else 0.0

    @property
    def bottleneck_utilization(self) -> float:
        """Utilisation of the most heavily loaded resource."""
        candidates = (self.cpu_utilization,) + tuple(self.disk_utilizations)
        return max(candidates)

    @property
    def all_below(self) -> float:
        """Largest utilisation -- alias used by adaptation condition 2."""
        return self.bottleneck_utilization


class MemoryPolicy(abc.ABC):
    """Admission control + memory allocation, pluggable into the RTDBS."""

    #: Human-readable policy name (used in reports and figures).
    name: str = "policy"

    @abc.abstractmethod
    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        """Return pages per query id; ``demands`` arrive in ED order.

        ``now`` is the current simulation time; policies that reorder
        by remaining slack (the fairness extension) use it, the rest
        ignore it."""

    # -- feedback hooks (no-ops for static policies) --------------------
    def on_departure(self, record: DepartureRecord) -> None:
        """Observe one departure (completed or expired)."""

    def on_batch(self, stats: BatchStats) -> bool:
        """Observe a batch summary; return True to force reallocation."""
        return False

    def reset(self) -> None:
        """Forget all adaptive state (start of a fresh run)."""

    @property
    def target_mpl(self) -> Optional[int]:
        """Current MPL limit, if the policy imposes one."""
        return None

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return self.name
