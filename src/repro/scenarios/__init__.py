"""Generated workload scenarios + the invariant fuzz surface.

See ``README.md`` in this directory for the generator families, the
invariants checked, and how to reproduce a failing scenario from its
coordinates or content hash.
"""

from repro.scenarios.generator import (
    FAMILIES,
    Scenario,
    ScenarioGenerator,
    scenario_hash,
)

__all__ = [
    "FAMILIES",
    "Scenario",
    "ScenarioGenerator",
    "scenario_hash",
]
