"""Seeded, reproducible scenario generation.

The paper evaluates a handful of hand-built workloads; the ROADMAP
demands "as many scenarios as you can imagine".  This module composes
randomized-but-reproducible :class:`~repro.rtdbs.config.SimulationConfig`\\ s
from a single generator seed, organised into **families** that each
stress a different axis of the memory-management problem:

``mix``
    Arbitrary query-class mixes -- 1-4 classes of hash joins and
    external sorts over heterogeneous relation groups, with per-class
    rates, slack ranges, and memory sizes drawn at random.
``bursty``
    On/off MMPP-style arrivals: each class alternates exponential
    high-rate bursts and quiet spells (``ArrivalModulation`` with
    ``stochastic=True``), the workload shape Poisson-tuned policies
    have never been plotted against.
``phases``
    Deterministic phase-shifting arrivals -- rates step through a
    cycle of factors on a fixed period, the moving-target regime of
    the paper's Section 5.3 generalised.
``multitenant``
    Several tenants, each with its own relation groups and query
    class, sharing a small disk farm -- with temp space placed locally
    or round-robin.
``heavytail``
    A mix of tiny and huge operands in one workload, so minimum and
    maximum memory demands differ by orders of magnitude.
``memorythief``
    Pool-pressure-sensitive workloads: a tight buffer pool and
    moderate-rate classes whose demands nearly fill it, built to run
    under an external "non-query memory consumer" that steals pool
    capacity mid-run (the MSFT throughput paper's compilation-memory
    thief, injected live by :mod:`repro.serve.faults`).

Every scenario is deterministic in ``(generator_seed, family, index)``
and is identified by a **content hash** over the walked config record
(the same canonical projection the experiment engine's cache keys use),
so a scenario plugs straight into the parallel runner's persistent
cache and any failure reproduces from its coordinates alone:

    PYTHONPATH=src python scripts/scenario_fuzz.py \\
        --seed <S> --family <F> --index <I> --policy <P>

Scenarios are sized for speed ("fast scale"): tens of pages of memory,
relations of tens-to-hundreds of pages, horizons of about a simulated
minute -- large enough to exercise admission, adaptation, spooling and
aborts, small enough that a 200-scenario fuzz sweep stays in tier-1.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from hashlib import sha256
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import (
    ExperimentSettings,
    RunSpec,
    canonical_record,
)
from repro.rtdbs.config import (
    EXTERNAL_SORT,
    HASH_JOIN,
    ArrivalModulation,
    DatabaseParams,
    QueryClass,
    RelationGroup,
    ResourceParams,
    SimulationConfig,
    WorkloadParams,
)
from repro.rtdbs.invariants import INVARIANTS_SIGNATURE, attach_invariants

#: The generator families, in round-robin batch order.
FAMILIES = ("mix", "bursty", "phases", "multitenant", "heavytail", "memorythief")


def scenario_hash(config: SimulationConfig) -> str:
    """Content hash of a scenario's full parameter record.

    Stable across processes, platforms and ``PYTHONHASHSEED`` (the same
    canonical walk the experiment engine keys its cache with).
    """
    return sha256(
        repr(("repro-scenario", canonical_record(config))).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class Scenario:
    """One generated workload, addressable by coordinates or hash."""

    family: str
    index: int
    generator_seed: int
    config: SimulationConfig

    @property
    def name(self) -> str:
        """Human-readable coordinates: ``family/seed/index``."""
        return f"{self.family}/{self.generator_seed}/{self.index}"

    @property
    def content_hash(self) -> str:
        """Content hash of the scenario's config (see :func:`scenario_hash`)."""
        return scenario_hash(self.config)

    def settings(self) -> ExperimentSettings:
        """Engine settings matching this scenario's own horizon/seed."""
        return ExperimentSettings(
            scale=1.0,
            duration=self.config.duration,
            seed=self.config.seed,
        )

    def run_spec(self, policy: str, invariants: bool = True) -> RunSpec:
        """A cacheable grid point for the parallel experiment engine."""
        return RunSpec(
            config=self.config,
            policy=policy,
            settings=self.settings(),
            setup=attach_invariants if invariants else None,
            setup_signature=INVARIANTS_SIGNATURE if invariants else None,
        )

    def repro_command(self, policy: Optional[str] = None) -> str:
        """A shell line that re-runs exactly this scenario."""
        line = (
            "PYTHONPATH=src python scripts/scenario_fuzz.py "
            f"--seed {self.generator_seed} --family {self.family} "
            f"--index {self.index}"
        )
        if policy is not None:
            line += f" --policy {policy}"
        return line


class ScenarioGenerator:
    """Deterministic scenario factory over ``(seed, family, index)``.

    Every scenario gets its own ``numpy`` child generator derived from
    ``SeedSequence(entropy=seed, spawn_key=(crc32(family), index))`` --
    the same keyed-children discipline :class:`repro.sim.rng.Streams`
    uses -- so scenarios are independent and individually addressable.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def generate(self, family: str, index: int) -> Scenario:
        """The scenario at ``(family, index)`` under this generator seed."""
        try:
            builder = getattr(self, f"_build_{family}")
        except AttributeError:
            raise ValueError(
                f"unknown scenario family {family!r}; choose from {FAMILIES}"
            ) from None
        rng = self._rng(family, index)
        config = builder(rng).validate()
        return Scenario(family=family, index=int(index), generator_seed=self.seed, config=config)

    def batch(
        self, count: int, families: Optional[Sequence[str]] = None
    ) -> List[Scenario]:
        """``count`` scenarios, round-robin over ``families``."""
        if count < 0:
            raise ValueError(f"negative scenario count: {count}")
        chosen = tuple(families) if families else FAMILIES
        for family in chosen:
            if family not in FAMILIES:
                raise ValueError(
                    f"unknown scenario family {family!r}; choose from {FAMILIES}"
                )
        return [
            self.generate(chosen[i % len(chosen)], i // len(chosen))
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    def _rng(self, family: str, index: int) -> np.random.Generator:
        key = zlib.crc32(family.encode("utf-8"))
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(key, int(index))
        )
        return np.random.default_rng(sequence)

    # -- shared draws ---------------------------------------------------
    @staticmethod
    def _size_range(rng: np.random.Generator, low: int, high: int) -> Tuple[int, int]:
        """A random relation-size interval within ``[low, high]`` pages."""
        start = int(rng.integers(low, max(low + 1, high // 2)))
        end = int(rng.integers(start, high + 1))
        return (start, max(start, end))

    @staticmethod
    def _slack_range(rng: np.random.Generator) -> Tuple[float, float]:
        low = round(float(rng.uniform(1.1, 3.5)), 2)
        high = round(low + float(rng.uniform(0.5, 4.5)), 2)
        return (low, high)

    @staticmethod
    def _rate(rng: np.random.Generator, low_log10: float, high_log10: float) -> float:
        """A rate drawn log-uniformly, rounded for stable float reprs."""
        return round(float(10.0 ** rng.uniform(low_log10, high_log10)), 4)

    @staticmethod
    def _resources(
        rng: np.random.Generator, num_disks: int, memory_low: int = 48,
        memory_high: int = 256,
    ) -> ResourceParams:
        return ResourceParams(
            num_disks=num_disks,
            memory_pages=int(rng.integers(memory_low, memory_high + 1)),
            num_cylinders=int(rng.integers(300, 1501)),
        )

    def _common(self, rng: np.random.Generator) -> Tuple[int, float, str]:
        """(sim seed, duration, temp placement) shared by all families."""
        sim_seed = int(rng.integers(0, 2**31 - 1))
        duration = round(float(rng.uniform(30.0, 70.0)), 1)
        placement = "round_robin" if rng.random() < 0.3 else "local"
        return sim_seed, duration, placement

    def _classes(
        self,
        rng: np.random.Generator,
        count: int,
        num_groups: int,
        rate_log10: Tuple[float, float],
        modulation=None,
    ) -> Tuple[QueryClass, ...]:
        """``count`` random classes over ``num_groups`` relation groups."""
        classes = []
        for i in range(count):
            query_type = HASH_JOIN if rng.random() < 0.6 else EXTERNAL_SORT
            if query_type == HASH_JOIN:
                if num_groups >= 2:
                    first, second = (
                        int(g) for g in rng.choice(num_groups, size=2, replace=False)
                    )
                else:
                    first = second = 0
                rel_groups: Tuple[int, ...] = (first, second)
            else:
                rel_groups = (int(rng.integers(0, num_groups)),)
            classes.append(
                QueryClass(
                    name=f"C{i}",
                    query_type=query_type,
                    rel_groups=rel_groups,
                    arrival_rate=self._rate(rng, *rate_log10),
                    slack_range=self._slack_range(rng),
                    modulation=modulation(rng) if modulation is not None else None,
                )
            )
        return tuple(classes)

    # -- families -------------------------------------------------------
    def _build_mix(self, rng: np.random.Generator) -> SimulationConfig:
        """Arbitrary query-class mixes over heterogeneous relations."""
        num_groups = int(rng.integers(2, 5))
        groups = tuple(
            RelationGroup(
                rel_per_disk=int(rng.integers(1, 4)),
                size_range=self._size_range(rng, 8, 160),
            )
            for _ in range(num_groups)
        )
        classes = self._classes(
            rng,
            count=int(rng.integers(1, 4)),
            num_groups=num_groups,
            rate_log10=(-0.9, 0.35),
        )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=groups),
            workload=WorkloadParams(classes=classes),
            resources=self._resources(rng, num_disks=int(rng.integers(1, 5))),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )

    def _build_bursty(self, rng: np.random.Generator) -> SimulationConfig:
        """On/off MMPP bursts layered over the Poisson arrivals."""

        def modulation(r: np.random.Generator) -> ArrivalModulation:
            return ArrivalModulation(
                factors=(
                    round(float(r.uniform(1.5, 4.0)), 3),
                    round(float(r.uniform(0.0, 0.3)), 3),
                ),
                dwell_seconds=(
                    round(float(r.uniform(3.0, 12.0)), 2),
                    round(float(r.uniform(3.0, 15.0)), 2),
                ),
                stochastic=True,
            )

        num_groups = int(rng.integers(1, 4))
        groups = tuple(
            RelationGroup(
                rel_per_disk=int(rng.integers(1, 4)),
                size_range=self._size_range(rng, 8, 120),
            )
            for _ in range(num_groups)
        )
        classes = self._classes(
            rng,
            count=int(rng.integers(1, 3)),
            num_groups=num_groups,
            rate_log10=(-1.1, 0.1),
            modulation=modulation,
        )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=groups),
            workload=WorkloadParams(classes=classes),
            resources=self._resources(rng, num_disks=int(rng.integers(1, 4))),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )

    def _build_phases(self, rng: np.random.Generator) -> SimulationConfig:
        """Deterministic phase-shifting rates (Section 5.3 generalised)."""

        def modulation(r: np.random.Generator) -> ArrivalModulation:
            phases = int(r.integers(2, 5))
            factors = tuple(
                round(float(r.uniform(0.0, 2.5)), 3) for _ in range(phases)
            )
            if max(factors) < 0.5:  # keep at least one lively phase
                factors = factors[:-1] + (1.0,)
            return ArrivalModulation(
                factors=factors,
                dwell_seconds=(round(float(r.uniform(5.0, 20.0)), 2),),
                stochastic=False,
            )

        num_groups = int(rng.integers(1, 4))
        groups = tuple(
            RelationGroup(
                rel_per_disk=int(rng.integers(1, 4)),
                size_range=self._size_range(rng, 8, 120),
            )
            for _ in range(num_groups)
        )
        classes = self._classes(
            rng,
            count=int(rng.integers(1, 3)),
            num_groups=num_groups,
            rate_log10=(-1.0, 0.2),
            modulation=modulation,
        )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=groups),
            workload=WorkloadParams(classes=classes),
            resources=self._resources(rng, num_disks=int(rng.integers(1, 4))),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )

    def _build_multitenant(self, rng: np.random.Generator) -> SimulationConfig:
        """Per-tenant relation groups sharing a small disk farm."""
        tenants = int(rng.integers(2, 5))
        groups: List[RelationGroup] = []
        classes: List[QueryClass] = []
        for tenant in range(tenants):
            base = len(groups)
            join = rng.random() < 0.7
            groups.append(
                RelationGroup(
                    rel_per_disk=int(rng.integers(1, 3)),
                    size_range=self._size_range(rng, 6, 90),
                )
            )
            if join:
                groups.append(
                    RelationGroup(
                        rel_per_disk=int(rng.integers(1, 3)),
                        size_range=self._size_range(rng, 20, 150),
                    )
                )
            classes.append(
                QueryClass(
                    name=f"tenant{tenant}",
                    query_type=HASH_JOIN if join else EXTERNAL_SORT,
                    rel_groups=(base, base + 1) if join else (base,),
                    arrival_rate=self._rate(rng, -1.1, -0.1),
                    slack_range=self._slack_range(rng),
                )
            )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=tuple(groups)),
            workload=WorkloadParams(classes=tuple(classes)),
            resources=self._resources(rng, num_disks=int(rng.integers(2, 7))),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )

    def _build_heavytail(self, rng: np.random.Generator) -> SimulationConfig:
        """Tiny and huge operands in one workload (demand skew)."""
        groups = (
            RelationGroup(
                rel_per_disk=int(rng.integers(2, 5)),
                size_range=self._size_range(rng, 4, 16),
            ),
            RelationGroup(
                rel_per_disk=1,
                size_range=self._size_range(rng, 200, 600),
            ),
        )
        tiny_type = HASH_JOIN if rng.random() < 0.5 else EXTERNAL_SORT
        tiny = QueryClass(
            name="tiny",
            query_type=tiny_type,
            rel_groups=(0, 0) if tiny_type == HASH_JOIN else (0,),
            arrival_rate=self._rate(rng, -0.5, 0.45),
            slack_range=self._slack_range(rng),
        )
        huge_type = HASH_JOIN if rng.random() < 0.5 else EXTERNAL_SORT
        huge = QueryClass(
            name="huge",
            query_type=huge_type,
            rel_groups=(0, 1) if huge_type == HASH_JOIN else (1,),
            arrival_rate=self._rate(rng, -1.5, -0.7),
            slack_range=self._slack_range(rng),
        )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=groups),
            workload=WorkloadParams(classes=(tiny, huge)),
            resources=self._resources(
                rng, num_disks=int(rng.integers(1, 4)), memory_low=64, memory_high=384
            ),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )

    def _build_memorythief(self, rng: np.random.Generator) -> SimulationConfig:
        """Tight pools that an external consumer will squeeze further.

        The pool is small relative to the operand sizes, so when the
        live fault plane's memory thief shrinks it mid-run, the
        policies genuinely have to redistribute (a roomy pool would
        absorb the theft without any policy seeing it).  As a DES
        scenario it is simply a high-pressure mix; the thief itself is
        a live-plane fault, not a config parameter.
        """
        num_groups = int(rng.integers(2, 4))
        groups = tuple(
            RelationGroup(
                rel_per_disk=int(rng.integers(1, 3)),
                size_range=self._size_range(rng, 24, 120),
            )
            for _ in range(num_groups)
        )
        classes = self._classes(
            rng,
            count=int(rng.integers(2, 4)),
            num_groups=num_groups,
            rate_log10=(-0.7, 0.2),
        )
        sim_seed, duration, placement = self._common(rng)
        return SimulationConfig(
            database=DatabaseParams(groups=groups),
            workload=WorkloadParams(classes=classes),
            resources=self._resources(
                rng,
                num_disks=int(rng.integers(2, 5)),
                memory_low=32,
                memory_high=96,
            ),
            seed=sim_seed,
            duration=duration,
            temp_placement=placement,
        )
