"""The host-agnostic device core: one disk model, any clock.

The paper's results hinge on its device model -- Earliest-Deadline
disk queues with an elevator tie-break among equal priorities, a small
(256-KByte) per-disk prefetch cache, sequential-stream tracking that
makes scan continuations pay pure transfer time, and an LRU data cache
over the buffer pool's unreserved pages.  Two hosts need that model:
the discrete-event simulator (:mod:`repro.rtdbs.disk`,
:mod:`repro.rtdbs.buffer_manager`) and the live serving layer
(:mod:`repro.serve.dataplane`).  This module holds the *pure* logic
they share -- no simulator clock, no event loop, no wall time:

* :class:`PrefetchCache` -- the per-disk LRU page cache (reads fully
  covered by recently transferred pages cost no arm time);
* :class:`LRUDataCache` -- the buffer pool's page-granular LRU region
  with a dynamically adjustable capacity;
* :class:`DeviceCore` -- one disk's physical state (head position,
  sweep direction, bounded sequential-stream tails, prefetch cache)
  plus the ``Seek + RotateDelay + Transfer`` pricing of Section 4.2
  and the ED-queue selection with the exact elevator tie-break.

Hosts wrap a :class:`DeviceCore` in a thin time-stamped adapter: the
DES adapter schedules completion events on the simulator clock, the
live adapter hands arm occupancy to asyncio tasks -- but the decision
of *which* request runs next, *what* it costs, and *which* pages are
cached afterwards is taken here, identically, once.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import List, Optional, Sequence, Tuple

READ = "read"
WRITE = "write"


class PrefetchCache:
    """LRU cache of recently transferred pages (one per disk).

    Backed by a plain insertion-ordered dict: recency refresh is a
    delete-and-reinsert, eviction pops from the iteration front.  Plain
    dicts beat ``OrderedDict`` on every operation this hot path uses.
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_pages
        self._pages: dict = {}
        self.hits = 0
        self.misses = 0

    def contains_all(self, start_page: int, npages: int) -> bool:
        """True when every page of the range is cached (a free read)."""
        pages = self._pages
        for page in range(start_page, start_page + npages):
            if page not in pages:
                return False
        return True

    def touch(self, start_page: int, npages: int) -> None:
        """Record a hit: refresh the pages' recency."""
        self.hits += 1
        pages = self._pages
        pop = pages.pop
        for page in range(start_page, start_page + npages):
            pop(page)
            pages[page] = None

    def insert(self, start_page: int, npages: int) -> None:
        """Record a transfer: install the pages, evicting LRU ones.

        Evictions are deferred to the end of the block: the surviving
        set (the ``capacity`` most recently touched pages) is identical
        to per-page eviction, without a capacity test on every page.
        """
        self.misses += 1
        pages = self._pages
        pop = pages.pop
        for page in range(start_page, start_page + npages):
            pop(page, None)
            pages[page] = None
        excess = len(pages) - self.capacity
        if excess > 0:
            victims = list(islice(pages, excess))
            for page in victims:
                del pages[page]

    def __len__(self) -> int:
        return len(self._pages)


class LRUDataCache:
    """Page-granular LRU cache with a dynamically adjustable capacity.

    Pages are keyed by a single packed integer (``disk << 48 | page``)
    rather than a ``(disk, page)`` tuple: the cache is consulted on
    every cacheable read, and integer keys avoid a tuple allocation and
    hash per page on that hot path.  The backing store is a plain
    insertion-ordered dict (recency refresh = delete-and-reinsert),
    which outperforms ``OrderedDict`` on every operation used here.
    """

    _DISK_SHIFT = 48  # pages-per-disk fits comfortably below 2**48

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._capacity = capacity
        self._pages: dict = {}
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Current capacity in pages."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative capacity: {value}")
        self._capacity = value
        self._evict_excess()

    def _evict_excess(self) -> None:
        pages = self._pages
        excess = len(pages) - self._capacity
        if excess > 0:
            victims = list(islice(pages, excess))
            for key in victims:
                del pages[key]

    def __len__(self) -> int:
        return len(self._pages)

    def contains_all(self, disk: int, start_page: int, npages: int) -> bool:
        """True when the whole range is cached (counts one hit/miss)."""
        pages = self._pages
        base = (disk << self._DISK_SHIFT) + start_page
        for key in range(base, base + npages):
            if key not in pages:
                self.misses += 1
                return False
        self.hits += 1
        pop = pages.pop
        for key in range(base, base + npages):
            pop(key)
            pages[key] = None
        return True

    def insert(self, disk: int, start_page: int, npages: int) -> None:
        """Install pages just read from disk, evicting LRU victims.

        Evictions are deferred to the end of the range; the surviving
        set (the ``capacity`` most recently touched pages) is the same
        as with per-page eviction.
        """
        if self._capacity == 0:
            return
        pages = self._pages
        pop = pages.pop
        base = (disk << self._DISK_SHIFT) + start_page
        for key in range(base, base + npages):
            pop(key, None)
            pages[key] = None
        self._evict_excess()

    def invalidate_all(self) -> None:
        """Drop every cached page."""
        self._pages.clear()


class DeviceCore:
    """One disk's physical state and shared scheduling/pricing logic.

    Every mutable fact about the disk that both hosts must agree on
    lives here: the head position (cylinders), the elevator sweep
    direction, the tails of recently active sequential streams
    (bounded by the modelled prefetch-cache size -- beyond that bound
    interleaved scans evict each other's tails and sequentiality is
    genuinely lost, the physical face of thrashing), and the
    :class:`PrefetchCache` itself.

    ``rotation_stream`` supplies stochastic rotational delays when the
    resource config asks for them; hosts without a seeded stream (the
    live plane) price the deterministic half-rotation instead.
    """

    __slots__ = (
        "head",
        "direction",
        "cache",
        "sequential_continuations",
        "fault_multiplier",
        "_streams",
        "_max_streams",
        "_rotation_stream",
        "_cylinder_size",
        "_num_cylinders",
        "_pages_per_disk",
        "_transfer_s",
        "_rotation_s",
        "_half_rotation_s",
        "_stochastic_rotation",
        "_seek_time",
    )

    def __init__(self, resources, rotation_stream=None):
        #: Current head position, cylinders; starts at the middle.
        self.head = resources.num_cylinders // 2
        #: Elevator sweep direction: +1 inward, -1 outward.
        self.direction = 1
        #: Tails of recently active sequential streams.  A request that
        #: starts exactly at a tracked tail continues that stream and
        #: pays pure transfer -- no seek, no rotational delay -- which
        #: is what the paper's 256-KByte prefetch cache buys: several
        #: interleaved sequential scans each stay efficient.  The
        #: number of simultaneously tracked streams is bounded by the
        #: cache size (256 KB / 32 pages ~ a handful of block streams);
        #: beyond that, streams evict each other and sequentiality is
        #: lost.  (Insertion-ordered plain dict; oldest tail is the
        #: iteration front.)
        self._streams: dict = {}
        self._max_streams = max(1, resources.disk_cache_pages // resources.block_size)
        self.sequential_continuations = 0
        #: Service-time degradation factor (fault injection): 1.0 means
        #: a healthy device; a degraded window multiplies every priced
        #: access.  The DES host never touches it, so bit-identity of
        #: the no-fault path is structural.
        self.fault_multiplier = 1.0
        self.cache = PrefetchCache(resources.disk_cache_pages)
        self._rotation_stream = rotation_stream
        self._cylinder_size = resources.cylinder_size
        self._num_cylinders = resources.num_cylinders
        self._pages_per_disk = resources.pages_per_disk
        self._transfer_s = resources.transfer_s_per_page
        self._rotation_s = resources.rotation_s
        self._half_rotation_s = resources.rotation_s / 2.0
        self._stochastic_rotation = resources.stochastic_rotation
        self._seek_time = resources.seek_time

    # ------------------------------------------------------------------
    # geometry and pricing
    # ------------------------------------------------------------------
    @property
    def pages_per_disk(self) -> int:
        return self._pages_per_disk

    def cylinder_of(self, page: int) -> int:
        return page // self._cylinder_size

    def read_hit(self, start_page: int, npages: int) -> bool:
        """Consult the prefetch cache; a full hit refreshes recency."""
        if self.cache.contains_all(start_page, npages):
            self.cache.touch(start_page, npages)
            return True
        return False

    def service_time(self, start_page: int, npages: int, cylinder: int) -> float:
        """Price one access from the current head/stream state.

        A request starting exactly at a tracked stream tail is a
        sequential continuation: prefetched, pure transfer.  Anything
        else pays ``Seek(distance) + RotateDelay + Transfer`` with
        ``Seek(n) = SeekFactor * sqrt(n)`` [Bitt88].
        """
        transfer = npages * self._transfer_s
        if start_page in self._streams:
            self.sequential_continuations += 1
            if self.fault_multiplier != 1.0:
                return transfer * self.fault_multiplier
            return transfer
        seek = self._seek_time(abs(cylinder - self.head))
        if self._stochastic_rotation and self._rotation_stream is not None:
            rotate = self._rotation_stream.uniform(0.0, self._rotation_s)
        else:
            rotate = self._half_rotation_s
        if self.fault_multiplier != 1.0:
            return (seek + rotate + transfer) * self.fault_multiplier
        return seek + rotate + transfer

    def detour_service_time(self, npages: int) -> float:
        """Price an access without touching head or stream state.

        Used for rerouted reads during a fault window: a replica disk
        serves a foreign address range, so the usual positional pricing
        would alias its own geometry.  Charges the average random seek
        (one third of the cylinder span [Bitt88]) plus the deterministic
        half rotation plus transfer -- stateless, so the replica's own
        streams and prefetch contents are unaffected.
        """
        seek = self._seek_time(self._num_cylinders // 3)
        service = seek + self._half_rotation_s + npages * self._transfer_s
        if self.fault_multiplier != 1.0:
            return service * self.fault_multiplier
        return service

    def note_transfer(self, start_page: int, npages: int) -> None:
        """Record a served access: head movement, stream tails, cache.

        The head lands on the last cylinder touched and the sweep
        direction follows the movement; the access's end becomes a
        tracked stream tail (evicting the oldest beyond the bound);
        the transferred pages are installed in the prefetch cache.
        """
        end_cylinder = (start_page + npages - 1) // self._cylinder_size
        if end_cylinder != self.head:
            self.direction = 1 if end_cylinder > self.head else -1
        self.head = end_cylinder
        streams = self._streams
        streams.pop(start_page, None)
        streams[start_page + npages] = None
        while len(streams) > self._max_streams:
            del streams[next(iter(streams))]
        self.cache.insert(start_page, npages)

    # ------------------------------------------------------------------
    # ED queue selection with the elevator tie-break
    # ------------------------------------------------------------------
    def select(self, queue: List[Tuple[float, int, object]]) -> Optional[object]:
        """Pop the highest-priority entry; elevator order among ties.

        ``queue`` is a heap of ``(priority, seq, item)`` where ``item``
        exposes ``cancelled`` (skipped and dropped) and ``cylinder``
        (the tie-break key).  Reverses the sweep direction when no tied
        request lies ahead of the head -- exactly the DES semantics.
        """
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        top = heapq.heappop(queue)
        if not queue or queue[0][0] != top[0]:
            return top[2]  # common case: unique priority, no re-push
        # Collect the (rare) priority ties and pick by elevator order.
        ties: List[Tuple[float, int, object]] = [top]
        while queue and queue[0][0] == top[0]:
            entry = heapq.heappop(queue)
            if not entry[2].cancelled:
                ties.append(entry)
        if len(ties) == 1:
            return ties[0][2]
        chosen = self.elevator_choice([entry[2] for entry in ties])
        for entry in ties:
            if entry[2] is not chosen:
                heapq.heappush(queue, entry)
        return chosen

    def elevator_choice(self, requests: Sequence[object]) -> object:
        """Nearest cylinder in the sweep direction, else reverse sweep."""
        head = self.head
        ahead = [
            req
            for req in requests
            if (req.cylinder - head) * self.direction >= 0
        ]
        if ahead:
            return min(ahead, key=lambda req: abs(req.cylinder - head))
        self.direction *= -1
        return min(requests, key=lambda req: abs(req.cylinder - head))
