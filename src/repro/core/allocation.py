"""The memory allocation procedures (Section 3.2 and Table 5).

All three allocators take the present queries in **ED order** (most
urgent first) and the free pool size, and return a page allocation per
query.  A query allocated 0 pages is not admitted (or, if it was
running, is suspended).  Admission packs greedily in ED order -- "as
many queries ... as memory permits" (Section 3.2) -- so a query whose
entry requirement does not fit is passed over and the scan continues
with less urgent queries.  (This matters for Max under mixed
workloads: small queries slip past a blocked large one, which is
exactly the Medium-class bias the paper reports in Figure 18.)

* :func:`allocate_max` -- each query receives its maximum demand or
  nothing (the Max strategy; no explicit MPL limit).
* :func:`allocate_minmax` -- the two-pass MinMax procedure: pass one
  hands every admissible query its minimum, pass two tops allocations
  up to the maximum, both in ED order.  At the end the most urgent
  queries hold their maximum, the least urgent their minimum, and at
  most one query something in between -- exactly the paper's invariant.
* :func:`allocate_proportional` -- admits like MinMax but divides
  memory so every admitted query gets the same fraction of its maximum
  demand (never below its minimum): the Proportional-N baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Population size below which the proportional bisection evaluates
#: its clamp-sum with scalar arithmetic instead of numpy: per-call
#: dispatch overhead dominates vectorisation gains on small arrays.
_SCALAR_CUTOVER = 128


@dataclass(frozen=True)
class QueryDemand:
    """What the allocators need to know about one query."""

    #: Stable query identifier.
    qid: int
    #: ED priority key (the absolute deadline); informational here --
    #: callers pass demands already sorted by it.
    priority: float
    #: Minimum workspace (multi-pass execution).
    min_pages: int
    #: Maximum workspace (one-pass execution).
    max_pages: int
    #: Workload class the query belongs to (used by the fairness
    #: extension; plain PMM and the static baselines ignore it).
    class_name: str = ""

    def __post_init__(self):
        if self.min_pages < 0 or self.max_pages < self.min_pages:
            raise ValueError(
                f"query {self.qid}: bad demand envelope "
                f"[{self.min_pages}, {self.max_pages}]"
            )


def allocate_max(demands: Sequence[QueryDemand], memory: int) -> Dict[int, int]:
    """The Max strategy: maximum allocation or nothing, in ED order."""
    _validate_memory(memory)
    allocation = {demand.qid: 0 for demand in demands}
    remaining = memory
    for demand in demands:
        if demand.max_pages > remaining:
            continue  # blocked: later (smaller) queries may still fit
        allocation[demand.qid] = demand.max_pages
        remaining -= demand.max_pages
    return allocation


def allocate_minmax(
    demands: Sequence[QueryDemand],
    memory: int,
    mpl_limit: Optional[int] = None,
) -> Dict[int, int]:
    """The two-pass MinMax procedure (MinMax-N when ``mpl_limit=N``)."""
    _validate_memory(memory)
    _validate_limit(mpl_limit)
    allocation = {demand.qid: 0 for demand in demands}
    admitted = _admit_by_minimum(demands, memory, mpl_limit)
    remaining = memory - sum(demand.min_pages for demand in admitted)
    for demand in admitted:
        allocation[demand.qid] = demand.min_pages
    # Second pass: top up to the maximum, again most urgent first.
    for demand in admitted:
        if remaining <= 0:
            break
        top_up = min(demand.max_pages - demand.min_pages, remaining)
        allocation[demand.qid] += top_up
        remaining -= top_up
    return allocation


def allocate_proportional(
    demands: Sequence[QueryDemand],
    memory: int,
    mpl_limit: Optional[int] = None,
) -> Dict[int, int]:
    """Proportional-N: equal fraction of each maximum, floored at minima."""
    _validate_memory(memory)
    _validate_limit(mpl_limit)
    allocation = {demand.qid: 0 for demand in demands}
    admitted = _admit_by_minimum(demands, memory, mpl_limit)
    if not admitted:
        return allocation

    mins = [d.min_pages for d in admitted]
    maxs = [d.max_pages for d in admitted]
    if _clamp_sum(1.0, mins, maxs) <= memory:
        # Exact fast path: every admitted query fits at its maximum.
        # The bisection would converge to low = 1 - 2**-64, whose
        # float64 product with any representable max_pages rounds to
        # exactly max_pages (the perturbation is under half an ulp), so
        # granting each maximum outright yields the identical vector
        # without 64 iterations -- the common case under light load.
        grants = maxs
    else:
        grants = _bisect_grants(mins, maxs, memory)
    for demand, grant in zip(admitted, grants):
        allocation[demand.qid] = grant
    remaining = memory - sum(allocation[d.qid] for d in admitted)
    # Hand out integer-rounding leftovers in ED order.
    for demand in admitted:
        if remaining <= 0:
            break
        extra = min(demand.max_pages - allocation[demand.qid], remaining)
        allocation[demand.qid] += extra
        remaining -= extra
    return allocation


# ----------------------------------------------------------------------
def _clamp_sum(fraction: float, mins: Sequence[int], maxs: Sequence[int]) -> int:
    """``sum(clamp(int(fraction * max), min, max))`` over the demands.

    Scalar arithmetic below the cutover (64 numpy dispatches on a
    ~24-element array cost more than the arithmetic), vectorised above
    it.  The float64 product and the int64 truncation are
    IEEE-identical either way, and the sum is integer-exact, so the
    bisection path is bit-for-bit the same whichever body runs.
    """
    if len(maxs) <= _SCALAR_CUTOVER:
        total = 0
        for low_pages, high_pages in zip(mins, maxs):
            pages = int(fraction * high_pages)
            if pages < low_pages:
                pages = low_pages
            elif pages > high_pages:
                pages = high_pages
            total += pages
        return total
    pages = (fraction * np.array(maxs, dtype=np.float64)).astype(np.int64)
    return int(
        np.minimum(
            np.array(maxs, dtype=np.int64),
            np.maximum(np.array(mins, dtype=np.int64), pages),
        ).sum()
    )


def _bisect_grants(mins: Sequence[int], maxs: Sequence[int], memory: int) -> List[int]:
    """Largest-fraction proportional grants by bisection over [0, 1].

    Equivalent to running 64 plain bisection iterations on
    ``_clamp_sum`` and granting ``clamp(int(low * max))`` at the final
    ``low`` -- the procedure the DES goldens pin -- but with two
    grant-exact shortcuts that cut the admission-path cost ~6x:

    * **pinning** -- float64 multiplication is monotone, so once a
      query's clamped grant agrees at both bracket ends it can never
      change again (the final ``low`` lies inside the bracket); its
      term moves into a constant and leaves the per-iteration scan;
    * **single-boundary exit** -- when one unpinned query remains, the
      remaining iterations only resolve *its* grant: the bisection
      invariant ``total(low) <= memory < total(high)`` holds
      throughout, the clamped grant sweeps every integer in
      ``[min, max]`` as the fraction rises, and boundaries are spaced
      ``1/max`` apart (far wider than the final bracket), so the
      converged grant is exactly ``min(max_pages, memory - pinned)``.

    Ties (several queries sharing the binding boundary) never reduce
    to one unpinned query and simply run the full 64 iterations.
    """
    grants: List[int] = [0] * len(maxs)
    pinned_sum = 0
    active = list(range(len(maxs)))
    low, high = 0.0, 1.0
    for _iteration in range(64):
        mid = (low + high) / 2.0
        total = pinned_sum
        for index in active:
            low_pages, high_pages = mins[index], maxs[index]
            pages = int(mid * high_pages)
            if pages < low_pages:
                pages = low_pages
            elif pages > high_pages:
                pages = high_pages
            total += pages
        if total <= memory:
            low = mid
        else:
            high = mid
        still_active = []
        for index in active:
            low_pages, high_pages = mins[index], maxs[index]
            at_low = int(low * high_pages)
            if at_low < low_pages:
                at_low = low_pages
            elif at_low > high_pages:
                at_low = high_pages
            at_high = int(high * high_pages)
            if at_high < low_pages:
                at_high = low_pages
            elif at_high > high_pages:
                at_high = high_pages
            if at_low == at_high:
                grants[index] = at_low
                pinned_sum += at_low
            else:
                still_active.append(index)
        active = still_active
        if len(active) <= 1:
            break
    if len(active) == 1:
        index = active[0]
        budget = memory - pinned_sum
        # The invariant keeps budget >= mins[index]; clamp the top.
        grants[index] = budget if budget < maxs[index] else maxs[index]
    else:
        for index in active:
            low_pages, high_pages = mins[index], maxs[index]
            pages = int(low * high_pages)
            if pages < low_pages:
                pages = low_pages
            elif pages > high_pages:
                pages = high_pages
            grants[index] = pages
    return grants


def _admit_by_minimum(
    demands: Sequence[QueryDemand], memory: int, mpl_limit: Optional[int]
) -> List[QueryDemand]:
    """ED-order admission: minimum requirement as the entry ticket."""
    admitted: List[QueryDemand] = []
    remaining = memory
    for demand in demands:
        if mpl_limit is not None and len(admitted) >= mpl_limit:
            break
        if demand.min_pages > remaining:
            continue  # blocked: keep packing less urgent queries
        admitted.append(demand)
        remaining -= demand.min_pages
    return admitted


def _validate_memory(memory: int) -> None:
    if memory < 0:
        raise ValueError(f"negative memory pool: {memory}")


def _validate_limit(mpl_limit: Optional[int]) -> None:
    if mpl_limit is not None and mpl_limit < 0:
        raise ValueError(f"negative MPL limit: {mpl_limit}")
