"""The memory allocation procedures (Section 3.2 and Table 5).

All three allocators take the present queries in **ED order** (most
urgent first) and the free pool size, and return a page allocation per
query.  A query allocated 0 pages is not admitted (or, if it was
running, is suspended).  Admission packs greedily in ED order -- "as
many queries ... as memory permits" (Section 3.2) -- so a query whose
entry requirement does not fit is passed over and the scan continues
with less urgent queries.  (This matters for Max under mixed
workloads: small queries slip past a blocked large one, which is
exactly the Medium-class bias the paper reports in Figure 18.)

* :func:`allocate_max` -- each query receives its maximum demand or
  nothing (the Max strategy; no explicit MPL limit).
* :func:`allocate_minmax` -- the two-pass MinMax procedure: pass one
  hands every admissible query its minimum, pass two tops allocations
  up to the maximum, both in ED order.  At the end the most urgent
  queries hold their maximum, the least urgent their minimum, and at
  most one query something in between -- exactly the paper's invariant.
* :func:`allocate_proportional` -- admits like MinMax but divides
  memory so every admitted query gets the same fraction of its maximum
  demand (never below its minimum): the Proportional-N baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class QueryDemand:
    """What the allocators need to know about one query."""

    #: Stable query identifier.
    qid: int
    #: ED priority key (the absolute deadline); informational here --
    #: callers pass demands already sorted by it.
    priority: float
    #: Minimum workspace (multi-pass execution).
    min_pages: int
    #: Maximum workspace (one-pass execution).
    max_pages: int
    #: Workload class the query belongs to (used by the fairness
    #: extension; plain PMM and the static baselines ignore it).
    class_name: str = ""

    def __post_init__(self):
        if self.min_pages < 0 or self.max_pages < self.min_pages:
            raise ValueError(
                f"query {self.qid}: bad demand envelope "
                f"[{self.min_pages}, {self.max_pages}]"
            )


def allocate_max(demands: Sequence[QueryDemand], memory: int) -> Dict[int, int]:
    """The Max strategy: maximum allocation or nothing, in ED order."""
    _validate_memory(memory)
    allocation = {demand.qid: 0 for demand in demands}
    remaining = memory
    for demand in demands:
        if demand.max_pages > remaining:
            continue  # blocked: later (smaller) queries may still fit
        allocation[demand.qid] = demand.max_pages
        remaining -= demand.max_pages
    return allocation


def allocate_minmax(
    demands: Sequence[QueryDemand],
    memory: int,
    mpl_limit: Optional[int] = None,
) -> Dict[int, int]:
    """The two-pass MinMax procedure (MinMax-N when ``mpl_limit=N``)."""
    _validate_memory(memory)
    _validate_limit(mpl_limit)
    allocation = {demand.qid: 0 for demand in demands}
    admitted = _admit_by_minimum(demands, memory, mpl_limit)
    remaining = memory - sum(demand.min_pages for demand in admitted)
    for demand in admitted:
        allocation[demand.qid] = demand.min_pages
    # Second pass: top up to the maximum, again most urgent first.
    for demand in admitted:
        if remaining <= 0:
            break
        top_up = min(demand.max_pages - demand.min_pages, remaining)
        allocation[demand.qid] += top_up
        remaining -= top_up
    return allocation


def allocate_proportional(
    demands: Sequence[QueryDemand],
    memory: int,
    mpl_limit: Optional[int] = None,
) -> Dict[int, int]:
    """Proportional-N: equal fraction of each maximum, floored at minima."""
    _validate_memory(memory)
    _validate_limit(mpl_limit)
    allocation = {demand.qid: 0 for demand in demands}
    admitted = _admit_by_minimum(demands, memory, mpl_limit)
    if not admitted:
        return allocation

    # Vectorised evaluation of sum(clamp(int(f * max), min, max)): the
    # float64 product and truncation are IEEE-identical to the scalar
    # ``int(fraction * d.max_pages)``, and the sum is integer-exact, so
    # the bisection path (and with it every allocation) is bit-for-bit
    # the same as the per-demand loop it replaces -- just ~10x faster
    # on the live admission path.
    maxs_f = np.array([d.max_pages for d in admitted], dtype=np.float64)
    mins_i = np.array([d.min_pages for d in admitted], dtype=np.int64)
    maxs_i = np.array([d.max_pages for d in admitted], dtype=np.int64)

    def total_at(fraction: float) -> int:
        pages = (fraction * maxs_f).astype(np.int64)
        return int(np.minimum(maxs_i, np.maximum(mins_i, pages)).sum())

    # Largest fraction whose induced total fits: bisection then fixup.
    low, high = 0.0, 1.0
    for _iteration in range(64):
        mid = (low + high) / 2.0
        if total_at(mid) <= memory:
            low = mid
        else:
            high = mid
    for demand in admitted:
        allocation[demand.qid] = min(
            demand.max_pages, max(demand.min_pages, int(low * demand.max_pages))
        )
    remaining = memory - sum(allocation[d.qid] for d in admitted)
    # Hand out integer-rounding leftovers in ED order.
    for demand in admitted:
        if remaining <= 0:
            break
        extra = min(demand.max_pages - allocation[demand.qid], remaining)
        allocation[demand.qid] += extra
        remaining -= extra
    return allocation


# ----------------------------------------------------------------------
def _admit_by_minimum(
    demands: Sequence[QueryDemand], memory: int, mpl_limit: Optional[int]
) -> List[QueryDemand]:
    """ED-order admission: minimum requirement as the entry ticket."""
    admitted: List[QueryDemand] = []
    remaining = memory
    for demand in demands:
        if mpl_limit is not None and len(admitted) >= mpl_limit:
            break
        if demand.min_pages > remaining:
            continue  # blocked: keep packing less urgent queries
        admitted.append(demand)
        remaining -= demand.min_pages
    return admitted


def _validate_memory(memory: int) -> None:
    if memory < 0:
        raise ValueError(f"negative memory pool: {memory}")


def _validate_limit(mpl_limit: Optional[int]) -> None:
    if mpl_limit is not None and mpl_limit < 0:
        raise ValueError(f"negative MPL limit: {mpl_limit}")
