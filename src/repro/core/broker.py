"""The memory broker: admission control decoupled from the simulator.

The paper's mechanism -- admission decisions, min/max memory grants,
wait queues, and departure-driven re-allocation, all delegated to a
pluggable :class:`~repro.policies.base.MemoryPolicy` -- is useful far
beyond a discrete-event simulation: it is exactly what a live server
needs to decide *which* concurrent queries may run and *how much*
workspace each gets.  :class:`MemoryBroker` is that mechanism with the
simulator factored out.

The broker sees the world as a stream of four operations:

* :meth:`register`   -- a query arrives (enters the wait queue);
* :meth:`reallocate` -- compute a fresh allocation vector (invoked by
  the host after every arrival and departure, and whenever the policy
  requests one);
* :meth:`release`    -- a query leaves the population (done or aborted);
* :meth:`note_departure` / :meth:`departure_feedback` /
  :meth:`deliver_batch` -- the policy's feedback channel: per-departure
  facts, and a :class:`~repro.policies.base.BatchStats` summary after
  every ``SampleSize`` departures (the broker counts the window; the
  host supplies the utilisation telemetry only it can measure).

Both hosts drive the identical policy objects through this interface:

* the DES :class:`~repro.rtdbs.query_manager.QueryManager` (simulated
  time, simulated resources) -- the refactor is bit-identical to the
  pre-broker code path;
* the live asyncio gateway of :mod:`repro.serve` (wall-clock time,
  real operators over in-memory relations).

Every operation can be recorded by a :class:`BrokerTrace`; replaying a
trace through a fresh broker + policy must reproduce the decision
sequence exactly (``tests/test_memory_broker.py`` pins this for all
policies), which proves the broker is deterministic and depends on
nothing outside its own operation stream.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.allocation import QueryDemand
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy

#: Population states (a query is *admitted* once it holds pages).
WAITING = "waiting"
RUNNING = "running"

#: On-disk trace identity: the header line of every saved trace names
#: this format and version; :meth:`BrokerTrace.load` refuses anything
#: else rather than silently replaying a stream it may misparse.
TRACE_FORMAT = "repro-broker-trace"
TRACE_FORMAT_VERSION = 1

#: Anything the replay / oracle entry points accept as "a trace":
#: an in-memory :class:`BrokerTrace`, a bare op list, or a path to a
#: file written by :meth:`BrokerTrace.save`.
TraceLike = Union["BrokerTrace", Sequence[tuple], str, "os.PathLike"]


@dataclass
class BrokerEntry:
    """The broker's view of one present query."""

    qid: int
    class_name: str
    #: ED priority: the absolute deadline (smaller = more urgent).
    priority: float
    min_pages: int
    max_pages: int
    state: str = WAITING
    #: Current grant, pages (0 while waiting or suspended).
    pages: int = 0


@dataclass(frozen=True)
class AllocationDecision:
    """One reallocation outcome, ready for the host to enact."""

    #: Pages per query id (queries absent from the vector hold 0).
    allocation: Dict[int, int]
    #: Present queries in ED order (the order grants must be enacted
    #: in, so simulator event sequences stay reproducible).
    order: Tuple[int, ...]
    #: Queries admitted by this decision (were waiting, now granted).
    admitted: Tuple[int, ...]


@dataclass(frozen=True)
class BatchWindow:
    """A closing feedback window: departures since the last batch."""

    served: int
    missed: int


@dataclass
class BrokerTrace:
    """Recorder for the broker's operation + decision stream.

    ``ops`` holds plain tuples (no object references), so a trace can
    be replayed against a freshly built broker and policy; decisions
    are recorded as sorted ``(qid, pages)`` tuples for stable
    comparison.

    ``meta`` carries run context that is *not* part of the op stream
    (initial pool size, sample size, policy name) -- the broker stamps
    it when a recorder is attached, so replay parity is untouched but a
    saved trace is self-describing enough for the clairvoyant oracle.
    """

    ops: List[tuple] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def record(self, op: tuple) -> None:
        self.ops.append(op)

    @property
    def decisions(self) -> List[Tuple[Tuple[int, int], ...]]:
        """Every recorded allocation vector, in decision order."""
        return [op[1] for op in self.ops if op[0] == "decision"]

    # ------------------------------------------------------------------
    # stable on-disk artifact (JSON lines, versioned)
    # ------------------------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> Path:
        """Write the trace as JSON lines: one header, one line per op.

        The header pins :data:`TRACE_FORMAT` / :data:`TRACE_FORMAT_VERSION`
        and carries ``meta``; every op serialises as a JSON array.
        ``save`` -> :meth:`load` -> ``save`` is byte-identical (JSON
        floats round-trip exactly through ``repr``).
        """
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "format": TRACE_FORMAT,
                "version": TRACE_FORMAT_VERSION,
                "ops": len(self.ops),
                "meta": dict(sorted(self.meta.items())),
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for op in self.ops:
                handle.write(json.dumps(op) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "BrokerTrace":
        """Read a trace written by :meth:`save`.

        Raises ``ValueError`` when the file does not announce the
        expected format/version -- a version bump must be handled
        explicitly, never replayed on faith.
        """
        path = Path(path)
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
            try:
                header = json.loads(first) if first.strip() else {}
            except json.JSONDecodeError:
                header = {}
            if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
                raise ValueError(
                    f"{path} is not a {TRACE_FORMAT} file (bad or missing header)"
                )
            version = header.get("version")
            if version != TRACE_FORMAT_VERSION:
                raise ValueError(
                    f"{path} has trace format version {version!r}; this build "
                    f"reads version {TRACE_FORMAT_VERSION} -- refusing to guess"
                )
            ops = [
                _as_tuples(json.loads(line))
                for line in handle
                if line.strip()
            ]
        declared = header.get("ops")
        if declared is not None and declared != len(ops):
            raise ValueError(
                f"{path} declares {declared} ops but contains {len(ops)} "
                "-- truncated or corrupted trace"
            )
        return cls(ops=ops, meta=dict(header.get("meta", {})))


def _as_tuples(value):
    """JSON arrays back to the tuples the recorder originally stored."""
    if isinstance(value, list):
        return tuple(_as_tuples(item) for item in value)
    return value


def coerce_trace_ops(trace: TraceLike) -> List[tuple]:
    """The op list of a trace given in any accepted form.

    Accepts a :class:`BrokerTrace`, a bare op sequence, or a path to a
    saved trace file -- the common front door of :func:`replay_ops`,
    :func:`replay_trace`, and the clairvoyant oracle.
    """
    if isinstance(trace, BrokerTrace):
        return trace.ops
    if isinstance(trace, (str, os.PathLike)):
        return BrokerTrace.load(trace).ops
    return list(trace)


class MemoryBroker:
    """Admission control + memory allocation over one buffer pool.

    The broker owns the admission-facing population (the wait queue and
    the granted set), the departure counters, and the policy feedback
    cadence; the host owns actual execution, timing, and telemetry.
    """

    def __init__(
        self,
        policy: MemoryPolicy,
        total_pages: int,
        sample_size: int,
        recorder: Optional[BrokerTrace] = None,
    ):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        if sample_size < 1:
            raise ValueError(f"sample size must be >= 1, got {sample_size}")
        self.policy = policy
        self.total_pages = total_pages
        self.sample_size = sample_size
        self._recorder: Optional[BrokerTrace] = None
        self.recorder = recorder
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps the decision path hook-free.
        self.invariants = None

        self._entries: Dict[int, BrokerEntry] = {}
        # -- departure counters (the host's statistics read these) -----
        self.departures = 0
        self.completions = 0
        self.misses = 0
        # -- batch bookkeeping for policy feedback ----------------------
        self._batch_start_departures = 0
        self._batch_misses = 0
        self.batches_delivered = 0

    @property
    def recorder(self) -> Optional[BrokerTrace]:
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        """Attach a recorder, stamping run context into its ``meta``.

        Hosts attach recorders both at construction and after the fact
        (``broker.recorder = trace``); stamping here covers both paths.
        ``meta`` is context, not an op, so the decision-replay parity
        contract is untouched.  Recorders without a ``meta`` dict (the
        crash journal) are attached as-is.
        """
        self._recorder = value
        if value is not None and isinstance(getattr(value, "meta", None), dict):
            value.meta.setdefault("total_pages", self.total_pages)
            value.meta.setdefault("sample_size", self.sample_size)
            value.meta.setdefault(
                "policy", getattr(self.policy, "name", type(self.policy).__name__)
            )

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def register(
        self,
        qid: int,
        class_name: str,
        priority: float,
        min_pages: int,
        max_pages: int,
    ) -> BrokerEntry:
        """A query arrives: enter the wait queue (no memory yet)."""
        if qid in self._entries:
            raise ValueError(f"duplicate query id {qid}")
        entry = BrokerEntry(qid, class_name, priority, min_pages, max_pages)
        self._entries[qid] = entry
        if self.recorder is not None:
            self.recorder.record(
                ("register", qid, class_name, priority, min_pages, max_pages)
            )
        return entry

    def release(self, qid: int) -> None:
        """A query leaves the population (completion or abort)."""
        self._entries.pop(qid, None)
        if self.recorder is not None:
            self.recorder.record(("release", qid))

    def set_total_pages(self, pages: int) -> None:
        """Resize the pool the policy allocates over (memory pressure).

        An external, non-query memory consumer (the MSFT throughput
        paper's compilation-memory thief) shrinks the pool mid-run; the
        next :meth:`reallocate` redistributes within the new bound.
        Recorded as a ``("pool", pages)`` op so trace replay reproduces
        the decision stream across the resize.
        """
        if pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {pages}")
        self.total_pages = pages
        if self.recorder is not None:
            self.recorder.record(("pool", pages))

    def entry(self, qid: int) -> BrokerEntry:
        """The broker's entry for one present query."""
        return self._entries[qid]

    @property
    def present(self) -> List[BrokerEntry]:
        """All present queries in ED order."""
        return sorted(self._entries.values(), key=lambda e: (e.priority, e.qid))

    @property
    def present_count(self) -> int:
        return len(self._entries)

    @property
    def admitted_count(self) -> int:
        """Queries currently holding memory."""
        return sum(1 for entry in self._entries.values() if entry.pages > 0)

    @property
    def waiting_count(self) -> int:
        """Queries waiting for their first grant."""
        return sum(1 for entry in self._entries.values() if entry.state == WAITING)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def reallocate(self, now: float = 0.0) -> AllocationDecision:
        """Ask the policy for a fresh allocation vector.

        Updates the broker's own grant/state bookkeeping and returns
        the decision for the host to enact (install reservations, wake
        or start queries, shrink running grants) *in ED order*.
        """
        entries = self.present
        demands = [
            QueryDemand(
                entry.qid,
                entry.priority,
                entry.min_pages,
                entry.max_pages,
                class_name=entry.class_name,
            )
            for entry in entries
        ]
        allocation = self.policy.allocate(demands, self.total_pages, now=now)
        if self.invariants is not None:
            self.invariants.check_allocation(self, demands, allocation)
        admitted: List[int] = []
        for entry in entries:
            pages = allocation.get(entry.qid, 0)
            if entry.state == WAITING and pages > 0:
                entry.state = RUNNING
                admitted.append(entry.qid)
            entry.pages = pages
        decision = AllocationDecision(
            allocation=allocation,
            order=tuple(entry.qid for entry in entries),
            admitted=tuple(admitted),
        )
        if self.recorder is not None:
            self.recorder.record(("reallocate", now))
            self.recorder.record(
                ("decision", tuple(sorted(allocation.items())))
            )
        return decision

    # ------------------------------------------------------------------
    # departures and policy feedback
    # ------------------------------------------------------------------
    def note_departure(self, missed: bool) -> None:
        """Count one departure (before the host's own listeners run)."""
        self.departures += 1
        if missed:
            self.misses += 1
            self._batch_misses += 1
        else:
            self.completions += 1

    def departure_feedback(self, record: DepartureRecord) -> Optional[BatchWindow]:
        """Stream one departure's facts to the policy.

        Returns the closing :class:`BatchWindow` when this departure
        completes a ``SampleSize`` window -- the host must then build a
        :class:`BatchStats` (it alone can measure utilisations) and
        call :meth:`deliver_batch`.
        """
        if self.recorder is not None:
            self.recorder.record(("departure", _record_tuple(record)))
        self.policy.on_departure(record)
        if self.departures - self._batch_start_departures >= self.sample_size:
            return BatchWindow(
                served=self.departures - self._batch_start_departures,
                missed=self._batch_misses,
            )
        return None

    def deliver_batch(self, stats: BatchStats) -> bool:
        """Close the feedback window: hand the batch summary over.

        Returns the policy's "force reallocation" flag (hosts that
        already reallocate after every departure may ignore it).
        """
        self._batch_start_departures = self.departures
        self._batch_misses = 0
        self.batches_delivered += 1
        if self.recorder is not None:
            self.recorder.record(("batch", _stats_tuple(stats)))
        return bool(self.policy.on_batch(stats))


# ----------------------------------------------------------------------
# trace replay
# ----------------------------------------------------------------------
def _record_tuple(record: DepartureRecord) -> tuple:
    return (
        record.qid,
        record.class_name,
        record.missed,
        record.arrival,
        record.departure,
        record.waiting_time,
        record.execution_time,
        record.time_constraint,
        record.max_demand,
        record.min_demand,
        record.operand_io_count,
        record.memory_fluctuations,
    )


def _stats_tuple(stats: BatchStats) -> tuple:
    return (
        stats.time,
        stats.served,
        stats.missed,
        stats.realized_mpl,
        stats.cpu_utilization,
        stats.disk_utilizations,
        stats.pool_hit_ratio,
    )


def replay_ops(
    ops: TraceLike,
    broker: MemoryBroker,
    verify_decisions: bool = False,
) -> List[Tuple[Tuple[int, int], ...]]:
    """Feed a recorded operation stream through an existing broker.

    ``ops`` may be a bare op list, a :class:`BrokerTrace`, or a path
    to a saved trace file.  Returns the decision sequence (sorted
    allocation vectors, one per ``reallocate`` op).  With
    ``verify_decisions=True``, every recorded ``decision`` op is
    compared to the vector the replay just produced and a mismatch
    raises ``ValueError`` -- the crash-recovery path uses this to prove
    the journal replay is faithful, not merely plausible.
    """
    decisions: List[Tuple[Tuple[int, int], ...]] = []
    last: Optional[Tuple[Tuple[int, int], ...]] = None
    for op in coerce_trace_ops(ops):
        kind = op[0]
        if kind == "register":
            broker.register(*op[1:])
        elif kind == "release":
            broker.release(op[1])
        elif kind == "reallocate":
            decision = broker.reallocate(now=op[1])
            last = tuple(sorted(decision.allocation.items()))
            decisions.append(last)
        elif kind == "departure":
            broker.note_departure(missed=op[1][2])
            broker.departure_feedback(DepartureRecord(*op[1]))
        elif kind == "batch":
            # Pre-pool traces carry six fields; newer ones add the
            # shared-pool hit ratio.
            time, served, missed, mpl, cpu, disks = op[1][:6]
            pool_hit = op[1][6] if len(op[1]) > 6 else 0.0
            broker.deliver_batch(
                BatchStats(
                    time=time,
                    served=served,
                    missed=missed,
                    realized_mpl=mpl,
                    cpu_utilization=cpu,
                    disk_utilizations=disks,
                    pool_hit_ratio=pool_hit,
                )
            )
        elif kind == "pool":
            broker.total_pages = int(op[1])
        elif kind == "decision":
            recorded = tuple(tuple(pair) for pair in op[1])
            if verify_decisions and last is not None and recorded != last:
                raise ValueError(
                    f"replay diverged from the recorded decision: "
                    f"recorded {recorded}, replayed {last}"
                )
        else:
            raise ValueError(f"unknown trace op {kind!r}")
    return decisions


def replay_trace(
    ops: TraceLike,
    policy: MemoryPolicy,
    total_pages: int,
    sample_size: int,
) -> List[Tuple[Tuple[int, int], ...]]:
    """Feed a recorded operation stream through a fresh broker.

    ``ops`` may be a bare op list, a :class:`BrokerTrace`, or a path to
    a saved trace file.  Returns the decision sequence (sorted
    allocation vectors, one per ``reallocate`` op).  Replaying the
    trace of a simulation run with an identically parameterised policy
    must reproduce the recorded decisions exactly -- the
    broker/simulator parity contract.
    """
    broker = MemoryBroker(policy, total_pages, sample_size)
    return replay_ops(coerce_trace_ops(ops), broker)
