"""Class-fairness extension to PMM (the paper's stated future work).

Section 5.6 ends: *"we are now working on augmenting PMM with a
mechanism to allow an RTDBS system administrator to specify the desired
relative class miss ratios to support applications that require
'fairer' real-time query services."*  This module implements that
mechanism.

:class:`FairPMM` keeps PMM's admission control and allocation-strategy
machinery intact but biases the Earliest-Deadline order used for
admission and memory allocation: each class carries an exponentially
weighted moving average of its miss indicator, and a class missing more
than its administrator-assigned share has its queries' *remaining
slack* shrunk by a bounded bias factor, pulling them forward in the ED
order.  A class missing less than its share is pushed back
symmetrically.  CPU and disk scheduling still use the true deadlines --
only the memory-side ordering is biased, which is where the Figure 18
starvation originates (Medium queries blocked out of memory in Max
mode).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.allocation import QueryDemand
from repro.core.pmm import PMM
from repro.policies.base import DepartureRecord
from repro.rtdbs.config import PMMParams


class ClassMissTracker:
    """EWMA miss ratios per class, plus the overall average."""

    def __init__(self, smoothing: float = 0.02):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.smoothing = smoothing
        self._per_class: Dict[str, float] = {}
        self._overall: float = 0.0
        self._seen: int = 0

    def observe(self, class_name: str, missed: bool) -> None:
        """Fold one departure into the averages."""
        value = 1.0 if missed else 0.0
        alpha = self.smoothing
        previous = self._per_class.get(class_name, value)
        self._per_class[class_name] = (1.0 - alpha) * previous + alpha * value
        self._overall = (1.0 - alpha) * self._overall + alpha * value
        self._seen += 1

    def miss_ratio(self, class_name: str) -> float:
        """Smoothed miss ratio of one class (0 when never seen)."""
        return self._per_class.get(class_name, 0.0)

    @property
    def overall(self) -> float:
        """Smoothed miss ratio across all classes."""
        return self._overall

    @property
    def observations(self) -> int:
        """Departures folded in so far."""
        return self._seen

    def reset(self) -> None:
        """Forget everything (PMM restart)."""
        self._per_class.clear()
        self._overall = 0.0
        self._seen = 0


class FairPMM(PMM):
    """PMM with administrator-specified relative class miss ratios.

    ``goals`` maps class names to desired *relative* miss-ratio shares:
    ``{"Medium": 1.0, "Small": 1.0}`` asks for equal miss ratios, while
    ``{"Medium": 0.5, "Small": 1.0}`` tolerates only half as many
    Medium misses as Small ones.  Unlisted classes default to 1.0.
    """

    name = "FairPMM"

    #: Bias factors are clamped to [1/MAX_BIAS, MAX_BIAS]: fairness may
    #: bend the ED order, not break it.
    MAX_BIAS = 3.0
    #: Ignore fairness until this many departures have been observed
    #: (the EWMAs are meaningless before that).
    MIN_OBSERVATIONS = 60

    def __init__(
        self,
        params: Optional[PMMParams] = None,
        goals: Optional[Dict[str, float]] = None,
        smoothing: float = 0.02,
    ):
        super().__init__(params)
        self.goals = dict(goals or {})
        for class_name, share in self.goals.items():
            if share <= 0:
                raise ValueError(
                    f"goal for class {class_name!r} must be positive, got {share}"
                )
        self.tracker = ClassMissTracker(smoothing)

    # ------------------------------------------------------------------
    def on_departure(self, record: DepartureRecord) -> None:
        self.tracker.observe(record.class_name, record.missed)
        super().on_departure(record)

    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        """PMM allocation over a fairness-biased ED order."""
        if self.tracker.observations < self.MIN_OBSERVATIONS:
            return super().allocate(demands, memory)
        reordered = sorted(
            demands, key=lambda demand: self._biased_key(demand, now)
        )
        return super().allocate(reordered, memory)

    def bias(self, class_name: str) -> float:
        """Current bias for a class: >1 pulls its queries forward."""
        overall = self.tracker.overall
        if overall <= 1e-9:
            return 1.0
        goal = self.goals.get(class_name, 1.0)
        observed = self.tracker.miss_ratio(class_name)
        # How far above its fair share the class is missing.
        excess = observed / (goal * overall)
        return min(self.MAX_BIAS, max(1.0 / self.MAX_BIAS, excess))

    def _biased_key(self, demand: QueryDemand, now: float) -> float:
        slack = max(0.0, demand.priority - now)
        return now + slack / self.bias(demand.class_name)

    def _restart(self, time: float) -> None:
        super()._restart(time)
        self.tracker.reset()

    def describe(self) -> str:
        base = super().describe()
        return base.replace("PMM[", "FairPMM[goals=%s, " % (self.goals or "equal"))
