"""The miss-ratio projection method (Section 3.1.1).

PMM approximates the relationship between MPL and miss ratio with a
concave quadratic ``miss = a*mpl^2 + b*mpl + c`` fitted by least
squares [Drap81].  Only running sums are stored -- exactly the eight
quantities the paper lists: k, Σmpl, Σmpl², Σmpl³, Σmpl⁴, Σmiss,
Σ(mpl·miss), Σ(mpl²·miss).

After each fit the curve is classified over the range of MPLs tried so
far:

* **Type 1** (bowl with an interior minimum): the target MPL is the
  curve's minimum -- the expected steady-state case.
* **Type 2** (monotonic decreasing): the optimum lies beyond the
  largest MPL tried; probe one above it (the controller may raise this
  further using the RU heuristic).
* **Type 3** (monotonic increasing): probe one below the smallest MPL
  tried (the controller may lower this further using the RU heuristic).
* **Type 4** (hill): the fit is an artefact of noise; fall back on the
  RU heuristic.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


class CurveType(enum.Enum):
    """Classification of the fitted quadratic (Section 3.1.1)."""

    BOWL = 1  # interior minimum: adopt it
    DECREASING = 2  # optimum beyond the largest MPL tried
    INCREASING = 3  # optimum below the smallest MPL tried
    HILL = 4  # noise artefact: fall back on the RU heuristic
    INSUFFICIENT = 0  # fewer than three distinct MPLs observed


@dataclass(frozen=True)
class ProjectionResult:
    """Outcome of one projection: curve type plus a tentative target."""

    curve_type: CurveType
    #: Suggested MPL, or None when the projection cannot suggest one
    #: (INSUFFICIENT data or a HILL-shaped fit).
    target: Optional[int]
    #: Fitted coefficients (a, b, c), when a fit was possible.
    coefficients: Optional[Tuple[float, float, float]] = None


class MissRatioProjection:
    """Least-squares quadratic over (MPL, miss-ratio) observations."""

    #: |a| below this is treated as "no curvature" (a straight line).
    CURVATURE_EPS = 1e-9
    #: |slope| below this is treated as flat (no usable direction).
    SLOPE_EPS = 1e-6

    def __init__(self):
        self.count = 0
        self.sum_mpl = 0.0
        self.sum_mpl2 = 0.0
        self.sum_mpl3 = 0.0
        self.sum_mpl4 = 0.0
        self.sum_miss = 0.0
        self.sum_mpl_miss = 0.0
        self.sum_mpl2_miss = 0.0
        self._min_mpl = math.inf
        self._max_mpl = -math.inf
        self._distinct: set = set()

    # ------------------------------------------------------------------
    def observe(self, mpl: float, miss_ratio: float) -> None:
        """Record one batch's (MPL, miss ratio) pair."""
        if mpl <= 0:
            raise ValueError(f"MPL must be positive, got {mpl}")
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValueError(f"miss ratio must lie in [0, 1], got {miss_ratio}")
        self.count += 1
        self.sum_mpl += mpl
        self.sum_mpl2 += mpl**2
        self.sum_mpl3 += mpl**3
        self.sum_mpl4 += mpl**4
        self.sum_miss += miss_ratio
        self.sum_mpl_miss += mpl * miss_ratio
        self.sum_mpl2_miss += mpl**2 * miss_ratio
        self._min_mpl = min(self._min_mpl, mpl)
        self._max_mpl = max(self._max_mpl, mpl)
        self._distinct.add(round(mpl, 6))

    def reset(self) -> None:
        """Discard all observations (on a detected workload change)."""
        self.__init__()

    @property
    def min_mpl_tried(self) -> float:
        """Smallest MPL observed so far."""
        return self._min_mpl

    @property
    def max_mpl_tried(self) -> float:
        """Largest MPL observed so far."""
        return self._max_mpl

    @property
    def distinct_mpls(self) -> int:
        """Number of distinct MPL values observed."""
        return len(self._distinct)

    # ------------------------------------------------------------------
    def fit(self) -> Optional[Tuple[float, float, float]]:
        """Solve the least-squares normal equations for (a, b, c).

        Returns None when fewer than three distinct MPLs have been
        observed (the system of equations is then singular).
        """
        if self.count < 3 or len(self._distinct) < 3:
            return None
        normal_matrix = np.array(
            [
                [self.count, self.sum_mpl, self.sum_mpl2],
                [self.sum_mpl, self.sum_mpl2, self.sum_mpl3],
                [self.sum_mpl2, self.sum_mpl3, self.sum_mpl4],
            ]
        )
        rhs = np.array([self.sum_miss, self.sum_mpl_miss, self.sum_mpl2_miss])
        try:
            c, b, a = np.linalg.solve(normal_matrix, rhs)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(normal_matrix, rhs, rcond=None)
            c, b, a = solution
        if not all(math.isfinite(x) for x in (a, b, c)):
            return None
        return (float(a), float(b), float(c))

    def project(self) -> ProjectionResult:
        """Fit, classify, and suggest a target MPL."""
        coefficients = self.fit()
        if coefficients is None:
            return ProjectionResult(CurveType.INSUFFICIENT, None)
        a, b, c = coefficients
        low, high = self._min_mpl, self._max_mpl
        slope_low = 2.0 * a * low + b
        slope_high = 2.0 * a * high + b

        if abs(a) < self.CURVATURE_EPS:
            # Effectively a line: monotone by the sign of its slope.
            if b < -self.SLOPE_EPS:
                return ProjectionResult(
                    CurveType.DECREASING, self._one_above(high), coefficients
                )
            if b > self.SLOPE_EPS:
                return ProjectionResult(
                    CurveType.INCREASING, self._one_below(low), coefficients
                )
            return ProjectionResult(CurveType.HILL, None, coefficients)

        vertex = -b / (2.0 * a)
        if a > 0 and low <= vertex <= high:
            # Type 1: a bowl with an interior minimum.
            return ProjectionResult(
                CurveType.BOWL, max(1, int(round(vertex))), coefficients
            )
        if slope_low <= 0 and slope_high <= 0:
            # Type 2: decreasing throughout the range tried.
            return ProjectionResult(
                CurveType.DECREASING, self._one_above(high), coefficients
            )
        if slope_low >= 0 and slope_high >= 0:
            # Type 3: increasing throughout the range tried.
            return ProjectionResult(
                CurveType.INCREASING, self._one_below(low), coefficients
            )
        # Type 4: a hill (interior maximum) -- noise artefact.
        return ProjectionResult(CurveType.HILL, None, coefficients)

    # ------------------------------------------------------------------
    @staticmethod
    def _one_above(high: float) -> int:
        return max(1, int(math.floor(high)) + 1)

    @staticmethod
    def _one_below(low: float) -> int:
        return max(1, int(math.ceil(low)) - 1)
