"""Large-sample statistical tests [Devo91] used by PMM.

PMM guards two kinds of decisions with hypothesis tests:

* the Max -> MinMax switch (conditions 3 and 4 of Section 3.2) uses a
  one-sided large-sample test that a mean is positive, at confidence
  ``AdaptConfLevel``;
* workload-change detection (Section 3.3) uses a two-sided two-sample
  test that two batch means differ, at confidence ``ChangeConfLevel``.

Both are z tests, valid for the "large" samples PMM accumulates (a
batch is ``SampleSize`` = 30 queries by default).  With fewer than
:data:`MIN_SAMPLES` observations the tests conservatively report "not
significant", which matches the paper's bias toward *not* reacting to
noise.
"""

from __future__ import annotations

import math

from repro.sim.monitor import Tally
from repro.sim.statmath import normal_ppf

#: Minimum sample size for the normal approximation to be trusted.
MIN_SAMPLES = 20


def mean_significantly_positive(tally: Tally, confidence: float) -> bool:
    """One-sided large-sample test of ``H1: mean > 0``.

    Returns True when the sample mean is significantly positive at the
    given confidence level.  Degenerate samples (too few observations,
    or zero variance) fall back on the sign of the mean only when every
    observation was bounded away from zero (zero variance with a
    positive mean).
    """
    _validate_confidence(confidence)
    if tally.count < MIN_SAMPLES:
        return False
    std = tally.std()
    mean = tally.mean()
    if std == 0.0:
        return mean > 0.0
    z = mean / (std / math.sqrt(tally.count))
    return z > normal_ppf(confidence)


def mean_difference_significant(
    sample_a: Tally, sample_b: Tally, confidence: float
) -> bool:
    """Two-sided two-sample large-sample test of ``H1: mean_a != mean_b``.

    Used by the workload-change detector to compare a characteristic's
    present value against its last observed value.
    """
    _validate_confidence(confidence)
    if sample_a.count < MIN_SAMPLES or sample_b.count < MIN_SAMPLES:
        return False
    variance_term = sample_a.variance() / sample_a.count + sample_b.variance() / sample_b.count
    difference = sample_a.mean() - sample_b.mean()
    if variance_term <= 0.0:
        return difference != 0.0
    z = difference / math.sqrt(variance_term)
    # Two-sided: split the rejection mass between the tails.
    return abs(z) > normal_ppf(0.5 + confidence / 2.0)


def _validate_confidence(confidence: float) -> None:
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence level must lie in (0.5, 1), got {confidence}")
