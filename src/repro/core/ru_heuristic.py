"""The resource-utilisation heuristic (Section 3.1.2).

When the miss-ratio projection cannot produce a target MPL (fewer than
three observations, or a hill-shaped fit), PMM extrapolates from the
bottleneck resource's utilisation:

    MPL_new = (UtilLow + UtilHigh) / (2 * Util_current) * MPL_current

``Util_current`` is *not* the most recent reading -- random workload
fluctuations make single batches unreliable -- but the value at the
current MPL of a straight line fitted by least squares through all
(MPL, utilisation) pairs observed so far.  Only the running sums
k, Σmpl, Σmpl², Σutil, Σ(mpl·util) are stored, as in the paper.
"""

from __future__ import annotations

import math
from typing import Optional


class UtilizationLine:
    """Least-squares line through (MPL, bottleneck-utilisation) pairs."""

    def __init__(self):
        self.count = 0
        self.sum_mpl = 0.0
        self.sum_mpl2 = 0.0
        self.sum_util = 0.0
        self.sum_mpl_util = 0.0

    def observe(self, mpl: float, utilization: float) -> None:
        """Record one batch's (MPL, utilisation) pair."""
        if mpl <= 0:
            raise ValueError(f"MPL must be positive, got {mpl}")
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilisation must lie in [0, 1], got {utilization}")
        self.count += 1
        self.sum_mpl += mpl
        self.sum_mpl2 += mpl * mpl
        self.sum_util += utilization
        self.sum_mpl_util += mpl * utilization

    def reset(self) -> None:
        """Discard all observations (on a detected workload change)."""
        self.__init__()

    def predict(self, mpl: float) -> Optional[float]:
        """Utilisation the fitted line predicts at ``mpl``.

        None when fewer than two observations exist or every
        observation shares a single MPL (the slope is then undefined).
        """
        if self.count < 2:
            return None
        denominator = self.count * self.sum_mpl2 - self.sum_mpl**2
        if abs(denominator) < 1e-12:
            return None
        slope = (self.count * self.sum_mpl_util - self.sum_mpl * self.sum_util) / denominator
        intercept = (self.sum_util - slope * self.sum_mpl) / self.count
        return intercept + slope * mpl


class RUHeuristic:
    """The MPL extrapolation formula with its utilisation smoothing."""

    #: Utilisation floor: protects the formula from division blow-ups
    #: in a nearly idle system (the suggested MPL is capped anyway).
    UTIL_FLOOR = 0.02
    #: Cap on the multiplicative step the heuristic may take at once;
    #: the linearity assumption does not hold far from the current MPL.
    MAX_GROWTH = 8.0

    def __init__(self, util_low: float, util_high: float):
        if not 0.0 < util_low < util_high <= 1.0:
            raise ValueError(
                f"need 0 < UtilLow < UtilHigh <= 1, got [{util_low}, {util_high}]"
            )
        self.util_low = util_low
        self.util_high = util_high
        self.line = UtilizationLine()

    def observe(self, mpl: float, utilization: float) -> None:
        """Feed one batch's (MPL, bottleneck utilisation) pair."""
        self.line.observe(mpl, min(1.0, utilization))

    def reset(self) -> None:
        """Discard accumulated utilisation statistics."""
        self.line.reset()

    def recommend(self, current_mpl: float, current_utilization: float) -> int:
        """Target MPL expected to land utilisation mid-range.

        Uses the fitted line's value at the current MPL when available,
        falling back on the raw current reading otherwise.
        """
        if current_mpl <= 0:
            raise ValueError(f"current MPL must be positive, got {current_mpl}")
        smoothed = self.line.predict(current_mpl)
        utilization = smoothed if smoothed is not None else current_utilization
        utilization = min(1.0, max(self.UTIL_FLOOR, utilization))
        midpoint = (self.util_low + self.util_high) / 2.0
        ratio = min(self.MAX_GROWTH, midpoint / utilization)
        target = ratio * current_mpl
        return max(1, int(round(target)))

    def in_desirable_range(self, utilization: float) -> bool:
        """Whether utilisation already sits inside [UtilLow, UtilHigh]."""
        return self.util_low <= utilization <= self.util_high
