"""The PMM controller (Section 3).

PMM starts in **Max** mode.  After every ``SampleSize`` departures it:

1. runs the workload-change detector and restarts itself on a change;
2. records the batch's (MPL, miss ratio) pair into the miss-ratio
   projection and its (MPL, bottleneck utilisation) pair into the RU
   heuristic's line (Max-mode batches record the *realized* MPL, since
   Max imposes no explicit limit; MinMax-mode batches record the target
   MPL, as in the paper's Figure 1 walk-through);
3. in Max mode, tests the four switch conditions and moves to
   **MinMax** mode with an RU-suggested target when they all hold;
4. in MinMax mode, recomputes the target via the projection (falling
   back on the RU heuristic), and **reverts to Max** when the target
   drops to or below the average MPL that Max mode realized.

The switch conditions (Section 3.2): the batch had at least one miss;
every resource is below ``UtilLow``; the mean admission waiting time is
significantly positive; and the mean (time constraint - execution time)
of completed queries is significantly positive -- the latter two via
large-sample tests at ``AdaptConfLevel`` over the statistics gathered
since the current mode began.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import QueryDemand, allocate_max, allocate_minmax
from repro.core.change_detection import WorkloadChangeDetector, WorkloadSample
from repro.core.projection import CurveType, MissRatioProjection
from repro.core.ru_heuristic import RUHeuristic
from repro.core.stats_tests import mean_significantly_positive
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.rtdbs.config import PMMParams
from repro.sim.monitor import Tally

MODE_MAX = "max"
MODE_MINMAX = "minmax"

#: Floor used when a batch's realized MPL is ~0 (idle system); the
#: regressions need strictly positive MPL values.
_MPL_FLOOR = 0.1


class PMM(MemoryPolicy):
    """Priority Memory Management, as a pluggable memory policy."""

    name = "PMM"

    def __init__(self, params: Optional[PMMParams] = None):
        self.params = params or PMMParams()
        self.params.validate()
        self.mode: str = MODE_MAX
        self.target: Optional[int] = None
        self.projection = MissRatioProjection()
        self.ru = RUHeuristic(self.params.util_low, self.params.util_high)
        self.change_detector = WorkloadChangeDetector(self.params.change_conf_level)

        # Mode-scoped accumulators for the switch conditions.
        self._waiting = Tally()
        self._slack_minus_exec = Tally()
        #: Realized MPL per Max-mode batch (the revert threshold).
        self._max_mode_mpl = Tally()

        # Introspection / figures.
        self.restarts = 0
        self.mode_switches: List[Tuple[float, str]] = []
        #: (time, target-or-realized MPL) trace -- Figures 6 and 15.
        self.mpl_trace: List[Tuple[float, float]] = []
        #: (time, mode) trace.
        self.mode_trace: List[Tuple[float, str]] = []
        self.batches_seen = 0

    # ------------------------------------------------------------------
    # MemoryPolicy interface
    # ------------------------------------------------------------------
    def allocate(
        self, demands: Sequence[QueryDemand], memory: int, now: float = 0.0
    ) -> Dict[int, int]:
        """Max or MinMax-(target) allocation, per the current mode."""
        if self.mode == MODE_MAX:
            return allocate_max(demands, memory)
        return allocate_minmax(demands, memory, self.target)

    def on_departure(self, record: DepartureRecord) -> None:
        """Stream per-query feedback into PMM's accumulators."""
        self.change_detector.observe(
            WorkloadSample(
                max_memory_demand=record.max_demand,
                operand_io_count=record.operand_io_count,
                time_constraint=record.time_constraint,
            )
        )
        self._waiting.record(record.waiting_time)
        if not record.missed:
            self._slack_minus_exec.record(record.time_constraint - record.execution_time)

    def on_batch(self, stats: BatchStats) -> bool:
        """Re-evaluate MPL target and allocation strategy."""
        self.batches_seen += 1

        # (1) Workload change: discard everything and restart.
        if self.change_detector.end_batch():
            self._restart(stats.time)
            return True

        # (2) Feed the regressions.
        observed_mpl = self._observed_mpl(stats)
        self.projection.observe(observed_mpl, stats.miss_ratio)
        self.ru.observe(observed_mpl, stats.bottleneck_utilization)

        changed = False
        if self.mode == MODE_MAX:
            self._max_mode_mpl.record(stats.realized_mpl)
            if self._should_switch_to_minmax(stats):
                self._enter_minmax(stats)
                changed = True
        else:
            changed = self._retarget_minmax(stats)

        self.mpl_trace.append(
            (stats.time, float(self.target) if self.target else stats.realized_mpl)
        )
        self.mode_trace.append((stats.time, self.mode))
        return changed

    def reset(self) -> None:
        """Forget everything (fresh run)."""
        self._restart(0.0)
        self.restarts = 0
        self.mode_switches.clear()
        self.mpl_trace.clear()
        self.mode_trace.clear()
        self.batches_seen = 0
        self.change_detector.reset()

    @property
    def target_mpl(self) -> Optional[int]:
        """The MinMax-mode MPL limit (None while in Max mode)."""
        return self.target if self.mode == MODE_MINMAX else None

    def describe(self) -> str:
        """One-line state summary."""
        if self.mode == MODE_MAX:
            return "PMM[mode=Max]"
        return f"PMM[mode=MinMax, target={self.target}]"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _observed_mpl(self, stats: BatchStats) -> float:
        if self.mode == MODE_MINMAX and self.target:
            return float(self.target)
        return max(_MPL_FLOOR, stats.realized_mpl)

    def _should_switch_to_minmax(self, stats: BatchStats) -> bool:
        """The four conditions of Section 3.2, all required."""
        if stats.missed < 1:
            return False  # (1) no deadline was missed
        if stats.bottleneck_utilization >= self.params.util_low:
            return False  # (2) some resource may be a bottleneck
        if not mean_significantly_positive(self._waiting, self.params.adapt_conf_level):
            return False  # (3) no significant memory contention
        if not mean_significantly_positive(
            self._slack_minus_exec, self.params.adapt_conf_level
        ):
            return False  # (4) longer executions would be infeasible
        return True

    def _enter_minmax(self, stats: BatchStats) -> None:
        self.mode = MODE_MINMAX
        current_mpl = max(_MPL_FLOOR, stats.realized_mpl)
        self.target = self.ru.recommend(current_mpl, stats.bottleneck_utilization)
        self.mode_switches.append((stats.time, MODE_MINMAX))
        self._reset_mode_accumulators()

    def _revert_to_max(self, time: float) -> None:
        self.mode = MODE_MAX
        self.target = None
        self.mode_switches.append((time, MODE_MAX))
        self._reset_mode_accumulators()

    def _retarget_minmax(self, stats: BatchStats) -> bool:
        assert self.target is not None
        projection = self.projection.project()
        ru_target = self.ru.recommend(
            float(self.target), stats.bottleneck_utilization
        )
        if projection.curve_type is CurveType.BOWL:
            new_target = projection.target
        elif projection.curve_type is CurveType.DECREASING:
            new_target = max(projection.target, ru_target)
        elif projection.curve_type is CurveType.INCREASING:
            new_target = min(projection.target, ru_target)
        else:  # HILL or INSUFFICIENT: the projection failed
            new_target = ru_target
        new_target = max(1, int(new_target))

        # Revert test: no point running MinMax at an MPL that Max mode
        # achieved anyway.
        max_mode_average = self._max_mode_mpl.mean()
        if self._max_mode_mpl.count and new_target <= max_mode_average:
            self._revert_to_max(stats.time)
            return True
        if new_target != self.target:
            self.target = new_target
            return True
        return False

    def _restart(self, time: float) -> None:
        self.mode = MODE_MAX
        self.target = None
        self.projection.reset()
        self.ru.reset()
        self._max_mode_mpl.reset()
        self._reset_mode_accumulators()
        self.restarts += 1
        self.mode_switches.append((time, "restart"))

    def _reset_mode_accumulators(self) -> None:
        self._waiting.reset()
        self._slack_minus_exec.reset()
