"""Workload-change detection (Section 3.3).

PMM tailors its MPL and allocation strategy to the workload, so it must
notice when the workload changes and discard stale statistics.  It
monitors three characteristics of completed queries:

1. the average **maximum memory demand**;
2. the average number of **I/Os to read the operand relation(s)** --
   temp-file I/O is excluded because it depends on allocation
   decisions, not on the workload;
3. the average **normalised time constraint**: the time constraint
   (deadline minus arrival) divided by the operand I/O count.

After every ``SampleSize`` completions each characteristic's current
batch is compared with its previous batch using a two-sided
large-sample test at ``ChangeConfLevel``; a significant difference on
any characteristic reports a change, which makes PMM restart itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.stats_tests import mean_difference_significant
from repro.sim.monitor import Tally


@dataclass(frozen=True)
class WorkloadSample:
    """One departed query's monitored characteristics."""

    max_memory_demand: int
    operand_io_count: int
    time_constraint: float

    @property
    def normalized_constraint(self) -> float:
        """Time constraint per operand I/O (characteristic 3)."""
        return self.time_constraint / max(1, self.operand_io_count)


class WorkloadChangeDetector:
    """Batch-over-batch comparison of the three characteristics."""

    CHARACTERISTICS = ("memory_demand", "operand_io", "normalized_constraint")

    def __init__(self, confidence: float):
        if not 0.5 < confidence < 1.0:
            raise ValueError(f"confidence must lie in (0.5, 1), got {confidence}")
        self.confidence = confidence
        self._current = {name: Tally() for name in self.CHARACTERISTICS}
        self._previous: Optional[dict] = None
        #: Number of changes detected over the detector's lifetime.
        self.changes_detected = 0

    def observe(self, sample: WorkloadSample) -> None:
        """Record one departed query."""
        self._current["memory_demand"].record(float(sample.max_memory_demand))
        self._current["operand_io"].record(float(sample.operand_io_count))
        self._current["normalized_constraint"].record(sample.normalized_constraint)

    def end_batch(self) -> bool:
        """Close the batch; True when a workload change is detected.

        The first batch only establishes the reference; detection
        starts with the second.  After a detected change the reference
        resets so PMM re-learns the new workload from scratch.
        """
        current = self._current
        self._current = {name: Tally() for name in self.CHARACTERISTICS}
        if self._previous is None:
            self._previous = current
            return False
        changed = any(
            mean_difference_significant(current[name], self._previous[name], self.confidence)
            for name in self.CHARACTERISTICS
        )
        if changed:
            self.changes_detected += 1
            self._previous = None  # re-learn the new workload
        else:
            self._previous = current
        return changed

    def reset(self) -> None:
        """Full restart (used when PMM restarts for other reasons)."""
        self._current = {name: Tally() for name in self.CHARACTERISTICS}
        self._previous = None
