"""Priority Memory Management (PMM) -- the paper's contribution.

PMM (Section 3) couples an **admission control** component that picks a
target multiprogramming level (MPL) with a **memory allocation**
component that switches between the Max and MinMax strategies, both
driven by Earliest Deadline priorities and past system behaviour:

* :mod:`~repro.core.projection` -- the miss-ratio projection method: a
  concave quadratic fitted by least squares over running sums.
* :mod:`~repro.core.ru_heuristic` -- the resource-utilisation fallback
  heuristic.
* :mod:`~repro.core.allocation` -- the Max, two-pass MinMax, and
  Proportional allocation procedures.
* :mod:`~repro.core.stats_tests` -- the large-sample tests [Devo91]
  guarding adaptation decisions.
* :mod:`~repro.core.change_detection` -- the workload-change monitor.
* :mod:`~repro.core.pmm` -- the controller tying it all together.
* :mod:`~repro.core.devices` -- the host-agnostic device engine (ED
  queue selection, prefetch cache, LRU data cache, service pricing)
  shared by the simulator and the live serving layer.
"""

from repro.core.allocation import (
    QueryDemand,
    allocate_max,
    allocate_minmax,
    allocate_proportional,
)
from repro.core.change_detection import WorkloadChangeDetector, WorkloadSample
from repro.core.devices import DeviceCore, LRUDataCache, PrefetchCache
from repro.core.fairness import ClassMissTracker, FairPMM
from repro.core.pmm import PMM, BatchStats, DepartureRecord
from repro.core.projection import CurveType, MissRatioProjection, ProjectionResult
from repro.core.ru_heuristic import RUHeuristic, UtilizationLine
from repro.core.stats_tests import mean_difference_significant, mean_significantly_positive

__all__ = [
    "BatchStats",
    "ClassMissTracker",
    "CurveType",
    "DepartureRecord",
    "DeviceCore",
    "LRUDataCache",
    "PrefetchCache",
    "FairPMM",
    "MissRatioProjection",
    "PMM",
    "ProjectionResult",
    "QueryDemand",
    "RUHeuristic",
    "UtilizationLine",
    "WorkloadChangeDetector",
    "WorkloadSample",
    "allocate_max",
    "allocate_minmax",
    "allocate_proportional",
    "mean_difference_significant",
    "mean_significantly_positive",
]
