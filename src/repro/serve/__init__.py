"""repro.serve -- the live serving layer.

The simulator answers "what *would* these policies do"; this package
runs them for real: an asyncio admission gateway
(:class:`~repro.serve.gateway.LiveGateway`) drives the same
:class:`~repro.core.broker.MemoryBroker` and
:class:`~repro.policies.base.MemoryPolicy` objects as the DES against
real concurrent queries -- actual
:class:`~repro.queries.sort.ExternalSortOperator` /
:class:`~repro.queries.hash_join.HashJoinOperator` request streams
executed over in-memory relations in a bounded worker pool, with firm
deadlines and tracked grant enforcement.

Entry points:

* ``python -m repro.serve live-shootout`` -- every policy serves the
  same generated scenario; live miss ratios beside the simulator's
  prediction (see :func:`repro.serve.shootout.live_shootout`);
* ``python -m repro.serve replay`` -- one policy, one scenario, full
  metrics;
* ``python -m repro.serve serve`` -- a JSON-lines TCP server accepting
  ad-hoc query submissions with deadlines
  (:class:`~repro.serve.server.LiveServer`).
"""

from repro.serve.dataplane import (
    GrantOversubscribedError,
    LiveBufferPool,
    LiveDataPlane,
    LiveDisk,
    PageStore,
    TrackedAllocator,
)
from repro.serve.gateway import LiveGateway, LiveReport, run_live
from repro.serve.server import LiveServer
from repro.serve.shootout import (
    LiveShootoutReport,
    find_multitenant_scenario,
    live_shootout,
)
from repro.serve.workload import (
    LiveArrival,
    LiveSchedule,
    build_schedule,
    make_operator,
    tag_tenants,
)

__all__ = [
    "GrantOversubscribedError",
    "LiveArrival",
    "LiveBufferPool",
    "LiveDataPlane",
    "LiveDisk",
    "LiveGateway",
    "LiveReport",
    "LiveSchedule",
    "LiveServer",
    "LiveShootoutReport",
    "PageStore",
    "TrackedAllocator",
    "build_schedule",
    "find_multitenant_scenario",
    "live_shootout",
    "make_operator",
    "run_live",
    "tag_tenants",
]
