"""repro.serve -- the live serving layer.

The simulator answers "what *would* these policies do"; this package
runs them for real: an asyncio admission gateway
(:class:`~repro.serve.gateway.LiveGateway`) drives the same
:class:`~repro.core.broker.MemoryBroker` and
:class:`~repro.policies.base.MemoryPolicy` objects as the DES against
real concurrent queries -- actual
:class:`~repro.queries.sort.ExternalSortOperator` /
:class:`~repro.queries.hash_join.HashJoinOperator` request streams
executed over in-memory relations in a bounded worker pool, with firm
deadlines and tracked grant enforcement.

Entry points:

* ``python -m repro.serve live-shootout`` -- every policy serves the
  same generated scenario; live miss ratios beside the simulator's
  prediction (see :func:`repro.serve.shootout.live_shootout`);
* ``python -m repro.serve replay`` -- one policy, one scenario, full
  metrics;
* ``python -m repro.serve serve`` -- a JSON-lines TCP server accepting
  ad-hoc query submissions with deadlines
  (:class:`~repro.serve.server.LiveServer`);
* ``python -m repro.serve route`` -- a consistent-hash front-end
  router over N shard subprocesses, each a full serve stack on a
  slice of the scenario's disks and pool pages, with a rebalancer
  migrating tenants off skewed shards
  (:class:`~repro.serve.router.ShardRouter`,
  :mod:`repro.serve.shard`).
"""

from repro.serve.dataplane import (
    GrantOversubscribedError,
    LiveBufferPool,
    LiveDataPlane,
    LiveDisk,
    PageStore,
    TrackedAllocator,
)
from repro.serve.gateway import LiveGateway, LiveReport, run_live
from repro.serve.router import HashRing, Migration, ShardLink, ShardRouter
from repro.serve.server import LiveServer
from repro.serve.shard import ShardProcess, launch_shards, shard_config
from repro.serve.shootout import (
    LiveShootoutReport,
    find_multitenant_scenario,
    live_shootout,
)
from repro.serve.workload import (
    LiveArrival,
    LiveSchedule,
    build_schedule,
    make_operator,
    submit_request,
    tag_tenants,
)

__all__ = [
    "GrantOversubscribedError",
    "HashRing",
    "LiveArrival",
    "LiveBufferPool",
    "LiveDataPlane",
    "LiveDisk",
    "LiveGateway",
    "LiveReport",
    "LiveSchedule",
    "LiveServer",
    "LiveShootoutReport",
    "Migration",
    "PageStore",
    "ShardLink",
    "ShardProcess",
    "ShardRouter",
    "TrackedAllocator",
    "build_schedule",
    "find_multitenant_scenario",
    "launch_shards",
    "live_shootout",
    "make_operator",
    "run_live",
    "shard_config",
    "submit_request",
    "tag_tenants",
]
