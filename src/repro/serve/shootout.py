"""The live shootout: every policy serves the same real workload.

``live_shootout`` replays one generated scenario (see
:mod:`repro.scenarios`) through the live gateway once per policy --
identical open-loop traffic each time, since the schedule is computed
from the scenario seed -- and sets the measured miss ratios beside the
DES simulator's prediction for the *same* workload (fetched through
the cached parallel experiment engine).  Cross-checks:

* **traffic determinism** -- every policy must have served the exact
  same arrival count (the schedule is policy-independent by
  construction; a mismatch means the gateway lost or duplicated
  queries);
* **allocation conservation** -- the tracked allocator raised on any
  oversubscribed decision during the runs (reaching the report at all
  certifies every decision respected the pool);
* **fidelity** (primary) -- when the simulator predictions ran against
  the same unclipped traffic, every policy's live miss ratio must land
  within ``FIDELITY_TOLERANCE`` of its DES prediction.  Both hosts run
  the same :class:`~repro.core.devices.DeviceCore` physics, so the
  remaining delta is wall-clock pacing jitter -- a hard per-policy
  bound on it is the strongest cross-substrate check we have;
* **qualitative ordering** (secondary) -- Max's insistence on maximum
  allocations is the paper's worst strategy under load (Section 5.1);
  live, MinMax must not miss more than Max beyond a tolerance.  The
  fidelity gate subsumes this when predictions are available; the
  ordering check still guards ``--no-predict`` runs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import (
    Column,
    PolicyRow,
    ShootoutReport,
    check_fail,
    check_pass,
    format_table,
)
from repro.policies import DEFAULT_POLICIES
from repro.scenarios import Scenario, ScenarioGenerator
from repro.serve.faults import FaultSchedule
from repro.serve.gateway import (
    LiveClassStats,
    LiveGateway,
    LiveReport,
    _quantize,
)
from repro.serve.workload import build_schedule, submit_request, tag_tenants

#: Hard per-policy bound on |live miss ratio - DES prediction|.  The
#: primary fidelity gate: both hosts share one DeviceCore, so anything
#: beyond wall-clock pacing jitter is a genuine divergence.  Applied
#: only when the predictions saw the same traffic (no ``max_arrivals``
#: clipping, ``predict=True``).
FIDELITY_TOLERANCE = 0.05

#: Live ordering tolerance: one wall-clock replay per policy is a far
#: smaller sample than a simulated hour, so MinMax may exceed Max by
#: this much before the shootout fails.  Secondary to the fidelity
#: gate -- it still guards ``--no-predict`` runs.
LIVE_ORDERING_TOLERANCE = 0.15

#: How many multitenant indices to scan for a ``--tenants N`` match.
TENANT_SCAN_LIMIT = 64


def find_multitenant_scenario(
    generator: ScenarioGenerator, tenants: int, start_index: int = 0
) -> Scenario:
    """The first multitenant scenario with exactly ``tenants`` classes.

    Deterministic in (generator seed, tenants, start_index): indices
    are scanned in order, so a fixed seed always lands on the same
    scenario -- ``--tenants 2`` replays are reproducible.
    """
    if tenants < 2:
        raise ValueError(f"need at least 2 tenants, got {tenants}")
    for index in range(start_index, start_index + TENANT_SCAN_LIMIT):
        scenario = generator.generate("multitenant", index)
        if len(scenario.config.workload.classes) == tenants:
            return scenario
    raise ValueError(
        f"no multitenant scenario with {tenants} tenants in indices "
        f"[{start_index}, {start_index + TENANT_SCAN_LIMIT})"
    )


@dataclass
class LiveShootoutReport:
    """Live results, simulator predictions, and cross-check failures."""

    scenario: Scenario
    policies: Sequence[str]
    live: Dict[str, LiveReport]
    predicted: Dict[str, float]
    time_scale: float
    failures: List[str] = field(default_factory=list)
    #: Cross-check verdicts (``{name, ok, detail}``) for ``--json``.
    checks: List[Dict[str, object]] = field(default_factory=list)
    #: DES-predicted shared-pool hit ratio per policy (the live pool's
    #: contention cross-check column).
    predicted_pool_hit: Dict[str, float] = field(default_factory=dict)
    #: Tenant count when the shootout ran in ``--tenants`` mode.
    tenants: Optional[int] = None
    #: True when ``max_arrivals`` clipped the live traffic -- the DES
    #: predictions then saw different traffic and the fidelity gate
    #: does not apply.
    clipped: bool = False
    #: Shard count when the shootout ran through the consistent-hash
    #: router (``--shards N``); ``None`` on the single-process path.
    shards: Optional[int] = None
    #: Per-policy final router stats (placement, migrations, per-shard
    #: stats, conservation) in sharded mode.
    router_stats: Dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def miss_delta(self, policy: str) -> float:
        """Live miss ratio minus the DES prediction (NaN if no
        prediction ran for the policy)."""
        predicted = self.predicted.get(policy)
        if predicted is None:
            return float("nan")
        return self.live[policy].miss_ratio - predicted

    def unified(self) -> ShootoutReport:
        """Project into the shared :class:`ShootoutReport` surface."""
        columns = [
            Column("live_miss", digits=3),
            Column("sim_miss", digits=3),
            Column("delta", digits=3),
            Column("pool_hit", digits=3),
            Column("sim_hit", digits=3),
            Column("disk_q_s", digits=1),
            Column("served"),
            Column("completed"),
            Column("mpl", digits=2),
            Column("qps", digits=1),
            Column("decisions_per_sec", header="decisions/s", digits=1),
            Column("decide_us", digits=1),
        ]
        rows = []
        for policy in self.policies:
            report = self.live[policy]
            rows.append(
                PolicyRow(
                    policy=report.policy,
                    values={
                        "live_miss": report.miss_ratio,
                        "sim_miss": self.predicted.get(policy, float("nan")),
                        "delta": self.miss_delta(policy),
                        "pool_hit": report.pool_hit_ratio,
                        "sim_hit": self.predicted_pool_hit.get(
                            policy, float("nan")
                        ),
                        "disk_q_s": report.disk_queue_sim_seconds,
                        "served": report.served,
                        "completed": report.completed,
                        "mpl": report.observed_mpl,
                        "qps": report.queries_per_sec,
                        "decisions_per_sec": report.decisions_per_sec,
                        "decide_us": report.decision_latency_mean_us,
                    },
                )
            )
        title = (
            f"Live shootout: {self.scenario.name} "
            f"({self.scenario.content_hash[:10]}), "
            f"time_scale={self.time_scale}"
        )
        if self.tenants:
            title += f", tenants={self.tenants}"
        if self.shards:
            title += f", shards={self.shards} (routed)"
        sections = []
        if self.tenants:
            sections.append(self._render_tenants())
        if self.shards:
            sections.append(self._render_shards())
        return ShootoutReport(
            kind="live-shootout",
            title=title,
            columns=columns,
            rows=rows,
            meta={
                "scenario": self.scenario.name,
                "scenario_hash": self.scenario.content_hash,
                "time_scale": self.time_scale,
                "tenants": self.tenants,
                "shards": self.shards,
                "clipped": self.clipped,
            },
            sections=sections,
            checks=self.checks,
            failures=self.failures,
            success_line="All live cross-checks passed.",
        )

    def render(self) -> str:
        return self.unified().render()

    def to_json(self) -> Dict[str, object]:
        return self.unified().to_json()

    def save_json(self, path) -> None:
        self.unified().save_json(path)

    def _render_tenants(self) -> str:
        """Per-tenant live served/missed counts, one row per policy."""
        names = sorted(
            {
                tenant
                for report in self.live.values()
                for tenant in report.per_tenant
            }
        )
        headers = ["policy"] + [f"{name} s/m" for name in names]
        rows = []
        for policy in self.policies:
            report = self.live[policy]
            row = [report.policy]
            for name in names:
                stats = report.per_tenant.get(name)
                row.append(
                    f"{stats.served}/{stats.missed}" if stats is not None else "-"
                )
            rows.append(row)
        return format_table(
            headers, rows, title="Per-tenant served/missed (shared pool + disks)"
        )

    def _render_shards(self) -> str:
        """Per-shard miss ratios, conservation, and the migration log,
        one block per policy (sharded mode)."""
        headers = [
            "policy",
            "shard",
            "arrivals",
            "served",
            "missed",
            "miss",
            "pool_hit",
            "disk_q_s",
        ]
        rows = []
        for policy in self.policies:
            stats = self.router_stats.get(policy, {})
            for shard_stats in stats.get("shards", []):
                shard = shard_stats.get("shard") or {}
                rows.append(
                    [
                        policy,
                        f"{shard.get('id', '?')}/{shard.get('of', '?')}",
                        shard_stats.get("arrivals", 0),
                        shard_stats.get("served", 0),
                        shard_stats.get("missed", 0),
                        shard_stats.get("miss_ratio", 0.0),
                        shard_stats.get("pool_hit_ratio", 0.0),
                        shard_stats.get("disk_queue_s", 0.0),
                    ]
                )
        table = format_table(
            headers, rows, title="Per-shard outcomes (routed farm)"
        )
        lines = []
        for policy in self.policies:
            stats = self.router_stats.get(policy, {})
            conservation = stats.get("conservation", {})
            migrations = stats.get("migrations", [])
            moved = (
                "; ".join(
                    f"{m['tenant']}: shard{m['from']}->shard{m['to']} "
                    f"@{m['at_wall']}s"
                    for m in migrations
                )
                or "none"
            )
            lines.append(
                f"  {policy}: router arrivals "
                f"{conservation.get('router_arrivals')} == shard arrivals "
                f"{conservation.get('shard_arrivals')} == settled "
                f"{conservation.get('settled')} "
                f"(conserved={conservation.get('complete')}); "
                f"migrations: {moved}"
            )
        return table + "\n\nConservation + rebalancing:\n" + "\n".join(lines)


def live_shootout(
    policies: Sequence[str] = DEFAULT_POLICIES,
    family: str = "mix",
    index: int = 0,
    scenario_seed: int = 0,
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = True,
    predict: bool = True,
    jobs: Optional[int] = None,
    tenants: Optional[int] = None,
    shards: Optional[int] = None,
) -> LiveShootoutReport:
    """Serve one scenario live under every policy and cross-check.

    ``predict=True`` also runs (or fetches from the cache) the DES
    simulation of the same scenario per policy, for the side-by-side
    prediction columns (miss ratio and shared-pool hit ratio); the
    simulated horizon is clipped to ``horizon`` when given so both
    substrates see the same traffic.

    ``tenants=N`` switches to the multitenant scenario family (the
    first scenario at or after ``index`` with exactly ``N`` per-tenant
    query classes), tags every arrival with its owning tenant, and
    adds per-tenant cross-checks: all tenants share one broker, one
    buffer pool, and one disk farm.

    ``shards=N`` (N >= 2, requires ``tenants``) serves the same
    schedule through N in-process shard servers -- each a full
    gateway over a :func:`~repro.serve.shard.shard_config` slice of
    the disks and pool pages -- behind the consistent-hash
    :class:`~repro.serve.router.ShardRouter`.  Every tenant starts
    deliberately *packed on one shard* (the worst-case cold start) so
    the run demonstrates the rebalancer migrating off the skew; the
    cross-checks switch from DES fidelity (the simulator has no
    sharded topology) to conservation: router arrivals == Σ shard
    arrivals == Σ shard (served + shed), per-tenant traffic equal
    across policies, and at least one migration on unclipped runs.
    ``shards=1`` (and ``None``) is the identity: no router, no
    resource split, fidelity gate unchanged.
    """
    generator = ScenarioGenerator(scenario_seed)
    if tenants is not None:
        scenario = find_multitenant_scenario(generator, tenants, index)
    else:
        scenario = generator.generate(family, index)
    config = scenario.config
    policy_list = tuple(policies)
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    routed = shards is not None and shards >= 2
    if routed:
        if tenants is None:
            raise ValueError(
                "--shards needs --tenants N: placement is per tenant"
            )
        predict = False  # no DES prediction models a sharded topology

    predicted: Dict[str, float] = {}
    predicted_pool_hit: Dict[str, float] = {}
    if predict:
        from dataclasses import replace

        from repro.experiments import runner

        specs = []
        for policy in policy_list:
            spec = scenario.run_spec(policy, invariants=invariants)
            if horizon is not None and horizon < config.duration:
                spec = replace(
                    spec, settings=replace(spec.settings, duration=horizon)
                )
            specs.append(spec)
        results = runner.run_many(specs, jobs=jobs)
        predicted = {
            policy: result.miss_ratio
            for policy, result in zip(policy_list, results)
        }
        for policy, result in zip(policy_list, results):
            consulted = result.buffer_hits + result.buffer_misses
            predicted_pool_hit[policy] = (
                result.buffer_hits / consulted if consulted else 0.0
            )

    live: Dict[str, LiveReport] = {}
    router_stats: Dict[str, dict] = {}
    for policy in policy_list:
        if routed:
            from repro.rtdbs.database import Database
            from repro.sim.rng import Streams

            database = Database(
                config.database, config.resources, Streams(config.seed)
            )
            schedule = tag_tenants(
                build_schedule(
                    config,
                    database,
                    horizon=horizon,
                    max_arrivals=max_arrivals,
                )
            )
            # ~6 rebalance windows per run, whatever the time scale.
            rebalance_interval = max(
                0.25, schedule.horizon * time_scale / 6.0
            )
            live[policy], router_stats[policy] = asyncio.run(
                _run_sharded_policy(
                    policy,
                    config,
                    schedule,
                    shards,
                    time_scale=time_scale,
                    workers=workers,
                    invariants=invariants,
                    rebalance_interval=rebalance_interval,
                )
            )
            continue
        gateway = LiveGateway(
            config,
            policy,
            time_scale=time_scale,
            workers=workers,
            invariants=invariants,
        )
        schedule = build_schedule(
            config,
            gateway.dataplane.database,
            horizon=horizon,
            max_arrivals=max_arrivals,
        )
        if tenants is not None:
            schedule = tag_tenants(schedule)
        live[policy] = asyncio.run(gateway.run_schedule(schedule))

    report = LiveShootoutReport(
        scenario=scenario,
        policies=policy_list,
        live=live,
        predicted=predicted,
        time_scale=time_scale,
        predicted_pool_hit=predicted_pool_hit,
        tenants=tenants,
        clipped=max_arrivals is not None,
        shards=shards if routed else None,
        router_stats=router_stats,
    )
    _cross_check(report)
    if routed:
        _cross_check_sharded(report)
    return report


def _cross_check(report: LiveShootoutReport) -> None:
    served_counts = {
        policy: result.served for policy, result in report.live.items()
    }
    if len(set(served_counts.values())) > 1:
        check_fail(
            report,
            "traffic-determinism",
            f"served counts differ across policies: {served_counts} -- the "
            "open-loop schedule is policy-independent, so every policy must "
            "serve the identical traffic",
        )
    for policy, result in report.live.items():
        if result.served != result.arrivals:
            check_fail(
                report,
                "arrival-conservation",
                f"{policy}: {result.arrivals} arrivals but {result.served} "
                "departures -- queries were lost or duplicated",
            )
        if not 0.0 <= result.miss_ratio <= 1.0:
            check_fail(
                report,
                "report-sanity",
                f"{policy}: miss ratio {result.miss_ratio} outside [0, 1]",
            )
        if not 0.0 <= result.pool_hit_ratio <= 1.0:
            check_fail(
                report,
                "report-sanity",
                f"{policy}: shared-pool hit ratio {result.pool_hit_ratio} "
                "outside [0, 1]",
            )
        if any(queued < 0.0 for queued in result.disk_queue):
            check_fail(
                report,
                "report-sanity",
                f"{policy}: negative per-disk queue time {result.disk_queue}",
            )
    if report.tenants:
        _cross_check_tenants(report)
    if report.predicted and not report.clipped:
        # Primary fidelity gate: the predictions saw the identical
        # traffic, so every policy's live miss ratio must track its
        # DES prediction within the hard tolerance.
        for policy in report.policies:
            delta = report.miss_delta(policy)
            if delta != delta:  # NaN: no prediction for this policy
                continue
            if abs(delta) > FIDELITY_TOLERANCE:
                check_fail(
                    report,
                    "fidelity",
                    f"{policy}: live miss ratio "
                    f"{report.live[policy].miss_ratio:.3f} is "
                    f"{delta:+.3f} from the DES prediction "
                    f"{report.predicted[policy]:.3f} "
                    f"(|delta| > {FIDELITY_TOLERANCE}) -- the live plane "
                    "diverged from the shared-core physics",
                )
        check_pass(report, "fidelity")
    # The ordering check needs the full single-pool sample; a routed
    # farm halves (or worse) each broker's traffic, so the small-sample
    # tolerance no longer applies -- conservation is the gate there.
    if report.shards is None and "minmax" in report.live and "max" in report.live:
        minmax_miss = report.live["minmax"].miss_ratio
        max_miss = report.live["max"].miss_ratio
        if minmax_miss > max_miss + LIVE_ORDERING_TOLERANCE:
            check_fail(
                report,
                "live-ordering",
                f"live ordering violated: MinMax miss ratio {minmax_miss:.3f} "
                f"exceeds Max's {max_miss:.3f} by more than "
                f"{LIVE_ORDERING_TOLERANCE} -- the paper's Section 5.1 "
                "ordering inverted on live traffic",
            )
        check_pass(report, "live-ordering")
    for name in ("traffic-determinism", "arrival-conservation", "report-sanity"):
        check_pass(report, name)


async def _run_sharded_policy(
    policy: str,
    config,
    schedule,
    shards: int,
    time_scale: float,
    workers: Optional[int],
    invariants: bool,
    rebalance_interval: float,
) -> Tuple[LiveReport, dict]:
    """One policy's schedule through N in-process shards + the router.

    Every tenant starts packed on the ring shard of the first tenant
    -- the worst-case placement -- so the rebalancer has real skew to
    fix; the returned router stats carry the migration log the
    cross-checks assert on.
    """
    from repro.serve.router import HashRing, ShardRouter
    from repro.serve.server import LiveServer
    from repro.serve.shard import shard_config

    servers: List[LiveServer] = []
    try:
        endpoints = []
        for shard_id in range(shards):
            gateway = LiveGateway(
                shard_config(config, shard_id, shards),
                policy,
                time_scale=time_scale,
                workers=workers,
                invariants=invariants,
            )
            server = LiveServer(gateway, shard=(shard_id, shards))
            host, port = await server.start(port=0)
            servers.append(server)
            endpoints.append((host, port))
        tenant_names = sorted(
            {arrival.tenant for arrival in schedule.arrivals if arrival.tenant}
        )
        ring = HashRing(shards, seed=config.seed)
        hot = ring.place(tenant_names[0]) if tenant_names else 0
        packed = {tenant: hot for tenant in tenant_names}
        router = ShardRouter(
            endpoints,
            ring_seed=config.seed,
            rebalance_interval=rebalance_interval,
            min_skew_arrivals=2,
            placement=packed,
        )
        router_host, router_port = await router.start()
        try:
            await _route_schedule(router_host, router_port, schedule, time_scale)
            final_stats = await router.drain_stats()
        finally:
            await router.close()
    finally:
        for server in servers:
            await server.close()
            server.gateway._finish_report()
    reports = [server.gateway.report for server in servers]
    return _merge_reports(reports, time_scale), final_stats


async def _route_schedule(host, port, schedule, time_scale: float):
    """Replay the open-loop schedule through the router over real TCP.

    One pipelining connection carries every submission; responses come
    back at departure time (out of order) and are matched by the
    request tag.  Returns ``{qid: response}`` once every submission is
    answered.
    """
    from repro.serve.router import LINE_LIMIT

    reader, writer = await asyncio.open_connection(host, port, limit=LINE_LIMIT)
    expected = len(schedule.arrivals)
    responses: Dict[int, dict] = {}

    async def read_responses() -> None:
        while len(responses) < expected:
            line = await reader.readline()
            if not line:
                raise ConnectionError("router connection closed mid-run")
            response = json.loads(line)
            if "error" in response:
                raise RuntimeError(f"router refused a submission: {response}")
            responses[int(response["tag"])] = response

    reader_task = asyncio.ensure_future(read_responses())
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    try:
        for arrival in schedule.arrivals:
            # Same floored pacing as the in-process gateway replay.
            target = t0 + arrival.arrival * time_scale
            while True:
                delay = target - loop.time()
                if delay <= 0.0002:
                    break
                await asyncio.sleep(_quantize(delay))
            request = submit_request(arrival)
            request["tag"] = arrival.qid
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
        await reader_task
    finally:
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
    return responses


def _merge_reports(
    reports: Sequence[LiveReport], time_scale: float
) -> LiveReport:
    """Aggregate per-shard live reports into one farm-wide report.

    Counters sum; wall/sim spans take the max (shards ran
    concurrently); MPL sums (each broker's admitted population is
    disjoint); disk telemetry concatenates in shard order.
    """
    merged = LiveReport(
        policy=reports[0].policy,
        time_scale=time_scale,
        workers=sum(report.workers for report in reports),
    )
    for report in reports:
        merged.arrivals += report.arrivals
        merged.served += report.served
        merged.missed += report.missed
        merged.shed += report.shed
        merged.client_cancels += report.client_cancels
        merged.decisions += report.decisions
        merged.decision_seconds += report.decision_seconds
        merged.decision_max_seconds = max(
            merged.decision_max_seconds, report.decision_max_seconds
        )
        merged.wall_seconds = max(merged.wall_seconds, report.wall_seconds)
        merged.sim_seconds = max(merged.sim_seconds, report.sim_seconds)
        merged.observed_mpl += report.observed_mpl
        merged.pages_read += report.pages_read
        merged.pages_written += report.pages_written
        merged.bytes_moved += report.bytes_moved
        merged.pool_hits += report.pool_hits
        merged.pool_misses += report.pool_misses
        merged.disk_busy += report.disk_busy
        merged.disk_queue += report.disk_queue
        _merge_class_stats(merged.per_class, report.per_class)
        _merge_class_stats(merged.per_tenant, report.per_tenant)
    return merged


def _merge_class_stats(
    target: Dict[str, LiveClassStats], source: Dict[str, LiveClassStats]
) -> None:
    for name, stats in source.items():
        slot = target.setdefault(name, LiveClassStats())
        slot.arrivals += stats.arrivals
        slot.served += stats.served
        slot.missed += stats.missed
        slot.shed += stats.shed


def _cross_check_sharded(report: LiveShootoutReport) -> None:
    """The routed farm's laws, replacing the fidelity gate:

    * conservation per policy -- router arrivals == Σ shard arrivals
      == Σ shard (served + shed), and every arrival was answered;
    * router and shard per-tenant arrival counts agree (no traffic
      mis-attributed across the migration);
    * router traffic identical across policies (the schedule is
      policy-independent);
    * on unclipped runs with real traffic, the rebalancer migrated at
      least one tenant off the packed cold-start.
    """
    arrivals_by_policy: Dict[str, int] = {}
    for policy in report.policies:
        stats = report.router_stats.get(policy)
        if not stats:
            check_fail(
                report,
                "shard-conservation",
                f"{policy}: no router stats collected",
            )
            continue
        conservation = stats.get("conservation", {})
        if not conservation.get("complete"):
            check_fail(
                report,
                "shard-conservation",
                f"{policy}: conservation violated after drain -- "
                f"router arrivals {conservation.get('router_arrivals')}, "
                f"shard arrivals {conservation.get('shard_arrivals')}, "
                f"settled {conservation.get('settled')}, "
                f"responses {conservation.get('responses')}",
            )
        arrivals_by_policy[policy] = int(stats.get("arrivals", 0))
        shard_tenant: Dict[str, int] = {}
        for shard_stats in stats.get("shards", []):
            for tenant, tenant_stats in shard_stats.get(
                "per_tenant", {}
            ).items():
                shard_tenant[tenant] = shard_tenant.get(tenant, 0) + int(
                    tenant_stats.get("arrivals", 0)
                )
        if shard_tenant != stats.get("per_tenant"):
            check_fail(
                report,
                "tenant-attribution",
                f"{policy}: router per-tenant counts "
                f"{stats.get('per_tenant')} disagree with the shards' "
                f"{shard_tenant} -- tenant traffic mis-attributed",
            )
    if len(set(arrivals_by_policy.values())) > 1:
        check_fail(
            report,
            "router-determinism",
            f"router arrivals differ across policies: {arrivals_by_policy} "
            "-- the open-loop schedule is policy-independent",
        )
    if not report.clipped:
        # Clipped runs may end before a rebalance window fires.
        for policy in report.policies:
            stats = report.router_stats.get(policy) or {}
            if int(stats.get("arrivals", 0)) < 8:
                continue  # too little traffic to call anything skew
            if not stats.get("migrations"):
                check_fail(
                    report,
                    "rebalance",
                    f"{policy}: every tenant started packed on one shard but "
                    "the rebalancer never migrated -- skew detection is dead "
                    f"(passes={stats.get('rebalance_passes')})",
                )
        check_pass(report, "rebalance")
    for name in (
        "shard-conservation",
        "tenant-attribution",
        "router-determinism",
    ):
        check_pass(report, name)


@dataclass
class ChaosShootoutReport:
    """Every policy's degraded-mode outcome under one fault schedule."""

    scenario: Scenario
    schedule: FaultSchedule
    policies: Sequence[str]
    live: Dict[str, LiveReport]
    time_scale: float
    failures: List[str] = field(default_factory=list)
    #: Cross-check verdicts (``{name, ok, detail}``) for ``--json``.
    checks: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def unified(self) -> ShootoutReport:
        """Project into the shared :class:`ShootoutReport` surface."""
        columns = [
            Column("miss", digits=3),
            Column("served"),
            Column("shed"),
            Column("retries"),
            Column("reroutes"),
            Column("fastfail"),
            Column("breaker"),
            Column("pfaults"),
            Column("shrinks"),
            Column("mpl", digits=2),
        ]
        rows = []
        for policy in self.policies:
            report = self.live.get(policy)
            if report is None:  # gateway did not survive: failure row
                rows.append(PolicyRow(policy=policy, values={}))
                continue
            rows.append(
                PolicyRow(
                    policy=report.policy,
                    values={
                        "miss": report.miss_ratio,
                        "served": report.served,
                        "shed": report.shed,
                        "retries": report.disk_retries,
                        "reroutes": report.disk_reroutes,
                        "fastfail": report.disk_fast_fails,
                        "breaker": report.breaker_opens,
                        "pfaults": report.policy_faults,
                        "shrinks": report.pool_shrinks,
                        "mpl": report.observed_mpl,
                    },
                )
            )
        return ShootoutReport(
            kind="chaos-shootout",
            title=(
                f"Chaos shootout: {self.scenario.name} "
                f"({self.scenario.content_hash[:10]}) under faults "
                f"{self.schedule.content_hash[:10]}, "
                f"time_scale={self.time_scale}"
            ),
            columns=columns,
            rows=rows,
            meta={
                "scenario": self.scenario.name,
                "scenario_hash": self.scenario.content_hash,
                "fault_schedule_hash": self.schedule.content_hash,
                "time_scale": self.time_scale,
            },
            sections=[self.schedule.describe()],
            checks=self.checks,
            failures=self.failures,
            failure_heading="CHAOS INVARIANT FAILURES",
            success_line=(
                "All chaos invariants held: ledgers empty, chunk "
                "counters conserved, zero grant leaks."
            ),
        )

    def render(self) -> str:
        return self.unified().render()

    def to_json(self) -> Dict[str, object]:
        return self.unified().to_json()

    def save_json(self, path) -> None:
        self.unified().save_json(path)


def chaos_shootout(
    policies: Sequence[str] = DEFAULT_POLICIES,
    family: str = "memorythief",
    index: int = 0,
    scenario_seed: int = 0,
    fault_seed: int = 0,
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = True,
) -> ChaosShootoutReport:
    """Run every policy under one identical seeded fault schedule.

    No DES prediction column here -- the simulator has no fault plane,
    so the checks are survival laws, not fidelity: the run completes
    for every policy (no policy exception, disk outage, or memory
    spike kills the gateway), arrivals are conserved
    (``served + shed == arrivals``), the grant ledger and broker are
    empty after close, and every disk's chunk counters balance.
    """
    generator = ScenarioGenerator(scenario_seed)
    scenario = generator.generate(family, index)
    config = scenario.config
    policy_list = tuple(policies)
    schedule_span = horizon if horizon is not None else config.duration
    fault_schedule = FaultSchedule.generate(
        fault_seed, config, horizon=schedule_span
    )

    live: Dict[str, LiveReport] = {}
    report = ChaosShootoutReport(
        scenario=scenario,
        schedule=fault_schedule,
        policies=policy_list,
        live=live,
        time_scale=time_scale,
    )
    for policy in policy_list:
        gateway = LiveGateway(
            config,
            policy,
            time_scale=time_scale,
            workers=workers,
            invariants=invariants,
            faults=fault_schedule,
            shed_overload=True,
        )
        schedule = build_schedule(
            config,
            gateway.dataplane.database,
            horizon=horizon,
            max_arrivals=max_arrivals,
        )
        try:
            live[policy] = asyncio.run(gateway.run_schedule(schedule))
        except Exception as error:
            check_fail(
                report,
                "gateway-survival",
                f"{policy}: gateway did not survive the schedule: "
                f"{type(error).__name__}: {error}",
            )
            continue
        _chaos_check_gateway(report, policy, gateway)
    _chaos_check(report)
    return report


def _chaos_check_gateway(
    report: ChaosShootoutReport, policy: str, gateway: LiveGateway
) -> None:
    """Post-drain survival laws for one policy's gateway."""
    if gateway.allocator.reserved_pages:
        check_fail(
            report,
            "grant-ledger",
            f"{policy}: grant ledger holds {gateway.allocator.reserved_pages} "
            "pages after close -- grant leak",
        )
    if gateway.broker.present_count:
        check_fail(
            report,
            "broker-empty",
            f"{policy}: broker still tracks {gateway.broker.present_count} "
            "queries after close",
        )
    for index, disk in enumerate(gateway.disks):
        balanced = disk.chunks_submitted == disk.chunks_served + disk.chunks_cancelled
        if not balanced or disk.queue_depth or disk.in_service:
            check_fail(
                report,
                "disk-conservation",
                f"{policy}: disk {index} chunk counters do not balance "
                f"(submitted={disk.chunks_submitted} "
                f"served={disk.chunks_served} "
                f"cancelled={disk.chunks_cancelled} "
                f"queued={disk.queue_depth} in_service={disk.in_service})",
            )


def _chaos_check(report: ChaosShootoutReport) -> None:
    arrival_counts = {
        policy: result.arrivals for policy, result in report.live.items()
    }
    if len(set(arrival_counts.values())) > 1:
        check_fail(
            report,
            "arrival-determinism",
            f"arrival counts differ across policies: {arrival_counts} -- "
            "the open-loop schedule is policy-independent",
        )
    for policy, result in report.live.items():
        if result.served + result.shed != result.arrivals:
            check_fail(
                report,
                "arrival-conservation",
                f"{policy}: {result.arrivals} arrivals but {result.served} "
                f"served + {result.shed} shed -- queries were lost or "
                "duplicated under faults",
            )
        if not 0.0 <= result.miss_ratio <= 1.0:
            check_fail(
                report,
                "report-sanity",
                f"{policy}: miss ratio {result.miss_ratio} outside [0, 1]",
            )
    for name in (
        "gateway-survival",
        "grant-ledger",
        "broker-empty",
        "disk-conservation",
        "arrival-determinism",
        "arrival-conservation",
        "report-sanity",
    ):
        check_pass(report, name)


def _cross_check_tenants(report: LiveShootoutReport) -> None:
    """Multi-tenant laws: tenant accounting must conserve and the
    (policy-independent) per-tenant traffic must be identical across
    policies -- every tenant shares the one pool and disk farm, but no
    tenant's queries may be lost, duplicated, or re-attributed."""
    per_tenant_counts: Dict[str, Dict[str, int]] = {}
    for policy, result in report.live.items():
        if len(result.per_tenant) != report.tenants:
            check_fail(
                report,
                "tenant-accounting",
                f"{policy}: report covers {len(result.per_tenant)} tenants, "
                f"expected {report.tenants}",
            )
        tenant_served = sum(stats.served for stats in result.per_tenant.values())
        tenant_missed = sum(stats.missed for stats in result.per_tenant.values())
        if tenant_served != result.served or tenant_missed != result.missed:
            check_fail(
                report,
                "tenant-accounting",
                f"{policy}: per-tenant counts ({tenant_served} served, "
                f"{tenant_missed} missed) do not sum to the totals "
                f"({result.served} served, {result.missed} missed)",
            )
        per_tenant_counts[policy] = {
            tenant: stats.served for tenant, stats in result.per_tenant.items()
        }
    distinct = {
        tuple(sorted(counts.items())) for counts in per_tenant_counts.values()
    }
    if len(distinct) > 1:
        check_fail(
            report,
            "tenant-accounting",
            f"per-tenant served counts differ across policies: "
            f"{per_tenant_counts} -- tenant traffic is policy-independent "
            "by construction",
        )
    check_pass(report, "tenant-accounting")
