"""The live shootout: every policy serves the same real workload.

``live_shootout`` replays one generated scenario (see
:mod:`repro.scenarios`) through the live gateway once per policy --
identical open-loop traffic each time, since the schedule is computed
from the scenario seed -- and sets the measured miss ratios beside the
DES simulator's prediction for the *same* workload (fetched through
the cached parallel experiment engine).  Cross-checks:

* **traffic determinism** -- every policy must have served the exact
  same arrival count (the schedule is policy-independent by
  construction; a mismatch means the gateway lost or duplicated
  queries);
* **allocation conservation** -- the tracked allocator raised on any
  oversubscribed decision during the runs (reaching the report at all
  certifies every decision respected the pool);
* **fidelity** (primary) -- when the simulator predictions ran against
  the same unclipped traffic, every policy's live miss ratio must land
  within ``FIDELITY_TOLERANCE`` of its DES prediction.  Both hosts run
  the same :class:`~repro.core.devices.DeviceCore` physics, so the
  remaining delta is wall-clock pacing jitter -- a hard per-policy
  bound on it is the strongest cross-substrate check we have;
* **qualitative ordering** (secondary) -- Max's insistence on maximum
  allocations is the paper's worst strategy under load (Section 5.1);
  live, MinMax must not miss more than Max beyond a tolerance.  The
  fidelity gate subsumes this when predictions are available; the
  ordering check still guards ``--no-predict`` runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.policies import DEFAULT_POLICIES
from repro.scenarios import Scenario, ScenarioGenerator
from repro.serve.faults import FaultSchedule
from repro.serve.gateway import LiveGateway, LiveReport
from repro.serve.workload import build_schedule, tag_tenants

#: Hard per-policy bound on |live miss ratio - DES prediction|.  The
#: primary fidelity gate: both hosts share one DeviceCore, so anything
#: beyond wall-clock pacing jitter is a genuine divergence.  Applied
#: only when the predictions saw the same traffic (no ``max_arrivals``
#: clipping, ``predict=True``).
FIDELITY_TOLERANCE = 0.05

#: Live ordering tolerance: one wall-clock replay per policy is a far
#: smaller sample than a simulated hour, so MinMax may exceed Max by
#: this much before the shootout fails.  Secondary to the fidelity
#: gate -- it still guards ``--no-predict`` runs.
LIVE_ORDERING_TOLERANCE = 0.15

#: How many multitenant indices to scan for a ``--tenants N`` match.
TENANT_SCAN_LIMIT = 64


def find_multitenant_scenario(
    generator: ScenarioGenerator, tenants: int, start_index: int = 0
) -> Scenario:
    """The first multitenant scenario with exactly ``tenants`` classes.

    Deterministic in (generator seed, tenants, start_index): indices
    are scanned in order, so a fixed seed always lands on the same
    scenario -- ``--tenants 2`` replays are reproducible.
    """
    if tenants < 2:
        raise ValueError(f"need at least 2 tenants, got {tenants}")
    for index in range(start_index, start_index + TENANT_SCAN_LIMIT):
        scenario = generator.generate("multitenant", index)
        if len(scenario.config.workload.classes) == tenants:
            return scenario
    raise ValueError(
        f"no multitenant scenario with {tenants} tenants in indices "
        f"[{start_index}, {start_index + TENANT_SCAN_LIMIT})"
    )


@dataclass
class LiveShootoutReport:
    """Live results, simulator predictions, and cross-check failures."""

    scenario: Scenario
    policies: Sequence[str]
    live: Dict[str, LiveReport]
    predicted: Dict[str, float]
    time_scale: float
    failures: List[str] = field(default_factory=list)
    #: DES-predicted shared-pool hit ratio per policy (the live pool's
    #: contention cross-check column).
    predicted_pool_hit: Dict[str, float] = field(default_factory=dict)
    #: Tenant count when the shootout ran in ``--tenants`` mode.
    tenants: Optional[int] = None
    #: True when ``max_arrivals`` clipped the live traffic -- the DES
    #: predictions then saw different traffic and the fidelity gate
    #: does not apply.
    clipped: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def miss_delta(self, policy: str) -> float:
        """Live miss ratio minus the DES prediction (NaN if no
        prediction ran for the policy)."""
        predicted = self.predicted.get(policy)
        if predicted is None:
            return float("nan")
        return self.live[policy].miss_ratio - predicted

    def render(self) -> str:
        headers = [
            "policy",
            "live_miss",
            "sim_miss",
            "delta",
            "pool_hit",
            "sim_hit",
            "disk_q_s",
            "served",
            "completed",
            "mpl",
            "qps",
            "decisions/s",
            "decide_us",
        ]
        rows = []
        for policy in self.policies:
            report = self.live[policy]
            rows.append(
                [
                    report.policy,
                    round(report.miss_ratio, 3),
                    round(self.predicted.get(policy, float("nan")), 3),
                    round(self.miss_delta(policy), 3),
                    round(report.pool_hit_ratio, 3),
                    round(self.predicted_pool_hit.get(policy, float("nan")), 3),
                    round(report.disk_queue_sim_seconds, 1),
                    report.served,
                    report.completed,
                    round(report.observed_mpl, 2),
                    round(report.queries_per_sec, 1),
                    round(report.decisions_per_sec, 1),
                    round(report.decision_latency_mean_us, 1),
                ]
            )
        title = (
            f"Live shootout: {self.scenario.name} "
            f"({self.scenario.content_hash[:10]}), "
            f"time_scale={self.time_scale}"
        )
        if self.tenants:
            title += f", tenants={self.tenants}"
        table = format_table(headers, rows, title=title)
        if self.tenants:
            table += "\n\n" + self._render_tenants()
        if self.failures:
            table += "\n\nCROSS-CHECK FAILURES:\n" + "\n".join(
                f"  - {failure}" for failure in self.failures
            )
        else:
            table += "\n\nAll live cross-checks passed."
        return table

    def _render_tenants(self) -> str:
        """Per-tenant live served/missed counts, one row per policy."""
        names = sorted(
            {
                tenant
                for report in self.live.values()
                for tenant in report.per_tenant
            }
        )
        headers = ["policy"] + [f"{name} s/m" for name in names]
        rows = []
        for policy in self.policies:
            report = self.live[policy]
            row = [report.policy]
            for name in names:
                stats = report.per_tenant.get(name)
                row.append(
                    f"{stats.served}/{stats.missed}" if stats is not None else "-"
                )
            rows.append(row)
        return format_table(
            headers, rows, title="Per-tenant served/missed (shared pool + disks)"
        )


def live_shootout(
    policies: Sequence[str] = DEFAULT_POLICIES,
    family: str = "mix",
    index: int = 0,
    scenario_seed: int = 0,
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = True,
    predict: bool = True,
    jobs: Optional[int] = None,
    tenants: Optional[int] = None,
) -> LiveShootoutReport:
    """Serve one scenario live under every policy and cross-check.

    ``predict=True`` also runs (or fetches from the cache) the DES
    simulation of the same scenario per policy, for the side-by-side
    prediction columns (miss ratio and shared-pool hit ratio); the
    simulated horizon is clipped to ``horizon`` when given so both
    substrates see the same traffic.

    ``tenants=N`` switches to the multitenant scenario family (the
    first scenario at or after ``index`` with exactly ``N`` per-tenant
    query classes), tags every arrival with its owning tenant, and
    adds per-tenant cross-checks: all tenants share one broker, one
    buffer pool, and one disk farm.
    """
    generator = ScenarioGenerator(scenario_seed)
    if tenants is not None:
        scenario = find_multitenant_scenario(generator, tenants, index)
    else:
        scenario = generator.generate(family, index)
    config = scenario.config
    policy_list = tuple(policies)

    predicted: Dict[str, float] = {}
    predicted_pool_hit: Dict[str, float] = {}
    if predict:
        from dataclasses import replace

        from repro.experiments import runner

        specs = []
        for policy in policy_list:
            spec = scenario.run_spec(policy, invariants=invariants)
            if horizon is not None and horizon < config.duration:
                spec = replace(
                    spec, settings=replace(spec.settings, duration=horizon)
                )
            specs.append(spec)
        results = runner.run_many(specs, jobs=jobs)
        predicted = {
            policy: result.miss_ratio
            for policy, result in zip(policy_list, results)
        }
        for policy, result in zip(policy_list, results):
            consulted = result.buffer_hits + result.buffer_misses
            predicted_pool_hit[policy] = (
                result.buffer_hits / consulted if consulted else 0.0
            )

    live: Dict[str, LiveReport] = {}
    for policy in policy_list:
        gateway = LiveGateway(
            config,
            policy,
            time_scale=time_scale,
            workers=workers,
            invariants=invariants,
        )
        schedule = build_schedule(
            config,
            gateway.dataplane.database,
            horizon=horizon,
            max_arrivals=max_arrivals,
        )
        if tenants is not None:
            schedule = tag_tenants(schedule)
        live[policy] = asyncio.run(gateway.run_schedule(schedule))

    report = LiveShootoutReport(
        scenario=scenario,
        policies=policy_list,
        live=live,
        predicted=predicted,
        time_scale=time_scale,
        predicted_pool_hit=predicted_pool_hit,
        tenants=tenants,
        clipped=max_arrivals is not None,
    )
    _cross_check(report)
    return report


def _cross_check(report: LiveShootoutReport) -> None:
    served_counts = {
        policy: result.served for policy, result in report.live.items()
    }
    if len(set(served_counts.values())) > 1:
        report.failures.append(
            f"served counts differ across policies: {served_counts} -- the "
            "open-loop schedule is policy-independent, so every policy must "
            "serve the identical traffic"
        )
    for policy, result in report.live.items():
        if result.served != result.arrivals:
            report.failures.append(
                f"{policy}: {result.arrivals} arrivals but {result.served} "
                "departures -- queries were lost or duplicated"
            )
        if not 0.0 <= result.miss_ratio <= 1.0:
            report.failures.append(
                f"{policy}: miss ratio {result.miss_ratio} outside [0, 1]"
            )
        if not 0.0 <= result.pool_hit_ratio <= 1.0:
            report.failures.append(
                f"{policy}: shared-pool hit ratio {result.pool_hit_ratio} "
                "outside [0, 1]"
            )
        if any(queued < 0.0 for queued in result.disk_queue):
            report.failures.append(
                f"{policy}: negative per-disk queue time {result.disk_queue}"
            )
    if report.tenants:
        _cross_check_tenants(report)
    if report.predicted and not report.clipped:
        # Primary fidelity gate: the predictions saw the identical
        # traffic, so every policy's live miss ratio must track its
        # DES prediction within the hard tolerance.
        for policy in report.policies:
            delta = report.miss_delta(policy)
            if delta != delta:  # NaN: no prediction for this policy
                continue
            if abs(delta) > FIDELITY_TOLERANCE:
                report.failures.append(
                    f"{policy}: live miss ratio "
                    f"{report.live[policy].miss_ratio:.3f} is "
                    f"{delta:+.3f} from the DES prediction "
                    f"{report.predicted[policy]:.3f} "
                    f"(|delta| > {FIDELITY_TOLERANCE}) -- the live plane "
                    "diverged from the shared-core physics"
                )
    if "minmax" in report.live and "max" in report.live:
        minmax_miss = report.live["minmax"].miss_ratio
        max_miss = report.live["max"].miss_ratio
        if minmax_miss > max_miss + LIVE_ORDERING_TOLERANCE:
            report.failures.append(
                f"live ordering violated: MinMax miss ratio {minmax_miss:.3f} "
                f"exceeds Max's {max_miss:.3f} by more than "
                f"{LIVE_ORDERING_TOLERANCE} -- the paper's Section 5.1 "
                "ordering inverted on live traffic"
            )


@dataclass
class ChaosShootoutReport:
    """Every policy's degraded-mode outcome under one fault schedule."""

    scenario: Scenario
    schedule: FaultSchedule
    policies: Sequence[str]
    live: Dict[str, LiveReport]
    time_scale: float
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        headers = [
            "policy",
            "miss",
            "served",
            "shed",
            "retries",
            "reroutes",
            "fastfail",
            "breaker",
            "pfaults",
            "shrinks",
            "mpl",
        ]
        rows = []
        for policy in self.policies:
            report = self.live[policy]
            rows.append(
                [
                    report.policy,
                    round(report.miss_ratio, 3),
                    report.served,
                    report.shed,
                    report.disk_retries,
                    report.disk_reroutes,
                    report.disk_fast_fails,
                    report.breaker_opens,
                    report.policy_faults,
                    report.pool_shrinks,
                    round(report.observed_mpl, 2),
                ]
            )
        title = (
            f"Chaos shootout: {self.scenario.name} "
            f"({self.scenario.content_hash[:10]}) under faults "
            f"{self.schedule.content_hash[:10]}, time_scale={self.time_scale}"
        )
        table = format_table(headers, rows, title=title)
        table += "\n\n" + self.schedule.describe()
        if self.failures:
            table += "\n\nCHAOS INVARIANT FAILURES:\n" + "\n".join(
                f"  - {failure}" for failure in self.failures
            )
        else:
            table += (
                "\n\nAll chaos invariants held: ledgers empty, chunk "
                "counters conserved, zero grant leaks."
            )
        return table


def chaos_shootout(
    policies: Sequence[str] = DEFAULT_POLICIES,
    family: str = "memorythief",
    index: int = 0,
    scenario_seed: int = 0,
    fault_seed: int = 0,
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = True,
) -> ChaosShootoutReport:
    """Run every policy under one identical seeded fault schedule.

    No DES prediction column here -- the simulator has no fault plane,
    so the checks are survival laws, not fidelity: the run completes
    for every policy (no policy exception, disk outage, or memory
    spike kills the gateway), arrivals are conserved
    (``served + shed == arrivals``), the grant ledger and broker are
    empty after close, and every disk's chunk counters balance.
    """
    generator = ScenarioGenerator(scenario_seed)
    scenario = generator.generate(family, index)
    config = scenario.config
    policy_list = tuple(policies)
    schedule_span = horizon if horizon is not None else config.duration
    fault_schedule = FaultSchedule.generate(
        fault_seed, config, horizon=schedule_span
    )

    live: Dict[str, LiveReport] = {}
    report = ChaosShootoutReport(
        scenario=scenario,
        schedule=fault_schedule,
        policies=policy_list,
        live=live,
        time_scale=time_scale,
    )
    for policy in policy_list:
        gateway = LiveGateway(
            config,
            policy,
            time_scale=time_scale,
            workers=workers,
            invariants=invariants,
            faults=fault_schedule,
            shed_overload=True,
        )
        schedule = build_schedule(
            config,
            gateway.dataplane.database,
            horizon=horizon,
            max_arrivals=max_arrivals,
        )
        try:
            live[policy] = asyncio.run(gateway.run_schedule(schedule))
        except Exception as error:
            report.failures.append(
                f"{policy}: gateway did not survive the schedule: "
                f"{type(error).__name__}: {error}"
            )
            continue
        _chaos_check_gateway(report, policy, gateway)
    _chaos_check(report)
    return report


def _chaos_check_gateway(
    report: ChaosShootoutReport, policy: str, gateway: LiveGateway
) -> None:
    """Post-drain survival laws for one policy's gateway."""
    if gateway.allocator.reserved_pages:
        report.failures.append(
            f"{policy}: grant ledger holds {gateway.allocator.reserved_pages} "
            "pages after close -- grant leak"
        )
    if gateway.broker.present_count:
        report.failures.append(
            f"{policy}: broker still tracks {gateway.broker.present_count} "
            "queries after close"
        )
    for index, disk in enumerate(gateway.disks):
        balanced = disk.chunks_submitted == disk.chunks_served + disk.chunks_cancelled
        if not balanced or disk.queue_depth or disk.in_service:
            report.failures.append(
                f"{policy}: disk {index} chunk counters do not balance "
                f"(submitted={disk.chunks_submitted} "
                f"served={disk.chunks_served} "
                f"cancelled={disk.chunks_cancelled} "
                f"queued={disk.queue_depth} in_service={disk.in_service})"
            )


def _chaos_check(report: ChaosShootoutReport) -> None:
    arrival_counts = {
        policy: result.arrivals for policy, result in report.live.items()
    }
    if len(set(arrival_counts.values())) > 1:
        report.failures.append(
            f"arrival counts differ across policies: {arrival_counts} -- "
            "the open-loop schedule is policy-independent"
        )
    for policy, result in report.live.items():
        if result.served + result.shed != result.arrivals:
            report.failures.append(
                f"{policy}: {result.arrivals} arrivals but {result.served} "
                f"served + {result.shed} shed -- queries were lost or "
                "duplicated under faults"
            )
        if not 0.0 <= result.miss_ratio <= 1.0:
            report.failures.append(
                f"{policy}: miss ratio {result.miss_ratio} outside [0, 1]"
            )


def _cross_check_tenants(report: LiveShootoutReport) -> None:
    """Multi-tenant laws: tenant accounting must conserve and the
    (policy-independent) per-tenant traffic must be identical across
    policies -- every tenant shares the one pool and disk farm, but no
    tenant's queries may be lost, duplicated, or re-attributed."""
    per_tenant_counts: Dict[str, Dict[str, int]] = {}
    for policy, result in report.live.items():
        if len(result.per_tenant) != report.tenants:
            report.failures.append(
                f"{policy}: report covers {len(result.per_tenant)} tenants, "
                f"expected {report.tenants}"
            )
        tenant_served = sum(stats.served for stats in result.per_tenant.values())
        tenant_missed = sum(stats.missed for stats in result.per_tenant.values())
        if tenant_served != result.served or tenant_missed != result.missed:
            report.failures.append(
                f"{policy}: per-tenant counts ({tenant_served} served, "
                f"{tenant_missed} missed) do not sum to the totals "
                f"({result.served} served, {result.missed} missed)"
            )
        per_tenant_counts[policy] = {
            tenant: stats.served for tenant, stats in result.per_tenant.items()
        }
    distinct = {
        tuple(sorted(counts.items())) for counts in per_tenant_counts.values()
    }
    if len(distinct) > 1:
        report.failures.append(
            f"per-tenant served counts differ across policies: "
            f"{per_tenant_counts} -- tenant traffic is policy-independent "
            "by construction"
        )
