"""Command-line entry points of the live serving layer.

::

    python -m repro.serve live-shootout                # all six policies
    python -m repro.serve live-shootout --policies max,minmax \\
        --family bursty --index 2 --time-scale 0.02   # quick subset
    python -m repro.serve chaos-shootout --fault-seed 7   # under faults
    python -m repro.serve replay --policy pmm          # one live run
    python -m repro.serve serve --port 7070 --policy pmm  # TCP server
    python -m repro.serve route --shards 2 --tenants 2 # routed shard farm
    python -m repro.serve recover --journal broker.jsonl  # crash replay

``live-shootout`` replays one generated scenario through the live
gateway once per policy and prints the measured miss ratios beside the
simulator's prediction for the same workload; it exits non-zero if any
live cross-check fails.  ``chaos-shootout`` does the same under one
seeded :class:`~repro.serve.faults.FaultSchedule` (disk outages,
memory thieves, policy faults) and gates on the survival invariants
instead of fidelity.  Both shootouts take ``--json PATH`` to also
write the schema-versioned unified report -- the supported machine
interface for scripting against shootout results.  ``serve`` accepts JSON-lines submissions (see
:mod:`repro.serve.server` for the protocol); with ``--journal`` it
writes every broker operation to a crash journal that ``recover``
replays to a conserved ledger after a kill.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.policies import DEFAULT_POLICIES, make_policy


def _split_tokens(text):
    return tuple(token.strip() for token in text.split(",") if token.strip())


def _add_scenario_flags(parser) -> None:
    parser.add_argument("--family", default="mix", help="scenario family")
    parser.add_argument("--index", type=int, default=0, help="scenario index")
    parser.add_argument(
        "--scenario-seed", type=int, default=0, help="scenario-generator seed"
    )


def _add_live_flags(parser) -> None:
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.05,
        help="wall seconds per simulated second (smaller = faster replay)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool width (default: num_disks + 1)",
    )
    parser.add_argument(
        "--horizon", type=float, default=None, help="clip the scenario horizon (sim s)"
    )
    parser.add_argument(
        "--max-arrivals", type=int, default=None, help="cap the submitted queries"
    )
    parser.add_argument(
        "--no-invariants", action="store_true", help="skip the runtime checkers"
    )


def _add_json_flag(parser) -> None:
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the schema-versioned unified report as JSON "
        "(the supported machine interface; see repro/analysis/report.py)",
    )


def _cmd_live_shootout(args) -> int:
    from repro.serve.shootout import live_shootout

    policies = _split_tokens(args.policies) if args.policies else DEFAULT_POLICIES
    for spec in policies:
        make_policy(spec)  # fail on typos before any live run
    report = live_shootout(
        policies=policies,
        family=args.family,
        index=args.index,
        scenario_seed=args.scenario_seed,
        time_scale=args.time_scale,
        workers=args.workers,
        horizon=args.horizon,
        max_arrivals=args.max_arrivals,
        invariants=not args.no_invariants,
        predict=not args.no_predict,
        jobs=args.jobs,
        tenants=args.tenants,
        shards=args.shards,
    )
    print(report.render())
    if args.json:
        report.save_json(args.json)
        print(f"\n[json] report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_chaos_shootout(args) -> int:
    from repro.serve.shootout import chaos_shootout

    policies = _split_tokens(args.policies) if args.policies else DEFAULT_POLICIES
    for spec in policies:
        make_policy(spec)  # fail on typos before any live run
    report = chaos_shootout(
        policies=policies,
        family=args.family,
        index=args.index,
        scenario_seed=args.scenario_seed,
        fault_seed=args.fault_seed,
        time_scale=args.time_scale,
        workers=args.workers,
        horizon=args.horizon,
        max_arrivals=args.max_arrivals,
        invariants=not args.no_invariants,
    )
    print(report.render())
    if args.json:
        report.save_json(args.json)
        print(f"\n[json] report written to {args.json}")
    if not report.ok:
        print(
            "\nreproduce with:\n  PYTHONPATH=src python -m repro.serve "
            f"chaos-shootout --family {args.family} --index {args.index} "
            f"--scenario-seed {args.scenario_seed} "
            f"--fault-seed {args.fault_seed} "
            f"--time-scale {args.time_scale}"
        )
    return 0 if report.ok else 1


def _cmd_recover(args) -> int:
    from repro.serve.faults import recover_journal

    ledger = recover_journal(args.journal)
    print(ledger.render())
    return 0 if ledger.clean else 1


def _cmd_replay(args) -> int:
    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import run_live

    scenario = ScenarioGenerator(args.scenario_seed).generate(args.family, args.index)
    report = asyncio.run(
        run_live(
            scenario.config,
            args.policy,
            time_scale=args.time_scale,
            workers=args.workers,
            horizon=args.horizon,
            max_arrivals=args.max_arrivals,
            invariants=not args.no_invariants,
        )
    )
    print(f"scenario        : {scenario.name} ({scenario.content_hash[:10]})")
    print(f"policy          : {report.policy}")
    print(f"served / missed : {report.served} / {report.missed} "
          f"(miss ratio {report.miss_ratio:.3f})")
    for name, stats in sorted(report.per_class.items()):
        print(f"  class {name:12s}: served={stats.served} missed={stats.missed} "
              f"miss_ratio={stats.miss_ratio:.3f}")
    print(f"wall / sim      : {report.wall_seconds:.2f} s / "
          f"{report.sim_seconds:.1f} s (scale {report.time_scale})")
    print(f"throughput      : {report.queries_per_sec:.1f} queries/s")
    print(f"observed MPL    : {report.observed_mpl:.2f}")
    print(f"decisions       : {report.decisions} "
          f"({report.decisions_per_sec:.0f}/s, "
          f"mean {report.decision_latency_mean_us:.0f} us)")
    print(f"data plane      : {report.pages_read} pages read, "
          f"{report.pages_written} written, "
          f"{report.bytes_moved / 1e6:.1f} MB moved")
    print(f"shared pool     : {report.pool_hits} hits / "
          f"{report.pool_misses} misses "
          f"(hit ratio {report.pool_hit_ratio:.3f})")
    print(f"disk contention : busy {sum(report.disk_busy):.2f} s, "
          f"queued {report.disk_queue_seconds:.2f} s wall "
          f"({report.disk_queue_sim_seconds:.1f} sim s)")
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import LiveGateway
    from repro.serve.server import LiveServer
    from repro.serve.shootout import find_multitenant_scenario

    generator = ScenarioGenerator(args.scenario_seed)
    if args.tenants is not None:
        scenario = find_multitenant_scenario(generator, args.tenants, args.index)
    else:
        scenario = generator.generate(args.family, args.index)

    config = scenario.config
    shard = None
    if args.of > 1:
        from repro.serve.shard import shard_config

        config = shard_config(config, args.shard_id, args.of)
        shard = (args.shard_id, args.of)

    recorder = None
    if args.journal:
        from repro.serve.faults import JournalRecorder

        recorder = JournalRecorder.for_policy(args.journal, args.policy, config)

    async def main() -> None:
        gateway = LiveGateway(
            config,
            args.policy,
            time_scale=args.time_scale,
            workers=args.workers,
            invariants=not args.no_invariants,
            recorder=recorder,
            shed_overload=args.shed,
        )
        server = LiveServer(gateway, shard=shard)
        host, port = await server.start(args.host, args.port)
        shard_note = f"shard={shard[0]}/{shard[1]} " if shard else ""
        print(f"repro.serve: policy={gateway.policy.name} "
              f"scenario={scenario.name} {shard_note}listening on "
              f"{host}:{port} (JSON lines; see repro/serve/server.py)",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:
            # Windows event loops: fall back to plain signal handlers
            # (they run on the main thread, which runs the loop).
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(
                    signum,
                    lambda *_args: loop.call_soon_threadsafe(stop.set),
                )
        await stop.wait()
        print("repro.serve: draining "
              f"({gateway.broker.present_count} queries in flight)", flush=True)
        await server.close()
        report = gateway.report
        print(f"repro.serve: drained cleanly -- served {report.served} "
              f"({report.missed} missed, {report.shed} shed), "
              f"pool hit ratio {gateway.pool.hit_ratio:.3f}", flush=True)

    try:
        asyncio.run(main())
    finally:
        if recorder is not None:
            recorder.close()
    return 0


def _cmd_route(args) -> int:
    import signal

    from repro.scenarios import ScenarioGenerator
    from repro.serve.router import ShardRouter
    from repro.serve.shard import launch_shards
    from repro.serve.shootout import find_multitenant_scenario

    if args.shards < 1:
        print(f"repro.serve: --shards must be positive, got {args.shards}")
        return 2
    # The ring seeds from the *scenario's* config seed (not the
    # generator seed), so the shootout, a restarted router, and this
    # CLI all place a tenant identically.
    generator = ScenarioGenerator(args.scenario_seed)
    if args.tenants is not None:
        scenario = find_multitenant_scenario(generator, args.tenants, args.index)
    else:
        scenario = generator.generate(args.family, args.index)

    shards = launch_shards(
        args.shards,
        policy=args.policy,
        tenants=args.tenants,
        family=args.family,
        index=args.index,
        scenario_seed=args.scenario_seed,
        time_scale=args.time_scale,
        shed=args.shed,
    )

    async def main() -> int:
        router = ShardRouter(
            [shard.address for shard in shards],
            ring_seed=scenario.config.seed,
            rebalance_interval=args.rebalance_interval,
            skew_threshold=args.skew_threshold,
        )
        host, port = await router.start(args.host, args.port)
        print(f"repro.serve: router policy={args.policy} "
              f"scenario={scenario.name} shards={args.shards} "
              f"listening on {host}:{port} "
              "(JSON lines; see repro/serve/router.py)",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(
                    signum,
                    lambda *_args: loop.call_soon_threadsafe(stop.set),
                )
        await stop.wait()
        print("repro.serve: router draining", flush=True)
        final = await router.drain_stats()
        await router.close()
        conservation = final["conservation"]
        ok = bool(conservation["complete"])
        verdict = "ok" if ok else f"VIOLATED {conservation}"
        print(f"repro.serve: router drained cleanly -- routed "
              f"{final['arrivals']} arrivals across {args.shards} shards, "
              f"{len(final['migrations'])} migrations, "
              f"conservation {verdict}", flush=True)
        return 0 if ok else 1

    exit_code = 1
    try:
        exit_code = asyncio.run(main())
    finally:
        for shard in shards:
            try:
                code = shard.drain()
            except Exception as error:
                print(f"repro.serve: shard {shard.shard_id} failed to "
                      f"drain: {error}", flush=True)
                shard.kill()
                exit_code = exit_code or 1
                continue
            if code != 0 or not shard.drained_cleanly:
                print(f"repro.serve: shard {shard.shard_id} exited {code} "
                      "without draining cleanly; output:\n  "
                      + "\n  ".join(shard.lines), flush=True)
                exit_code = exit_code or 1
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    commands = parser.add_subparsers(dest="command")

    shootout = commands.add_parser(
        "live-shootout", help="all policies serve the same scenario live"
    )
    shootout.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy specs (default: the registry's six)",
    )
    _add_scenario_flags(shootout)
    _add_live_flags(shootout)
    shootout.add_argument(
        "--no-predict",
        action="store_true",
        help="skip the simulator-prediction column",
    )
    shootout.add_argument(
        "--jobs", type=int, default=None, help="worker processes for the predictions"
    )
    shootout.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="multi-tenant mode: serve the first multitenant scenario with "
        "exactly N tenants, tagging and cross-checking per-tenant traffic",
    )
    shootout.add_argument(
        "--shards",
        type=int,
        default=None,
        help="routed mode (requires --tenants): replay through N in-process "
        "shard servers behind the consistent-hash router, starting from a "
        "deliberately packed placement so the rebalancer must migrate; "
        "cross-checks switch from DES fidelity to conservation",
    )
    _add_json_flag(shootout)

    chaos = commands.add_parser(
        "chaos-shootout",
        help="all policies serve one scenario under an identical fault schedule",
    )
    chaos.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy specs (default: the registry's six)",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0, help="fault-schedule seed"
    )
    _add_scenario_flags(chaos)
    chaos.set_defaults(family="memorythief")
    _add_live_flags(chaos)
    _add_json_flag(chaos)

    recover = commands.add_parser(
        "recover", help="replay a crash journal to a conserved ledger"
    )
    recover.add_argument(
        "--journal", required=True, help="path to a broker journal (JSON lines)"
    )

    replay = commands.add_parser("replay", help="one policy, one scenario, live")
    replay.add_argument("--policy", default="pmm", help="policy spec")
    _add_scenario_flags(replay)
    _add_live_flags(replay)

    serve = commands.add_parser("serve", help="JSON-lines TCP submission server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7070)
    serve.add_argument("--policy", default="pmm", help="policy spec")
    serve.add_argument(
        "--shard-id",
        type=int,
        default=0,
        help="serve shard I of a routed farm (slice of the scenario's "
        "disks and pool pages; requires --of > 1)",
    )
    serve.add_argument(
        "--of",
        type=int,
        default=1,
        help="total shard count of the routed farm (1 = standalone, "
        "the identity: no resource split at all)",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="serve the first multitenant scenario with exactly N tenants "
        "(tenant submissions map onto its per-tenant classes)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        help="write every broker operation to this crash journal "
        "(replay it with the recover subcommand)",
    )
    serve.add_argument(
        "--shed",
        action="store_true",
        help="reject arrivals whose deadlines the projected backlog "
        "already makes infeasible (structured shed responses)",
    )
    _add_scenario_flags(serve)
    _add_live_flags(serve)

    route = commands.add_parser(
        "route",
        help="consistent-hash router over N shard subprocesses "
        "(each a full serve stack on a slice of the resources)",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7071)
    route.add_argument("--shards", type=int, default=2, help="shard count")
    route.add_argument("--policy", default="pmm", help="policy spec")
    route.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="shards serve the first multitenant scenario with exactly "
        "N tenants (tenant tags drive the hash-ring placement)",
    )
    route.add_argument(
        "--rebalance-interval",
        type=float,
        default=0.5,
        help="wall seconds between rebalancer passes over the shards' "
        "batch feedback (0 disables migration)",
    )
    route.add_argument(
        "--skew-threshold",
        type=float,
        default=0.5,
        help="migrate when the hottest shard's window load exceeds the "
        "coldest's by this fraction of the mean",
    )
    route.add_argument(
        "--shed",
        action="store_true",
        help="shards reject infeasible arrivals with structured shed "
        "responses instead of queueing doomed work",
    )
    route.add_argument(
        "--time-scale",
        type=float,
        default=0.05,
        help="wall seconds per simulated second on every shard",
    )
    _add_scenario_flags(route)

    tokens = list(sys.argv[1:] if argv is None else argv)
    # Default subcommand: bare flags go to live-shootout.
    known = ("live-shootout", "chaos-shootout", "recover", "replay", "serve",
             "route", "-h", "--help")
    if tokens and tokens[0] not in known:
        tokens = ["live-shootout"] + tokens
    elif not tokens:
        tokens = ["live-shootout"]
    args = parser.parse_args(tokens)
    from repro.serve.gateway import install_uvloop

    install_uvloop()  # optional: a no-op when uvloop is absent
    if args.command == "live-shootout":
        return _cmd_live_shootout(args)
    if args.command == "chaos-shootout":
        return _cmd_chaos_shootout(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "route":
        return _cmd_route(args)
    return _cmd_serve(args)


if __name__ == "__main__":
    raise SystemExit(main())
