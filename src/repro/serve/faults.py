"""The fault-injection plane: seeded chaos for the live serving stack.

The live gateway matches the DES on sunny days; this module makes the
weather.  A :class:`FaultSchedule` is a deterministic, content-hashed
bundle of fault windows -- generated from a seed exactly like the
scenario families -- that the :class:`FaultInjector` arms as event-loop
timers against a running gateway:

* **disk degradation** -- a window multiplies one disk's
  ``DeviceCore.service_time`` (a dying drive, a saturated RAID rebuild);
* **disk outage** -- a window marks one disk ``faulted``: chunk
  submissions fail transiently (:class:`DiskFaultError` semantics) and
  the gateway's bounded-retry / circuit-breaker / reroute defenses
  decide each query's fate;
* **memory pressure** -- an external, non-query consumer (the MSFT
  throughput paper's compilation-memory thief) shrinks the effective
  pool mid-run via ``LiveGateway.set_pool_pages``; the policies must
  redistribute within the new bound;
* **policy faults** -- :class:`FaultyPolicy` raises
  :class:`PolicyFaultError` on chosen decision ordinals *before*
  delegating, modelling a transient bug in the allocation path; the
  gateway keeps the previous allocation and survives;
* **stalled clients** -- a count of TCP connections the chaos harness
  opens and never services (half-written lines, unread responses); the
  server loop must shrug them off.

The second half of the module is crash recovery:
:class:`JournalRecorder` duck-types the broker's trace recorder and
appends every operation to a JSON-lines journal (flushed per op, so a
SIGKILL leaves at worst one torn final line), and
:func:`recover_journal` replays a journal through a fresh
broker + policy with the :class:`~repro.rtdbs.invariants.InvariantChecker`
attached, verifies the replayed decisions against the recorded ones,
releases the orphaned in-flight grants, and proves the ledger drains to
empty -- counters conserved, zero grant leaks.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.runner import canonical_record

#: Disk-window kinds.
DEGRADE = "degrade"
OUTAGE = "outage"


class DiskFaultError(RuntimeError):
    """A transient disk fault: the chunk may be retried."""


class PolicyFaultError(RuntimeError):
    """An injected (transient) failure of the allocation policy."""


# ----------------------------------------------------------------------
# the schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiskFaultWindow:
    """One disk misbehaving over ``[start, end)`` (simulated seconds)."""

    disk: int
    start: float
    end: float
    #: ``"degrade"`` (service times multiplied by ``factor``) or
    #: ``"outage"`` (chunk submissions fail; retry/breaker path).
    kind: str
    factor: float = 1.0


@dataclass(frozen=True)
class MemoryPressureWindow:
    """An external consumer holding ``stolen_pages`` over the window."""

    start: float
    end: float
    stolen_pages: int


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic bundle of fault windows, addressable by hash."""

    seed: int
    disk_windows: Tuple[DiskFaultWindow, ...] = ()
    memory_windows: Tuple[MemoryPressureWindow, ...] = ()
    #: 1-based reallocation ordinals at which the policy fails.
    policy_faults: Tuple[int, ...] = ()
    #: TCP connections the chaos harness opens and never services.
    stalled_clients: int = 0

    @property
    def active(self) -> bool:
        return bool(
            self.disk_windows or self.memory_windows or self.policy_faults
        )

    @property
    def content_hash(self) -> str:
        """Stable content hash (same canonical walk as scenario hashes)."""
        return sha256(
            repr(("repro-faults", canonical_record(self))).encode("utf-8")
        ).hexdigest()

    def describe(self) -> str:
        """One line per fault, for reports and logs."""
        lines = [f"fault schedule seed={self.seed} ({self.content_hash[:10]})"]
        for window in self.disk_windows:
            detail = f" x{window.factor}" if window.kind == DEGRADE else ""
            lines.append(
                f"  disk {window.disk}: {window.kind}{detail} over "
                f"[{window.start:.1f}, {window.end:.1f}) sim s"
            )
        for window in self.memory_windows:
            lines.append(
                f"  memory thief: {window.stolen_pages} pages over "
                f"[{window.start:.1f}, {window.end:.1f}) sim s"
            )
        if self.policy_faults:
            lines.append(f"  policy faults at decisions {self.policy_faults}")
        if self.stalled_clients:
            lines.append(f"  stalled clients: {self.stalled_clients}")
        return "\n".join(lines)

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultSchedule":
        """The no-fault schedule: running under it must be a no-op."""
        return cls(seed=int(seed))

    @classmethod
    def generate(
        cls, seed: int, config, horizon: Optional[float] = None
    ) -> "FaultSchedule":
        """Draw a schedule for one scenario config, deterministically.

        Mixes every fault kind: per-disk degradation/outage windows, a
        memory thief sized to bite (a quarter to three fifths of the
        pool, never below an 8-page floor), a few policy-fault
        ordinals, and a stalled-client count.  At least one disk outage
        is guaranteed so the retry/breaker path is always exercised.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(seed), spawn_key=(zlib.crc32(b"repro-faults"),)
            )
        )
        span = float(horizon) if horizon is not None else float(config.duration)
        disk_windows: List[DiskFaultWindow] = []
        for disk in range(config.resources.num_disks):
            if rng.random() >= 0.6:
                continue
            start = round(float(rng.uniform(0.05, 0.5)) * span, 2)
            length = float(rng.uniform(0.1, 0.3)) * span
            end = round(min(start + length, span), 2)
            if end <= start:
                continue
            if rng.random() < 0.45:
                disk_windows.append(
                    DiskFaultWindow(disk, start, end, OUTAGE)
                )
            else:
                factor = round(float(rng.uniform(2.0, 6.0)), 2)
                disk_windows.append(
                    DiskFaultWindow(disk, start, end, DEGRADE, factor)
                )
        if not any(w.kind == OUTAGE for w in disk_windows):
            disk_windows.insert(
                0,
                DiskFaultWindow(
                    0, round(0.2 * span, 2), round(0.45 * span, 2), OUTAGE
                ),
            )
        memory = config.resources.memory_pages
        memory_windows: List[MemoryPressureWindow] = []
        for _ in range(int(rng.integers(1, 3))):
            start = round(float(rng.uniform(0.05, 0.6)) * span, 2)
            length = float(rng.uniform(0.15, 0.35)) * span
            end = round(min(start + length, span), 2)
            low = memory // 4
            high = max(low + 1, (memory * 3) // 5)
            stolen = min(int(rng.integers(low, high + 1)), memory - 8)
            if end > start and stolen > 0:
                memory_windows.append(MemoryPressureWindow(start, end, stolen))
        fault_count = int(rng.integers(1, 4))
        policy_faults = tuple(
            sorted({int(o) for o in rng.integers(2, 60, size=fault_count)})
        )
        return cls(
            seed=int(seed),
            disk_windows=tuple(disk_windows),
            memory_windows=tuple(memory_windows),
            policy_faults=policy_faults,
            stalled_clients=int(rng.integers(1, 4)),
        )


# ----------------------------------------------------------------------
# fault actors
# ----------------------------------------------------------------------
class FaultyPolicy:
    """Wrap a policy; fail chosen decisions with :class:`PolicyFaultError`.

    The fault is raised *before* delegating, so a faulted decision
    leaves the wrapped policy's internal state -- and the broker's
    recorded operation stream -- exactly as if the call never happened;
    journal replay through the unwrapped policy therefore reproduces
    the surviving decisions bit for bit.
    """

    def __init__(self, policy, ordinals):
        self._policy = policy
        self._ordinals = frozenset(int(o) for o in ordinals)
        self.calls = 0
        self.faults_raised = 0

    def allocate(self, demands, memory, now=0.0):
        self.calls += 1
        if self.calls in self._ordinals:
            self.faults_raised += 1
            raise PolicyFaultError(
                f"injected policy fault at decision {self.calls}"
            )
        return self._policy.allocate(demands, memory, now=now)

    def __getattr__(self, name):
        return getattr(self._policy, name)


class CircuitBreaker:
    """Per-disk breaker: consecutive failures open it for a cooldown.

    While open, callers fail fast (reroute or doom) instead of burning
    their deadline budget on retries.  After the cooldown the breaker
    half-opens: one probe is allowed through, and a single further
    failure re-opens it immediately.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 0.05):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        #: Consecutive failures since the last success.
        self.failures = 0
        #: Times the breaker tripped open (telemetry).
        self.opens = 0
        self._open_until: Optional[float] = None

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.failures >= self.threshold and self._open_until is None:
            self._open_until = now + self.cooldown
            self.opens += 1

    def record_success(self) -> None:
        self.failures = 0
        self._open_until = None

    def is_open(self, now: float) -> bool:
        if self._open_until is None:
            return False
        if now >= self._open_until:
            # Half-open: allow one probe; one failure re-opens.
            self._open_until = None
            self.failures = self.threshold - 1
            return False
        return True


class FaultInjector:
    """Arm a :class:`FaultSchedule` as timers against a live gateway.

    Window boundaries become ``loop.call_at`` callbacks on the
    gateway's clock (simulated seconds scaled by ``time_scale``).  Any
    exception inside a boundary callback is routed to the gateway's
    failure channel -- timer context would otherwise swallow it.
    Overlapping memory-pressure windows compose as the max theft, not
    the sum: the pool is re-bounded to ``base - max(active stolen)`` at
    every boundary.
    """

    def __init__(self, schedule: FaultSchedule, gateway):
        self.schedule = schedule
        self.gateway = gateway
        self._timers: List = []
        self._active_thieves: Dict[int, MemoryPressureWindow] = {}
        self._base_pool = gateway.config.resources.memory_pages

    def arm(self) -> None:
        """Schedule every window boundary (call after ``gateway.start``)."""
        gateway = self.gateway
        loop = gateway._loop
        at = lambda sim: gateway._t0 + gateway._to_wall(sim)  # noqa: E731
        for window in self.schedule.disk_windows:
            self._timers.append(
                loop.call_at(at(window.start), self._guard, self._open_disk, window)
            )
            self._timers.append(
                loop.call_at(at(window.end), self._guard, self._close_disk, window)
            )
        for index, window in enumerate(self.schedule.memory_windows):
            self._timers.append(
                loop.call_at(
                    at(window.start), self._guard, self._open_thief, index, window
                )
            )
            self._timers.append(
                loop.call_at(at(window.end), self._guard, self._close_thief, index)
            )

    def cancel(self) -> None:
        """Disarm every pending boundary and restore healthy state."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for disk in self.gateway.disks:
            disk.faulted = False
            disk.core.fault_multiplier = 1.0
        if self._active_thieves:
            self._active_thieves.clear()
            self._refresh_pool()

    # -- boundary callbacks ---------------------------------------------
    def _guard(self, fn, *args) -> None:
        try:
            fn(*args)
        except Exception as error:  # timer context: surface via drain()
            self.gateway._fail(error)

    def _open_disk(self, window: DiskFaultWindow) -> None:
        disk = self.gateway.disks[window.disk]
        if window.kind == DEGRADE:
            disk.core.fault_multiplier = window.factor
            self.gateway.report.disk_degrades += 1
        else:
            disk.faulted = True
            self.gateway.report.disk_outages += 1

    def _close_disk(self, window: DiskFaultWindow) -> None:
        disk = self.gateway.disks[window.disk]
        if window.kind == DEGRADE:
            disk.core.fault_multiplier = 1.0
        else:
            disk.faulted = False

    def _open_thief(self, index: int, window: MemoryPressureWindow) -> None:
        self._active_thieves[index] = window
        self.gateway.report.pool_shrinks += 1
        self._refresh_pool()

    def _close_thief(self, index: int) -> None:
        self._active_thieves.pop(index, None)
        self._refresh_pool()

    def _refresh_pool(self) -> None:
        stolen = max(
            (w.stolen_pages for w in self._active_thieves.values()), default=0
        )
        self.gateway.set_pool_pages(max(1, self._base_pool - stolen))


# ----------------------------------------------------------------------
# crash recovery: the broker journal
# ----------------------------------------------------------------------
class JournalRecorder:
    """Append broker operations to a JSON-lines journal, flushed per op.

    Duck-types :class:`~repro.core.broker.BrokerTrace` (the broker only
    calls ``record``), with a header line carrying what a cold restart
    needs to rebuild the policy: ``{"header": {"policy": spec,
    "total_pages": N, "sample_size": K}}``.  Each op is flushed as it is
    written, so a SIGKILL mid-run leaves at worst one torn final line
    (which :func:`load_journal` drops).
    """

    def __init__(self, path, header: Optional[dict] = None):
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.ops_written = 0
        if header is not None:
            self._fh.write(
                json.dumps({"header": header}, separators=(",", ":")) + "\n"
            )
            self._fh.flush()

    @classmethod
    def for_policy(cls, path, policy_spec: str, config) -> "JournalRecorder":
        """A recorder whose header matches one gateway configuration."""
        return cls(
            path,
            header={
                "policy": policy_spec,
                "total_pages": config.resources.memory_pages,
                "sample_size": config.pmm.sample_size,
            },
        )

    def record(self, op: tuple) -> None:
        self._fh.write(json.dumps(op, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.ops_written += 1

    def close(self) -> None:
        self._fh.close()


def _tuplize(value):
    if isinstance(value, list):
        return tuple(_tuplize(item) for item in value)
    return value


def load_journal(path) -> Tuple[Optional[dict], List[tuple]]:
    """Read a journal back: ``(header, ops)``.

    A torn final line (the crash interrupted a write) is dropped;
    corruption anywhere else raises.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    header: Optional[dict] = None
    ops: List[tuple] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn final line: the SIGKILL landed mid-write
            raise ValueError(f"corrupt journal line {index + 1} in {path}")
        if isinstance(record, dict):
            header = record.get("header", header)
        else:
            ops.append(_tuplize(record))
    return header, ops


@dataclass
class RecoveredLedger:
    """What replaying a journal through a fresh broker established."""

    policy: str
    total_pages: int
    ops_replayed: int
    decisions_replayed: int
    #: Queries that were in flight at the crash; their grants were
    #: released during recovery (the clients are gone).
    released: Tuple[int, ...]
    departures: int
    completions: int
    misses: int
    #: The allocation vector after releasing survivors and issuing one
    #: final decision -- must be empty for a conserved ledger.
    final_allocation: Tuple[Tuple[int, int], ...]

    @property
    def clean(self) -> bool:
        return not self.final_allocation

    def render(self) -> str:
        lines = [
            f"journal recovery: policy={self.policy} "
            f"pool={self.total_pages} pages",
            f"  ops replayed       : {self.ops_replayed} "
            f"({self.decisions_replayed} decisions, verified)",
            f"  departures         : {self.departures} "
            f"({self.completions} completed, {self.misses} missed)",
            f"  orphaned grants    : {len(self.released)} released "
            f"{list(self.released)}",
            "  ledger conserved; invariants clean"
            if self.clean
            else f"  LEDGER NOT EMPTY: {self.final_allocation}",
        ]
        return "\n".join(lines)


def recover_journal(path, policy=None) -> RecoveredLedger:
    """Replay a crashed gateway's journal to a consistent ledger.

    Rebuilds the policy from the journal header (or uses ``policy``),
    replays every operation through a fresh broker with the
    :class:`~repro.rtdbs.invariants.InvariantChecker` attached and
    decision verification on, re-applies the final allocation through a
    fresh :class:`~repro.serve.dataplane.TrackedAllocator` (the
    conservation law at the crash point), then releases every orphaned
    in-flight query and issues one final decision -- which must come
    back empty.  Raises on any divergence; returns the
    :class:`RecoveredLedger` summary otherwise.
    """
    from repro.core.broker import MemoryBroker, replay_ops
    from repro.policies.registry import make_policy
    from repro.rtdbs.invariants import InvariantChecker
    from repro.serve.dataplane import TrackedAllocator

    header, ops = load_journal(path)
    if header is None:
        raise ValueError(f"journal {path} has no header record")
    spec = str(header["policy"])
    total_pages = int(header["total_pages"])
    sample_size = int(header["sample_size"])
    resolved = policy if policy is not None else make_policy(spec)
    broker = MemoryBroker(resolved, total_pages, sample_size)
    InvariantChecker().attach_broker(broker)
    decisions = replay_ops(ops, broker, verify_decisions=True)

    # The conservation law at the crash point: the surviving entries'
    # grants must fit the (possibly thief-shrunken) pool.
    allocator = TrackedAllocator(broker.total_pages)
    allocator.apply(
        {entry.qid: entry.pages for entry in broker.present if entry.pages > 0}
    )

    survivors = tuple(sorted(entry.qid for entry in broker.present))
    last_now = 0.0
    for op in ops:
        if op[0] == "reallocate":
            last_now = float(op[1])
    for qid in survivors:
        broker.release(qid)
        allocator.release(qid)
    final = broker.reallocate(now=last_now)
    allocator.apply(final.allocation)
    return RecoveredLedger(
        policy=spec,
        total_pages=broker.total_pages,
        ops_replayed=len(ops),
        decisions_replayed=len(decisions),
        released=survivors,
        departures=broker.departures,
        completions=broker.completions,
        misses=broker.misses,
        final_allocation=tuple(sorted(final.allocation.items())),
    )
