"""The live admission gateway: the paper's policies against real queries.

:class:`LiveGateway` is an asyncio service that does for wall-clock
queries what the DES :class:`~repro.rtdbs.query_manager.QueryManager`
does for simulated ones -- and drives the *identical*
:class:`~repro.core.broker.MemoryBroker` /
:class:`~repro.policies.base.MemoryPolicy` objects to do it:

* submissions enter the broker's wait queue and every arrival and
  departure triggers a re-allocation decision;
* decisions are enforced through a
  :class:`~repro.serve.dataplane.TrackedAllocator` (an independent
  conservation-law ledger) before any grant reaches an operator;
* admitted queries run the *real* adaptive operators of
  :mod:`repro.queries` -- the PPHJ hash join and the adaptive external
  sort -- against the in-memory relations of a
  :class:`~repro.serve.dataplane.LiveDataPlane`.  The data plane is
  *shared and contended*: cacheable operand reads consult one
  cross-query :class:`~repro.serve.dataplane.LiveBufferPool` (the live
  buffer manager -- reservations shrink the LRU region every query
  shares), disk accesses consult the per-disk prefetch cache and queue
  in Earliest-Deadline order with the elevator tie-break on per-disk
  :class:`~repro.serve.dataplane.LiveDisk` service queues -- the same
  :class:`~repro.core.devices.DeviceCore` scheduling and pricing the
  simulator's disks run (concurrent queries stretch each other's
  accesses by real queueing delay, and interleaved scans break each
  other's sequential positioning), and CPU bursts occupy a slot of a
  bounded ED-ordered worker gate.  Disk service moves real bytes
  through the per-disk page stores (zero-copy replay);
* deadlines are enforced firmly: an expiry timer aborts a query
  wherever it is (waiting or mid-operator), releasing its memory and
  temp extents, and it counts as a missed, served query;
* per-class served/missed counts, throughput, admission-decision
  latency, and the observed MPL are collected in a
  :class:`LiveReport`.

Simulated seconds map to wall seconds through ``time_scale`` (0.05 =
20x faster than real time); deadlines scale identically, so policy
behaviour is preserved while a 60-second scenario replays in ~3
seconds of wall clock.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple, Union

from repro.core.broker import BrokerTrace, MemoryBroker
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.policies.registry import make_policy
from repro.queries.base import MemoryGrant, Operator
from repro.queries.cost_model import StandAloneCostModel
from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess, READ
from repro.rtdbs.config import SimulationConfig
from repro.serve.dataplane import (
    GrantLeakError,
    LiveBufferPool,
    LiveDataPlane,
    LiveDisk,
    TrackedAllocator,
)
from repro.serve.faults import (
    CircuitBreaker,
    DiskFaultError,
    FaultInjector,
    FaultSchedule,
    FaultyPolicy,
    PolicyFaultError,
)
from repro.serve.workload import LiveArrival, LiveSchedule, make_operator

WAITING = "waiting"
RUNNING = "running"
DONE = "done"
ABORTED = "aborted"
#: Rejected at arrival by overload shedding: never registered, never
#: granted, answered with a structured ``shed`` response.
SHED = "shed"

#: Never sleep for less than this (wall seconds): event-loop timers are
#: only ~millisecond-accurate, so service debt is accumulated and paid
#: in chunks at least this large.  Each paid chunk returns its pacing
#: carry (debt minus wall actually elapsed) so timer overshoot is
#: repaid by the next chunk instead of compounding over a replay.
MIN_SLEEP = 0.001


def _quantize(seconds: float) -> float:
    """Floor a sleep request to a whole-millisecond quantum.

    The stdlib selector rounds epoll timeouts *up* to whole
    milliseconds, so ``sleep(0.0012)`` actually takes ~2.3 ms -- nearly
    double.  Requesting the floored quantum keeps the per-sleep error
    under ~0.2 ms; the sub-millisecond remainder rides the pacing carry
    instead of being rounded up by the kernel on every chunk.
    """
    return int(seconds * 1000.0) * 0.001


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy when the package is present.

    uvloop's timers and wakeups are several times cheaper than the
    stdlib loop's, which compounds over the thousands of paced chunks
    in a live replay.  Purely optional: returns ``False`` (a no-op)
    when uvloop is not installed.
    """
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True


class PriorityWorkerGate:
    """Earliest-Deadline admission to a fixed number of worker slots.

    The simulated CPU and disks serve requests in ED order; a plain
    FIFO thread pool would quietly replace that with arrival order and
    distort every policy comparison.  This gate hands worker slots to
    the most urgent waiter first: service chunks are small (a few
    milliseconds), so an urgent query overtakes a backlog at chunk
    granularity -- the live analogue of the simulator's priority
    queues.

    Releases are batched: each :meth:`release` parks the slot and
    schedules one flush per event-loop pass, so N chunks finishing in
    the same pass cost one heap drain instead of N handoffs -- and a
    more urgent waiter that enqueues in that same pass wins the slot,
    which a direct handoff would have given to a patient one.
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError(f"need at least one worker slot, got {slots}")
        self._free = slots
        self._waiters: List[tuple] = []  # heap of (priority, seq, future)
        self._seq = 0
        self._pending = 0  # slots released but not yet flushed
        self._flush_scheduled = False

    async def acquire(self, priority: float) -> None:
        if self._free > 0 and not self._waiters:
            self._free -= 1
            return
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heappush(self._waiters, (priority, self._seq, future))
        try:
            await future  # a flushed slot is handed over here
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was handed over in the same loop pass the
                # expiry cancelled us: give it back or it leaks.
                self.release()
            raise

    def release(self) -> None:
        self._pending += 1
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        free = self._free + self._pending
        self._pending = 0
        waiters = self._waiters
        while free > 0 and waiters:
            _priority, _seq, future = heappop(waiters)
            if not future.done():  # skip waiters cancelled by expiry
                future.set_result(None)
                free -= 1
        self._free = free


@dataclass
class LiveQuery:
    """One in-flight query's runtime state."""

    arrival: LiveArrival
    operator: Operator
    grant: MemoryGrant
    state: str = WAITING
    demand_min: int = 0
    demand_max: int = 0
    submitted_wall: float = 0.0
    admitted_wall: Optional[float] = None
    task: Optional[asyncio.Task] = None
    expiry: Optional[asyncio.TimerHandle] = None


@dataclass
class LiveClassStats:
    """Per-class live outcome counters."""

    arrivals: int = 0
    served: int = 0
    missed: int = 0
    #: Rejected at arrival by overload shedding (not served, not missed).
    shed: int = 0

    @property
    def completed(self) -> int:
        return self.served - self.missed

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.served if self.served else 0.0


@dataclass
class LiveReport:
    """Everything one live run measured."""

    policy: str
    time_scale: float
    workers: int
    arrivals: int = 0
    served: int = 0
    missed: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    per_class: Dict[str, LiveClassStats] = field(default_factory=dict)
    #: Admission decisions made (one per broker reallocation).
    decisions: int = 0
    decision_seconds: float = 0.0
    decision_max_seconds: float = 0.0
    #: Time-weighted number of admitted queries (wall-clock weighted).
    observed_mpl: float = 0.0
    pages_read: int = 0
    pages_written: int = 0
    bytes_moved: int = 0
    #: Shared buffer-pool consultations (cacheable operand reads).
    pool_hits: int = 0
    pool_misses: int = 0
    #: Wall seconds each disk's arm spent in service / chunks spent
    #: queueing behind other queries' chunks (contention telemetry).
    disk_busy: Tuple[float, ...] = ()
    disk_queue: Tuple[float, ...] = ()
    #: Per-tenant outcome counters (populated when arrivals carry a
    #: tenant tag -- the multi-tenant server and ``--tenants`` mode).
    per_tenant: Dict[str, LiveClassStats] = field(default_factory=dict)
    # -- degraded-mode telemetry (all zero on the no-fault path) -------
    #: Arrivals rejected by overload shedding.
    shed: int = 0
    #: Backoff retries against faulted disks.
    disk_retries: int = 0
    #: Cacheable reads rerouted to a healthy replica disk.
    disk_reroutes: int = 0
    #: Chunks abandoned fast (breaker open with no replica, or the
    #: deadline budget could not absorb another backoff).
    disk_fast_fails: int = 0
    #: Circuit-breaker trips across all disks.
    breaker_opens: int = 0
    #: Fault windows opened against the disks.
    disk_outages: int = 0
    disk_degrades: int = 0
    #: Injected policy exceptions survived (previous allocation kept).
    policy_faults: int = 0
    #: Queries aborted because their client vanished mid-request.
    client_cancels: int = 0
    #: Memory-pressure windows that shrank the effective pool.
    pool_shrinks: int = 0

    @property
    def completed(self) -> int:
        return self.served - self.missed

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.served if self.served else 0.0

    @property
    def pool_hit_ratio(self) -> float:
        consulted = self.pool_hits + self.pool_misses
        return self.pool_hits / consulted if consulted else 0.0

    @property
    def disk_queue_seconds(self) -> float:
        """Total wall seconds spent queueing across all disks."""
        return sum(self.disk_queue)

    @property
    def disk_queue_sim_seconds(self) -> float:
        """Queueing delay in simulated seconds (comparable to the DES)."""
        return self.disk_queue_seconds / self.time_scale if self.time_scale else 0.0

    @property
    def queries_per_sec(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def decisions_per_sec(self) -> float:
        return self.decisions / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def decision_latency_mean_us(self) -> float:
        if not self.decisions:
            return 0.0
        return self.decision_seconds / self.decisions * 1e6


class LiveGateway:
    """Admission control + grant enforcement for real concurrent queries."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: Union[str, MemoryPolicy],
        time_scale: float = 0.05,
        workers: Optional[int] = None,
        payload_bytes: int = 256,
        invariants: bool = False,
        recorder: Optional[BrokerTrace] = None,
        faults: Optional[FaultSchedule] = None,
        shed_overload: bool = False,
    ):
        config.validate()
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, got {time_scale}")
        self.config = config
        resolved_policy: MemoryPolicy = (
            make_policy(policy, config.pmm) if isinstance(policy, str) else policy
        )
        self.faults = faults
        self.shed_overload = shed_overload
        if faults is not None and faults.policy_faults:
            resolved_policy = FaultyPolicy(resolved_policy, faults.policy_faults)
        self.policy = resolved_policy
        self.time_scale = time_scale
        #: Worker-pool width defaults to the modelled parallelism: one
        #: CPU plus the disk farm.
        self.workers = (
            workers if workers is not None else config.resources.num_disks + 1
        )
        self.broker = MemoryBroker(
            self.policy,
            config.resources.memory_pages,
            config.pmm.sample_size,
            recorder=recorder,
        )
        self.allocator = TrackedAllocator(config.resources.memory_pages)
        #: The shared, cross-query buffer pool (grants + LRU reuse).
        self.pool = LiveBufferPool(self.allocator)
        self.dataplane = LiveDataPlane(config, payload_bytes=payload_bytes)
        #: The contended per-disk ED+elevator service queues.
        self.disks: List[LiveDisk] = self.dataplane.disks
        self.cost_model = StandAloneCostModel(
            resources=config.resources,
            costs=config.cpu_costs,
            tuples_per_page=config.tuples_per_page,
            fudge_factor=config.workload.fudge_factor,
            join_selectivity=config.workload.join_selectivity,
        )
        if invariants:
            from repro.rtdbs.invariants import InvariantChecker

            InvariantChecker().attach_broker(self.broker, pool=self.pool)

        self._jobs: Dict[int, LiveQuery] = {}
        #: Callbacks invoked with each DepartureRecord (the TCP server
        #: resolves per-client response futures here).
        self.departure_listeners: List = []
        #: Per-disk circuit breakers for the outage-survival path.  The
        #: cooldown and retry base are simulated seconds scaled to wall
        #: clock, so degraded-mode behaviour is time-scale invariant.
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(threshold=3, cooldown=self._to_wall(2.0))
            for _ in range(config.resources.num_disks)
        ]
        self._retry_base = self._to_wall(0.25)
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, self)
            if faults is not None and (faults.disk_windows or faults.memory_windows)
            else None
        )
        self._gate: Optional[PriorityWorkerGate] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._reallocating = False
        self._drained: Optional[asyncio.Event] = None
        #: First enforcement/operator failure seen on a callback or task
        #: path (where asyncio would otherwise swallow it); re-raised by
        #: :meth:`drain` so a broken policy fails the run loudly.
        self._failure: Optional[BaseException] = None

        self.report = LiveReport(
            policy=self.policy.name, time_scale=time_scale, workers=self.workers
        )
        # Time-weighted MPL + batch-window accounting.
        self._mpl_integral = 0.0
        self._mpl_last_count = 0
        self._mpl_last_wall = 0.0
        self._busy_seconds = 0.0
        self._batch_wall_start = 0.0
        self._batch_mpl_start = 0.0
        self._batch_busy_start = 0.0
        self._batch_disk_busy = [0.0] * len(self.disks)
        self._batch_pool = (0, 0)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def _wall(self) -> float:
        return self._loop.time() - self._t0

    def sim_now(self) -> float:
        """Current time in simulated seconds."""
        return self._wall() / self.time_scale

    def _to_wall(self, sim_seconds: float) -> float:
        return sim_seconds * self.time_scale

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._gate = PriorityWorkerGate(self.workers)
        self._drained = asyncio.Event()
        self._drained.set()
        self._t0 = self._loop.time()
        if self._injector is not None:
            self._injector.arm()

    async def close(self) -> None:
        """Tear down: abort in-flight queries, then prove the ledger
        is empty -- a close that would leak grants raises
        :class:`~repro.serve.dataplane.GrantLeakError`."""
        if self._injector is not None:
            self._injector.cancel()
        had_jobs = bool(self._jobs)
        self._abort_all()
        if had_jobs:
            await asyncio.sleep(0)  # let cancelled tasks unwind
        if self._loop is not None:
            # Chunks cancelled mid-service release their disk arm on a
            # deferred timer (non-preemptive service); give those a
            # bounded window so the disks reach quiescence.
            deadline = self._loop.time() + 1.0
            while (
                any(disk.in_service for disk in self.disks)
                and self._loop.time() < deadline
            ):
                await asyncio.sleep(0.001)
        if self.allocator.reserved_pages:
            raise GrantLeakError(
                f"gateway closed with {self.allocator.reserved_pages} pages "
                "still reserved in the grant ledger"
            )

    def _abort_all(self) -> None:
        """Abort every in-flight query, releasing grants and chunks.

        Runs on gateway failure and at close: each job's expiry timer
        and task are cancelled (queued disk chunks unwind through the
        non-preemptive cancel path) and its grant, temp extents, and
        broker entry are released so the conservation ledger drains.
        """
        for job in list(self._jobs.values()):
            qid = job.arrival.qid
            if qid not in self._jobs:
                continue  # departed while a sibling was torn down
            if job.expiry is not None:
                job.expiry.cancel()
                job.expiry = None
            if job.task is not None:
                job.task.cancel()
            job.state = ABORTED
            try:
                job.operator.release_resources()
            except Exception as error:
                self._fail(error)
            self.pool.release(qid)
            del self._jobs[qid]
            self.broker.release(qid)
        if self._drained is not None:
            self._drained.set()

    async def run_schedule(self, schedule: LiveSchedule) -> LiveReport:
        """Replay a full open-loop schedule and wait for the last
        departure (every query departs: completion or deadline abort)."""
        await self.start()
        try:
            for arrival in schedule.arrivals:
                # Pace against the absolute wall target with floored
                # sleeps: one rounded-up timer per arrival would make
                # every query ~1 ms late, silently eating its deadline
                # slack at tight time scales.
                target = self._t0 + self._to_wall(arrival.arrival)
                while True:
                    delay = target - self._loop.time()
                    if delay <= 0.0002:  # close enough: stop short of
                        break  # a sleep(0) spin on the remainder
                    await asyncio.sleep(_quantize(delay))
                self.submit(arrival)
            await self.drain()
        finally:
            self._finish_report()
            await self.close()
        return self.report

    async def drain(self) -> None:
        """Wait until no query is in flight.

        Re-raises the first failure captured on an expiry-callback or
        query-task path (e.g. :class:`GrantOversubscribedError` from a
        broken policy) -- those contexts have no awaiter of their own.
        """
        if self._jobs and self._failure is None:
            self._drained.clear()
            await self._drained.wait()
        if self._failure is not None:
            raise self._failure

    def _fail(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
            if self._loop is not None and self._jobs:
                # A failed gateway must not sit on grants: tear down
                # on a fresh loop pass (this path can be reached from
                # inside a departure, where teardown would reenter).
                self._loop.call_soon(self._abort_all)
        if self._drained is not None:
            self._drained.set()  # unblock drain() so the error surfaces

    def _finish_report(self) -> None:
        report = self.report
        report.wall_seconds = self._wall()
        report.sim_seconds = report.wall_seconds / self.time_scale
        self._note_mpl()
        if report.wall_seconds > 0:
            report.observed_mpl = self._mpl_integral / report.wall_seconds
        report.pages_read = sum(s.pages_read for s in self.dataplane.stores)
        report.pages_written = sum(s.pages_written for s in self.dataplane.stores)
        report.bytes_moved = (
            report.pages_read + report.pages_written
        ) * self.dataplane.stores[0].payload_bytes
        report.pool_hits = self.pool.hits
        report.pool_misses = self.pool.misses
        report.disk_busy = tuple(disk.busy_seconds for disk in self.disks)
        report.disk_queue = tuple(disk.queue_seconds for disk in self.disks)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, arrival: LiveArrival) -> LiveQuery:
        """A query arrives: register with the broker, arm its deadline,
        re-allocate.  Must be called on the event loop.

        With ``shed_overload`` on, an arrival whose deadline is already
        infeasible against the projected wait-queue backlog is rejected
        here -- state :data:`SHED`, never registered, never granted --
        instead of queueing doomed work that would steal memory from
        feasible queries before missing anyway."""
        if arrival.qid in self._jobs:
            raise ValueError(f"duplicate query id {arrival.qid}")
        if (
            self.shed_overload
            and self.config.firm_deadlines
            and self._projected_completion(arrival) > arrival.deadline
        ):
            return self._shed(arrival)
        grant = MemoryGrant(0)
        operator = make_operator(arrival, self.dataplane.context, grant, self.config)
        job = LiveQuery(
            arrival=arrival,
            operator=operator,
            grant=grant,
            submitted_wall=self._wall(),
        )
        # Clip demands to the *effective* pool (identical to the config
        # pool until a memory-pressure fault shrinks it).
        pool_pages = self.broker.total_pages
        job.demand_max = min(operator.max_pages, pool_pages)
        job.demand_min = min(operator.min_pages, job.demand_max)
        self._jobs[arrival.qid] = job
        if self._drained is not None:
            self._drained.clear()
        self.report.arrivals += 1
        stats = self.report.per_class.setdefault(
            arrival.class_name, LiveClassStats()
        )
        stats.arrivals += 1
        if arrival.tenant:
            tenant_stats = self.report.per_tenant.setdefault(
                arrival.tenant, LiveClassStats()
            )
            tenant_stats.arrivals += 1
        self.broker.register(
            arrival.qid,
            arrival.class_name,
            arrival.deadline,
            job.demand_min,
            job.demand_max,
        )
        if self.config.firm_deadlines:
            job.expiry = self._loop.call_at(
                self._t0 + self._to_wall(arrival.deadline),
                self._expire,
                job,
            )
        self._reallocate()
        return job

    def _projected_completion(self, arrival: LiveArrival) -> float:
        """Earliest the arrival could plausibly finish (sim seconds).

        Its own stand-alone service plus the waiting queries' stand-
        alone backlog spread over the worker pool -- deliberately
        optimistic (ignores contention stretch), so shedding only fires
        on arrivals that are infeasible even in the best case.
        """
        backlog = sum(
            job.arrival.standalone
            for job in self._jobs.values()
            if job.state == WAITING
        )
        return (
            self.sim_now()
            + arrival.standalone
            + backlog / max(1, self.workers)
        )

    def _shed(self, arrival: LiveArrival) -> LiveQuery:
        """Reject at arrival: counted, never registered, never granted."""
        job = LiveQuery(
            arrival=arrival,
            operator=None,
            grant=MemoryGrant(0),
            state=SHED,
            submitted_wall=self._wall(),
        )
        report = self.report
        report.arrivals += 1
        report.shed += 1
        stats = report.per_class.setdefault(arrival.class_name, LiveClassStats())
        stats.arrivals += 1
        stats.shed += 1
        if arrival.tenant:
            tenant_stats = report.per_tenant.setdefault(
                arrival.tenant, LiveClassStats()
            )
            tenant_stats.arrivals += 1
            tenant_stats.shed += 1
        return job

    def set_pool_pages(self, pages: int) -> None:
        """Resize the effective buffer pool (memory-pressure fault).

        Shrinking re-allocates *before* the ledger shrinks, so every
        grant already fits the new bound when the allocator's
        conservation check runs; growing resizes first so the policy
        can immediately spend the returned pages.
        """
        if pages == self.broker.total_pages:
            return
        shrinking = pages < self.broker.total_pages
        self.broker.set_total_pages(pages)
        if shrinking:
            self._reallocate()
            self.pool.resize(pages)
        else:
            self.pool.resize(pages)
            self._reallocate()

    def cancel_query(self, qid: int) -> bool:
        """Abort one in-flight query whose client vanished.

        The disconnect analogue of :meth:`_expire`: cancels the task
        (queued chunks unwind through the non-preemptive path), departs
        the query as missed, and releases its grant.  Returns ``False``
        when the query already departed.
        """
        job = self._jobs.get(qid)
        if job is None or job.state in (DONE, ABORTED):
            return False
        job.state = ABORTED
        self.report.client_cancels += 1
        if job.task is not None:
            job.task.cancel()
        try:
            self._depart(job, missed=True)
        except Exception as error:  # surface enforcement bugs via drain()
            self._fail(error)
        return True

    def _reallocate(self) -> None:
        """One broker decision, enforced and enacted in ED order."""
        if self._reallocating:
            return
        self._reallocating = True
        try:
            started = _time.perf_counter()
            try:
                decision = self.broker.reallocate(now=self.sim_now())
            except PolicyFaultError:
                # Transient allocation-path failure: keep the previous
                # (still-conserved) allocation and retry on the next
                # arrival or departure.  Real policy bugs are not
                # PolicyFaultError and still fail the run loudly.
                self.report.policy_faults += 1
                return
            self.pool.apply(decision.allocation)
            elapsed = _time.perf_counter() - started
            report = self.report
            report.decisions += 1
            report.decision_seconds += elapsed
            if elapsed > report.decision_max_seconds:
                report.decision_max_seconds = elapsed
            allocation = decision.allocation
            for qid in decision.order:
                job = self._jobs[qid]
                pages = allocation.get(qid, 0)
                if job.state == WAITING and pages > 0:
                    self._admit(job, pages)
                elif job.state == RUNNING:
                    job.grant.set(pages)
            self._note_mpl()
        finally:
            self._reallocating = False

    def _admit(self, job: LiveQuery, pages: int) -> None:
        job.state = RUNNING
        job.admitted_wall = self._wall()
        job.grant.set(pages)
        job.grant.started = True
        job.task = self._loop.create_task(
            self._run_query(job), name=f"query-{job.arrival.qid}"
        )

    def _note_mpl(self) -> None:
        now = self._wall()
        self._mpl_integral += self._mpl_last_count * (now - self._mpl_last_wall)
        self._mpl_last_wall = now
        self._mpl_last_count = self.broker.admitted_count

    def observed_mpl(self) -> float:
        """Time-weighted admitted-query count so far (the live MPL)."""
        wall = self._wall()
        if wall <= 0:
            return 0.0
        integral = self._mpl_integral + self._mpl_last_count * (
            wall - self._mpl_last_wall
        )
        return integral / wall

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run_query(self, job: LiveQuery) -> None:
        try:
            await self._drive(job)
        except asyncio.CancelledError:
            return  # the expiry timer owns the departure
        except DiskFaultError:
            # The outage-survival path gave up on this query: a firm
            # miss, not a gateway failure -- grants released, counters
            # conserved, every other query keeps running.
            if job.state != RUNNING:
                return  # the expiry abort got there first
            job.state = ABORTED
            try:
                self._depart(job, missed=True)
            except Exception as error:
                self._fail(error)
            return
        except Exception as error:  # operator bug: fail the run loudly
            self._fail(error)
            job.state = ABORTED
            try:
                self._depart(job, missed=True)
            except Exception as cleanup_error:
                self._fail(cleanup_error)
            return
        if job.state != RUNNING:
            return  # aborted while the final step was in flight
        job.state = DONE
        missed = self.sim_now() > job.arrival.deadline + 1e-9
        try:
            self._depart(job, missed=missed)
        except Exception as error:  # enforcement violation on departure
            self._fail(error)

    async def _drive(self, job: LiveQuery) -> None:
        """Execute the operator's request stream against the data plane.

        Disk accesses are priced by the shared
        :class:`~repro.core.devices.DeviceCore` -- the same seek /
        rotate / transfer rules and stream-tail state the DES disks run
        -- against *shared, contended* resources: cacheable operand
        reads consult the cross-query :class:`LiveBufferPool` first (a
        hit skips the disk entirely), any read then consults the
        per-disk prefetch cache (a hit costs no arm time, as in
        ``Disk.submit_op``), positioning reads the per-disk head and
        stream state every query updates (interleaved scans break each
        other's streams), and the service time is paid on the disk's
        ED+elevator queue, where concurrent queries' chunks genuinely
        wait behind more urgent ones.  A query alone in the server
        still runs in roughly its stand-alone time; under load,
        queueing delay and lost sequentiality stretch it the way the
        DES disks predict.

        Service debt (scaled to wall seconds) is accumulated per
        resource and paid in ``MIN_SLEEP``-sized chunks: CPU debt
        occupies an ED-ordered worker-gate slot, disk debt occupies
        the disk's arm while the pending byte traffic replays through
        the page store (zero-copy).  Every paid chunk returns its
        pacing carry (debt minus wall actually elapsed), so timer
        overshoot is repaid by the next chunk instead of compounding
        into spurious deadline misses.
        """
        resources = self.config.resources
        cpu_rate = resources.cpu_rate
        start_io = self.config.cpu_costs.start_io
        scale = self.time_scale
        pool = self.pool
        disks = self.disks
        cpu_debt = 0.0
        disk_debt: Dict[int, float] = {}  # wall seconds per disk
        disk_ops: Dict[int, List[tuple]] = {}
        for request in job.operator.run():
            request_type = type(request)
            if request_type is DiskAccess:
                cacheable_read = request.kind == READ and request.cacheable
                if cacheable_read and pool.read_hit(
                    request.disk, request.start_page, request.npages
                ):
                    # Served from the shared pool: no disk time, but
                    # the attached per-block processing burst still
                    # runs (mirror of the DES buffer-hit path).
                    cpu_debt += request.cpu / cpu_rate * scale
                    if cpu_debt >= MIN_SLEEP:
                        cpu_debt = await self._cpu_chunk(job, cpu_debt)
                    continue
                disk = disks[request.disk]
                serving_index = request.disk
                if disk.faulted:
                    # Outage window: bounded retry within the deadline
                    # budget, then reroute or fail fast.  Raises
                    # DiskFaultError when the query is doomed.
                    serving_index = await self._survive_disk_fault(job, request)
                # The per-block burst + "start an I/O" run on the CPU
                # (overlapping other queries' disk service), exactly as
                # the DES charges them -- prefetch hit or not.
                cpu_debt += (request.cpu + start_io) / cpu_rate * scale
                if cpu_debt >= MIN_SLEEP:
                    cpu_debt = await self._cpu_chunk(job, cpu_debt)
                if serving_index == request.disk:
                    if request.kind == READ and disk.read_hit(
                        request.start_page, request.npages
                    ):
                        # Per-disk prefetch-cache hit: no arm time, the
                        # same short-circuit as ``Disk.submit_op``.
                        if cacheable_read:
                            pool.install(
                                request.disk, request.start_page, request.npages
                            )
                        continue
                    service = disk.service_time(
                        request.start_page, request.npages
                    )
                else:
                    # Rerouted replica read: priced by the detour rule
                    # (stateless average seek + half rotation), so a
                    # foreign address range never pollutes the serving
                    # disk's head, stream, or prefetch state.
                    service = disks[serving_index].detour_service_time(
                        request.npages
                    )
                debt = disk_debt.get(serving_index, 0.0) + service * scale
                disk_ops.setdefault(serving_index, []).append(
                    (
                        request.kind,
                        request.start_page,
                        request.npages,
                        cacheable_read,
                        request.disk,
                    )
                )
                if debt >= MIN_SLEEP:
                    disk_debt[serving_index] = await self._disk_chunk(
                        job, serving_index, debt, disk_ops.pop(serving_index)
                    )
                else:
                    disk_debt[serving_index] = debt
            elif request_type is CPUBurst:
                cpu_debt += request.instructions / cpu_rate * scale
                if cpu_debt >= MIN_SLEEP:
                    cpu_debt = await self._cpu_chunk(job, cpu_debt)
            elif request_type is AllocationWait:
                if job.grant.pages > 0:
                    continue  # raced with a re-grant: keep going
                # Outstanding debts here are sub-MIN_SLEEP residues by
                # construction (anything larger was paid at accrual).
                # They stay accumulated across the wait: paying a
                # 0.3 ms residue with a real timer costs ~1 ms of
                # overshoot, which compounds into spurious deadline
                # misses at tight time scales.
                # No award between here and the wait is possible: the
                # check and the waiter registration share one loop pass.
                wake = asyncio.Event()
                job.grant.on_change(wake.set)
                await wake.wait()
            else:  # pragma: no cover - operator contract violation
                raise TypeError(f"unknown operator request {request!r}")
        if cpu_debt > 0.0 or disk_ops:
            await self._settle(job, cpu_debt, disk_debt, disk_ops)

    async def _settle(
        self,
        job: LiveQuery,
        cpu_debt: float,
        disk_debt: Dict[int, float],
        disk_ops: Dict[int, List[tuple]],
    ) -> float:
        """Pay every outstanding sub-chunk debt (end of the stream)."""
        if cpu_debt > 0.0:
            cpu_debt = await self._cpu_chunk(job, cpu_debt)
        for disk_index in list(disk_ops):
            await self._disk_chunk(
                job,
                disk_index,
                disk_debt.pop(disk_index, 0.0),
                disk_ops.pop(disk_index),
            )
        return cpu_debt

    async def _cpu_chunk(self, job: LiveQuery, debt_wall: float) -> float:
        """Occupy one ED-ordered worker-gate slot for the chunk.

        The chunk sleeps inline on the event loop and returns its
        pacing carry -- ``debt - wall actually elapsed``, usually a
        small negative number -- which rides back into the query's
        debt accumulator: timer overshoot self-corrects instead of
        compounding into inflated execution times over hundreds of
        chunks.  Service is non-preemptive: a deadline abort mid-chunk
        cancels the awaiting task immediately, but the slot stays
        occupied for the chunk's remaining service time.
        """
        self._busy_seconds += debt_wall
        await self._gate.acquire(job.arrival.deadline)
        loop = self._loop
        started = loop.time()
        try:
            await asyncio.sleep(_quantize(debt_wall))
        except asyncio.CancelledError:
            remaining = debt_wall - (loop.time() - started)
            if remaining > 0.0:
                loop.call_later(remaining, self._gate.release)
            else:
                self._gate.release()
            raise
        except BaseException:
            self._gate.release()
            raise
        self._gate.release()
        return debt_wall - (loop.time() - started)

    async def _disk_chunk(
        self, job: LiveQuery, disk_index: int, debt_wall: float, ops: List[tuple]
    ) -> float:
        """Pay one disk's service chunk on its ED+elevator queue.

        The chunk waits behind every more urgent chunk (the contention
        the zero-contention deadline pricing knows nothing about),
        then holds the arm for its service time while the byte traffic
        replays through the page store -- zero-copy, inline, counted
        toward the service time; cacheable reads are installed into
        the shared buffer pool as they complete, where any concurrent
        query can hit them.  Returns the chunk's pacing carry.
        """
        disk = self.disks[disk_index]
        await disk.acquire(job.arrival.deadline, disk.cylinder_of(ops[0][1]))
        loop = self._loop
        started = loop.time()
        store = disk.store
        for kind, start_page, npages, _cacheable, _home in ops:
            if kind == READ:
                store.replay_read(start_page, npages)
            else:
                store.write_blank(start_page, npages)
        try:
            remaining = _quantize(debt_wall - (loop.time() - started))
            if remaining > 0.0:
                await asyncio.sleep(remaining)
        except asyncio.CancelledError:
            # Non-preemptive service, as on the DES disk: the abort
            # cancels the query immediately, but the arm stays held
            # until the chunk's service time is up -- releasing early
            # would serve two chunks on one arm.
            disk.chunks_cancelled += 1
            left = debt_wall - (loop.time() - started)
            if left > 0.0:
                loop.call_later(left, disk.release)
            else:
                disk.release()
            raise
        except BaseException:
            disk.release()
            raise
        if debt_wall > 0.0:
            disk.busy_seconds += debt_wall
        disk.accesses += len(ops)
        disk.chunks_served += 1
        pool = self.pool
        for kind, start_page, npages, cacheable, home_disk in ops:
            if cacheable and kind == READ:
                # Keyed by the *home* disk: a rerouted replica read
                # still caches under the canonical address.
                pool.install(home_disk, start_page, npages)
        disk.release()
        return debt_wall - (loop.time() - started)

    async def _survive_disk_fault(self, job: LiveQuery, request) -> int:
        """Outage survival: bounded retry, then reroute or fail fast.

        Retries with exponential backoff while the firm deadline can
        still absorb another attempt; failures feed the disk's shared
        circuit breaker, so once it trips, *every* query skips the
        backoff burn: cacheable (replicated) reads reroute to the first
        healthy replica, anything else raises
        :class:`~repro.serve.faults.DiskFaultError` immediately and the
        query departs as a miss.  Returns the serving disk index.
        """
        home = request.disk
        disk = self.disks[home]
        breaker = self._breakers[home]
        report = self.report
        loop = self._loop
        deadline_wall = self._t0 + self._to_wall(job.arrival.deadline)
        attempt = 0
        while True:
            if not disk.faulted:
                breaker.record_success()
                return home
            now = loop.time()
            if breaker.is_open(now):
                if request.kind == READ and request.cacheable:
                    for index, candidate in enumerate(self.disks):
                        if index != home and not candidate.faulted:
                            report.disk_reroutes += 1
                            return index
                report.disk_fast_fails += 1
                raise DiskFaultError(
                    f"disk {home} outage: breaker open, no healthy replica"
                )
            opens_before = breaker.opens
            breaker.record_failure(now)
            if breaker.opens > opens_before:
                report.breaker_opens += 1
            backoff = max(
                MIN_SLEEP, _quantize(self._retry_base * (2.0**attempt))
            )
            if (
                self.config.firm_deadlines
                and now + backoff >= deadline_wall
            ):
                report.disk_fast_fails += 1
                raise DiskFaultError(
                    f"disk {home} outage: deadline budget exhausted "
                    f"after {attempt} retries"
                )
            report.disk_retries += 1
            attempt += 1
            await asyncio.sleep(backoff)

    # ------------------------------------------------------------------
    # departures
    # ------------------------------------------------------------------
    def _expire(self, job: LiveQuery) -> None:
        """Firm deadline: abort wherever the query is [Hari90]."""
        if job.state in (DONE, ABORTED):
            return
        job.state = ABORTED
        if job.task is not None:
            job.task.cancel()
        try:
            self._depart(job, missed=True)
        except Exception as error:  # callback context: surface via drain()
            self._fail(error)

    def _depart(self, job: LiveQuery, missed: bool) -> None:
        qid = job.arrival.qid
        if qid not in self._jobs:
            return  # already departed
        job.operator.release_resources()
        self.pool.release(qid)
        del self._jobs[qid]
        self.broker.release(qid)
        if job.expiry is not None:
            job.expiry.cancel()
            job.expiry = None

        now_sim = self.sim_now()
        now_wall = self._wall()
        scale = self.time_scale
        if job.admitted_wall is None:
            waiting = (now_wall - job.submitted_wall) / scale
            execution = 0.0
        else:
            waiting = (job.admitted_wall - job.submitted_wall) / scale
            execution = (now_wall - job.admitted_wall) / scale
        record = DepartureRecord(
            qid=qid,
            class_name=job.arrival.class_name,
            missed=missed,
            arrival=job.arrival.arrival,
            departure=now_sim,
            waiting_time=waiting,
            execution_time=execution,
            time_constraint=job.arrival.time_constraint,
            max_demand=job.demand_max,
            min_demand=job.demand_min,
            operand_io_count=job.operator.operand_io_count,
            memory_fluctuations=job.grant.fluctuations,
        )
        self.broker.note_departure(missed)
        report = self.report
        report.served += 1
        stats = report.per_class.setdefault(job.arrival.class_name, LiveClassStats())
        stats.served += 1
        tenant_stats = None
        if job.arrival.tenant:
            tenant_stats = report.per_tenant.setdefault(
                job.arrival.tenant, LiveClassStats()
            )
            tenant_stats.served += 1
        if missed:
            report.missed += 1
            stats.missed += 1
            if tenant_stats is not None:
                tenant_stats.missed += 1
        for listener in self.departure_listeners:
            listener(record)
        window = self.broker.departure_feedback(record)
        if window is not None:
            self.broker.deliver_batch(self._batch_stats(window))
        self._reallocate()
        if not self._jobs and self._drained is not None:
            self._drained.set()

    def _batch_stats(self, window) -> BatchStats:
        """Live telemetry for the policy's feedback channel.

        The realized MPL is the wall-time-weighted admitted count over
        the window; CPU utilisation is the worker gate's busy fraction,
        disk utilisations are each arm's measured busy fraction over
        the window, and the shared pool's window hit ratio rides along
        -- the same signals the DES host measures for its policies.
        """
        now = self._wall()
        self._note_mpl()
        span = max(now - self._batch_wall_start, 1e-9)
        realized_mpl = (self._mpl_integral - self._batch_mpl_start) / span
        busy = self._busy_seconds - self._batch_busy_start
        utilization = min(1.0, busy / (span * self.workers))
        disk_utilizations = tuple(
            min(1.0, (disk.busy_seconds - previous) / span)
            for disk, previous in zip(self.disks, self._batch_disk_busy)
        )
        pool_hits, pool_misses = self._batch_pool
        consulted = (self.pool.hits - pool_hits) + (self.pool.misses - pool_misses)
        pool_hit_ratio = (self.pool.hits - pool_hits) / consulted if consulted else 0.0
        self._batch_wall_start = now
        self._batch_mpl_start = self._mpl_integral
        self._batch_busy_start = self._busy_seconds
        self._batch_disk_busy = [disk.busy_seconds for disk in self.disks]
        self._batch_pool = (self.pool.hits, self.pool.misses)
        return BatchStats(
            time=self.sim_now(),
            served=window.served,
            missed=window.missed,
            realized_mpl=realized_mpl,
            cpu_utilization=utilization,
            disk_utilizations=disk_utilizations,
            pool_hit_ratio=pool_hit_ratio,
        )


async def run_live(
    config: SimulationConfig,
    policy: Union[str, MemoryPolicy],
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = False,
    faults: Optional[FaultSchedule] = None,
    shed_overload: bool = False,
    recorder: Optional[BrokerTrace] = None,
) -> LiveReport:
    """Convenience: build gateway + schedule, replay, return the report."""
    from repro.serve.workload import build_schedule

    gateway = LiveGateway(
        config,
        policy,
        time_scale=time_scale,
        workers=workers,
        invariants=invariants,
        faults=faults,
        shed_overload=shed_overload,
        recorder=recorder,
    )
    schedule = build_schedule(
        config, gateway.dataplane.database, horizon=horizon, max_arrivals=max_arrivals
    )
    return await gateway.run_schedule(schedule)
