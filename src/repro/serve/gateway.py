"""The live admission gateway: the paper's policies against real queries.

:class:`LiveGateway` is an asyncio service that does for wall-clock
queries what the DES :class:`~repro.rtdbs.query_manager.QueryManager`
does for simulated ones -- and drives the *identical*
:class:`~repro.core.broker.MemoryBroker` /
:class:`~repro.policies.base.MemoryPolicy` objects to do it:

* submissions enter the broker's wait queue and every arrival and
  departure triggers a re-allocation decision;
* decisions are enforced through a
  :class:`~repro.serve.dataplane.TrackedAllocator` (an independent
  conservation-law ledger) before any grant reaches an operator;
* admitted queries run the *real* adaptive operators of
  :mod:`repro.queries` -- the PPHJ hash join and the adaptive external
  sort -- against the in-memory relations of a
  :class:`~repro.serve.dataplane.LiveDataPlane`.  Operator requests
  are executed inside a bounded worker pool: every CPU burst and disk
  access occupies a worker for its calibrated service time (scaled by
  ``time_scale``) and disk accesses move real bytes, so concurrency
  beyond the pool queues -- genuine resource contention, not a model;
* deadlines are enforced firmly: an expiry timer aborts a query
  wherever it is (waiting or mid-operator), releasing its memory and
  temp extents, and it counts as a missed, served query;
* per-class served/missed counts, throughput, admission-decision
  latency, and the observed MPL are collected in a
  :class:`LiveReport`.

Simulated seconds map to wall seconds through ``time_scale`` (0.05 =
20x faster than real time); deadlines scale identically, so policy
behaviour is preserved while a 60-second scenario replays in ~3
seconds of wall clock.
"""

from __future__ import annotations

import asyncio
import time as _time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Union

from repro.core.broker import BrokerTrace, MemoryBroker
from repro.policies.base import BatchStats, DepartureRecord, MemoryPolicy
from repro.policies.registry import make_policy
from repro.queries.base import MemoryGrant, Operator
from repro.queries.cost_model import StandAloneCostModel
from repro.queries.requests import AllocationWait, CPUBurst, DiskAccess, READ
from repro.rtdbs.config import SimulationConfig
from repro.serve.dataplane import LiveDataPlane, TrackedAllocator
from repro.serve.workload import LiveArrival, LiveSchedule, make_operator

WAITING = "waiting"
RUNNING = "running"
DONE = "done"
ABORTED = "aborted"

#: Never sleep for less than this (wall seconds): event-loop timers are
#: only ~millisecond-accurate, so service debt is accumulated and paid
#: in chunks at least this large.
MIN_SLEEP = 0.001


class PriorityWorkerGate:
    """Earliest-Deadline admission to a fixed number of worker slots.

    The simulated CPU and disks serve requests in ED order; a plain
    FIFO thread pool would quietly replace that with arrival order and
    distort every policy comparison.  This gate hands worker slots to
    the most urgent waiter first: service chunks are small (a few
    milliseconds), so an urgent query overtakes a backlog at chunk
    granularity -- the live analogue of the simulator's priority
    queues.
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError(f"need at least one worker slot, got {slots}")
        self._free = slots
        self._waiters: List[tuple] = []  # heap of (priority, seq, future)
        self._seq = 0

    async def acquire(self, priority: float) -> None:
        if self._free > 0:
            self._free -= 1
            return
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heappush(self._waiters, (priority, self._seq, future))
        try:
            await future  # the releasing holder hands its slot over
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was handed over in the same loop pass the
                # expiry cancelled us: give it back or it leaks.
                self.release()
            raise

    def release(self) -> None:
        while self._waiters:
            _priority, _seq, future = heappop(self._waiters)
            if not future.done():  # skip waiters cancelled by expiry
                future.set_result(None)
                return
        self._free += 1


@dataclass
class LiveQuery:
    """One in-flight query's runtime state."""

    arrival: LiveArrival
    operator: Operator
    grant: MemoryGrant
    state: str = WAITING
    demand_min: int = 0
    demand_max: int = 0
    submitted_wall: float = 0.0
    admitted_wall: Optional[float] = None
    task: Optional[asyncio.Task] = None
    expiry: Optional[asyncio.TimerHandle] = None


@dataclass
class LiveClassStats:
    """Per-class live outcome counters."""

    arrivals: int = 0
    served: int = 0
    missed: int = 0

    @property
    def completed(self) -> int:
        return self.served - self.missed

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.served if self.served else 0.0


@dataclass
class LiveReport:
    """Everything one live run measured."""

    policy: str
    time_scale: float
    workers: int
    arrivals: int = 0
    served: int = 0
    missed: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    per_class: Dict[str, LiveClassStats] = field(default_factory=dict)
    #: Admission decisions made (one per broker reallocation).
    decisions: int = 0
    decision_seconds: float = 0.0
    decision_max_seconds: float = 0.0
    #: Time-weighted number of admitted queries (wall-clock weighted).
    observed_mpl: float = 0.0
    pages_read: int = 0
    pages_written: int = 0
    bytes_moved: int = 0

    @property
    def completed(self) -> int:
        return self.served - self.missed

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.served if self.served else 0.0

    @property
    def queries_per_sec(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def decisions_per_sec(self) -> float:
        return self.decisions / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def decision_latency_mean_us(self) -> float:
        if not self.decisions:
            return 0.0
        return self.decision_seconds / self.decisions * 1e6


class LiveGateway:
    """Admission control + grant enforcement for real concurrent queries."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: Union[str, MemoryPolicy],
        time_scale: float = 0.05,
        workers: Optional[int] = None,
        payload_bytes: int = 256,
        invariants: bool = False,
        recorder: Optional[BrokerTrace] = None,
    ):
        config.validate()
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, got {time_scale}")
        self.config = config
        self.policy: MemoryPolicy = (
            make_policy(policy, config.pmm) if isinstance(policy, str) else policy
        )
        self.time_scale = time_scale
        #: Worker-pool width defaults to the modelled parallelism: one
        #: CPU plus the disk farm.
        self.workers = (
            workers if workers is not None else config.resources.num_disks + 1
        )
        self.broker = MemoryBroker(
            self.policy,
            config.resources.memory_pages,
            config.pmm.sample_size,
            recorder=recorder,
        )
        self.allocator = TrackedAllocator(config.resources.memory_pages)
        self.dataplane = LiveDataPlane(config, payload_bytes=payload_bytes)
        self.cost_model = StandAloneCostModel(
            resources=config.resources,
            costs=config.cpu_costs,
            tuples_per_page=config.tuples_per_page,
            fudge_factor=config.workload.fudge_factor,
            join_selectivity=config.workload.join_selectivity,
        )
        if invariants:
            from repro.rtdbs.invariants import InvariantChecker

            InvariantChecker().attach_broker(self.broker)

        self._jobs: Dict[int, LiveQuery] = {}
        #: Callbacks invoked with each DepartureRecord (the TCP server
        #: resolves per-client response futures here).
        self.departure_listeners: List = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._gate: Optional[PriorityWorkerGate] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._reallocating = False
        self._drained: Optional[asyncio.Event] = None
        #: First enforcement/operator failure seen on a callback or task
        #: path (where asyncio would otherwise swallow it); re-raised by
        #: :meth:`drain` so a broken policy fails the run loudly.
        self._failure: Optional[BaseException] = None

        self.report = LiveReport(
            policy=self.policy.name, time_scale=time_scale, workers=self.workers
        )
        # Time-weighted MPL + batch-window accounting.
        self._mpl_integral = 0.0
        self._mpl_last_count = 0
        self._mpl_last_wall = 0.0
        self._busy_seconds = 0.0
        self._batch_wall_start = 0.0
        self._batch_mpl_start = 0.0
        self._batch_busy_start = 0.0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def _wall(self) -> float:
        return self._loop.time() - self._t0

    def sim_now(self) -> float:
        """Current time in simulated seconds."""
        return self._wall() / self.time_scale

    def _to_wall(self, sim_seconds: float) -> float:
        return sim_seconds * self.time_scale

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._gate = PriorityWorkerGate(self.workers)
        self._drained = asyncio.Event()
        self._drained.set()
        self._t0 = self._loop.time()

    async def close(self) -> None:
        for job in list(self._jobs.values()):
            if job.expiry is not None:
                job.expiry.cancel()
            if job.task is not None:
                job.task.cancel()
        if self._jobs:
            await asyncio.sleep(0)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def run_schedule(self, schedule: LiveSchedule) -> LiveReport:
        """Replay a full open-loop schedule and wait for the last
        departure (every query departs: completion or deadline abort)."""
        await self.start()
        try:
            for arrival in schedule.arrivals:
                delay = self._to_wall(arrival.arrival) - self._wall()
                if delay > 0:
                    await asyncio.sleep(delay)
                self.submit(arrival)
            await self.drain()
        finally:
            self._finish_report()
            await self.close()
        return self.report

    async def drain(self) -> None:
        """Wait until no query is in flight.

        Re-raises the first failure captured on an expiry-callback or
        query-task path (e.g. :class:`GrantOversubscribedError` from a
        broken policy) -- those contexts have no awaiter of their own.
        """
        if self._jobs and self._failure is None:
            self._drained.clear()
            await self._drained.wait()
        if self._failure is not None:
            raise self._failure

    def _fail(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
        if self._drained is not None:
            self._drained.set()  # unblock drain() so the error surfaces

    def _finish_report(self) -> None:
        report = self.report
        report.wall_seconds = self._wall()
        report.sim_seconds = report.wall_seconds / self.time_scale
        self._note_mpl()
        if report.wall_seconds > 0:
            report.observed_mpl = self._mpl_integral / report.wall_seconds
        report.pages_read = sum(s.pages_read for s in self.dataplane.stores)
        report.pages_written = sum(s.pages_written for s in self.dataplane.stores)
        report.bytes_moved = (
            report.pages_read + report.pages_written
        ) * self.dataplane.stores[0].payload_bytes

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, arrival: LiveArrival) -> LiveQuery:
        """A query arrives: register with the broker, arm its deadline,
        re-allocate.  Must be called on the event loop."""
        if arrival.qid in self._jobs:
            raise ValueError(f"duplicate query id {arrival.qid}")
        grant = MemoryGrant(0)
        operator = make_operator(arrival, self.dataplane.context, grant, self.config)
        job = LiveQuery(
            arrival=arrival,
            operator=operator,
            grant=grant,
            submitted_wall=self._wall(),
        )
        pool_pages = self.config.resources.memory_pages
        job.demand_max = min(operator.max_pages, pool_pages)
        job.demand_min = min(operator.min_pages, job.demand_max)
        self._jobs[arrival.qid] = job
        if self._drained is not None:
            self._drained.clear()
        self.report.arrivals += 1
        stats = self.report.per_class.setdefault(
            arrival.class_name, LiveClassStats()
        )
        stats.arrivals += 1
        self.broker.register(
            arrival.qid,
            arrival.class_name,
            arrival.deadline,
            job.demand_min,
            job.demand_max,
        )
        if self.config.firm_deadlines:
            job.expiry = self._loop.call_at(
                self._t0 + self._to_wall(arrival.deadline),
                self._expire,
                job,
            )
        self._reallocate()
        return job

    def _reallocate(self) -> None:
        """One broker decision, enforced and enacted in ED order."""
        if self._reallocating:
            return
        self._reallocating = True
        try:
            started = _time.perf_counter()
            decision = self.broker.reallocate(now=self.sim_now())
            self.allocator.apply(decision.allocation)
            elapsed = _time.perf_counter() - started
            report = self.report
            report.decisions += 1
            report.decision_seconds += elapsed
            if elapsed > report.decision_max_seconds:
                report.decision_max_seconds = elapsed
            allocation = decision.allocation
            for qid in decision.order:
                job = self._jobs[qid]
                pages = allocation.get(qid, 0)
                if job.state == WAITING and pages > 0:
                    self._admit(job, pages)
                elif job.state == RUNNING:
                    job.grant.set(pages)
            self._note_mpl()
        finally:
            self._reallocating = False

    def _admit(self, job: LiveQuery, pages: int) -> None:
        job.state = RUNNING
        job.admitted_wall = self._wall()
        job.grant.set(pages)
        job.grant.started = True
        job.task = self._loop.create_task(
            self._run_query(job), name=f"query-{job.arrival.qid}"
        )

    def _note_mpl(self) -> None:
        now = self._wall()
        self._mpl_integral += self._mpl_last_count * (now - self._mpl_last_wall)
        self._mpl_last_wall = now
        self._mpl_last_count = self.broker.admitted_count

    def observed_mpl(self) -> float:
        """Time-weighted admitted-query count so far (the live MPL)."""
        wall = self._wall()
        if wall <= 0:
            return 0.0
        integral = self._mpl_integral + self._mpl_last_count * (
            wall - self._mpl_last_wall
        )
        return integral / wall

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run_query(self, job: LiveQuery) -> None:
        try:
            await self._drive(job)
        except asyncio.CancelledError:
            return  # the expiry timer owns the departure
        except Exception as error:  # operator bug: fail the run loudly
            self._fail(error)
            job.state = ABORTED
            try:
                self._depart(job, missed=True)
            except Exception as cleanup_error:
                self._fail(cleanup_error)
            return
        if job.state != RUNNING:
            return  # aborted while the final step was in flight
        job.state = DONE
        missed = self.sim_now() > job.arrival.deadline + 1e-9
        try:
            self._depart(job, missed=missed)
        except Exception as error:  # enforcement violation on departure
            self._fail(error)

    async def _drive(self, job: LiveQuery) -> None:
        """Execute the operator's request stream against the data plane.

        Disk accesses are priced with the same zero-contention rules as
        the stand-alone cost model the deadlines were computed from
        (positioning once per contiguous sequential stream, per-page
        positioning during merges), so a query alone in the server runs
        in roughly its stand-alone time.  Service debt (scaled to wall
        seconds) is accumulated and paid in ``MIN_SLEEP``-sized chunks
        *inside the worker pool* -- each chunk occupies a worker for
        its duration and replays the pending byte traffic through the
        page store, so a pool of W workers is a genuine W-way resource
        and concurrency beyond it queues.
        """
        resources = self.config.resources
        cpu_rate = resources.cpu_rate
        start_io = self.config.cpu_costs.start_io
        scale = self.time_scale
        rotation_half = resources.rotation_s / 2.0
        transfer = resources.transfer_s_per_page
        positioning = rotation_half + resources.seek_time(
            max(1, resources.num_cylinders // 8)
        )
        page_hop = rotation_half + transfer + resources.seek_time(1)
        debt_wall = 0.0
        pending: List[tuple] = []
        heads: Dict[int, int] = {}  # per-disk next-contiguous page
        for request in job.operator.run():
            request_type = type(request)
            if request_type is DiskAccess:
                if request.sequential:
                    service = request.npages * transfer
                    if heads.get(request.disk) != request.start_page:
                        service += positioning
                else:
                    service = request.npages * page_hop
                heads[request.disk] = request.start_page + request.npages
                sim_seconds = service + (request.cpu + start_io) / cpu_rate
                debt_wall += sim_seconds * scale
                pending.append(
                    (request.kind, request.disk, request.start_page, request.npages)
                )
                if debt_wall >= MIN_SLEEP:
                    debt_wall = await self._flush(job, debt_wall, pending)
            elif request_type is CPUBurst:
                debt_wall += request.instructions / cpu_rate * scale
                if debt_wall >= MIN_SLEEP:
                    debt_wall = await self._flush(job, debt_wall, pending)
            elif request_type is AllocationWait:
                if job.grant.pages > 0:
                    continue  # raced with a re-grant: keep going
                if debt_wall > 0.0 or pending:
                    debt_wall = await self._flush(job, debt_wall, pending)
                    if job.grant.pages > 0:
                        continue  # a re-grant landed during the flush
                # No award between here and the wait is possible: the
                # check and the waiter registration share one loop pass.
                wake = asyncio.Event()
                job.grant.on_change(wake.set)
                await wake.wait()
            else:  # pragma: no cover - operator contract violation
                raise TypeError(f"unknown operator request {request!r}")
        if debt_wall > 0.0 or pending:
            await self._flush(job, debt_wall, pending)

    async def _flush(
        self, job: LiveQuery, debt_wall: float, pending: List[tuple]
    ) -> float:
        """Pay accumulated service time (and byte traffic) in the pool.

        The worker slot is acquired in ED order (see
        :class:`PriorityWorkerGate`), then occupied for the chunk's
        duration while the pending byte traffic replays.
        """
        ops = tuple(pending)
        pending.clear()
        self._busy_seconds += debt_wall
        await self._gate.acquire(job.arrival.deadline)
        try:
            await self._loop.run_in_executor(
                self._pool, _serve_chunk, self.dataplane, debt_wall, ops
            )
        finally:
            self._gate.release()
        return 0.0

    # ------------------------------------------------------------------
    # departures
    # ------------------------------------------------------------------
    def _expire(self, job: LiveQuery) -> None:
        """Firm deadline: abort wherever the query is [Hari90]."""
        if job.state in (DONE, ABORTED):
            return
        job.state = ABORTED
        if job.task is not None:
            job.task.cancel()
        try:
            self._depart(job, missed=True)
        except Exception as error:  # callback context: surface via drain()
            self._fail(error)

    def _depart(self, job: LiveQuery, missed: bool) -> None:
        qid = job.arrival.qid
        if qid not in self._jobs:
            return  # already departed
        job.operator.release_resources()
        self.allocator.release(qid)
        del self._jobs[qid]
        self.broker.release(qid)
        if job.expiry is not None:
            job.expiry.cancel()
            job.expiry = None

        now_sim = self.sim_now()
        now_wall = self._wall()
        scale = self.time_scale
        if job.admitted_wall is None:
            waiting = (now_wall - job.submitted_wall) / scale
            execution = 0.0
        else:
            waiting = (job.admitted_wall - job.submitted_wall) / scale
            execution = (now_wall - job.admitted_wall) / scale
        record = DepartureRecord(
            qid=qid,
            class_name=job.arrival.class_name,
            missed=missed,
            arrival=job.arrival.arrival,
            departure=now_sim,
            waiting_time=waiting,
            execution_time=execution,
            time_constraint=job.arrival.time_constraint,
            max_demand=job.demand_max,
            min_demand=job.demand_min,
            operand_io_count=job.operator.operand_io_count,
            memory_fluctuations=job.grant.fluctuations,
        )
        self.broker.note_departure(missed)
        report = self.report
        report.served += 1
        stats = report.per_class.setdefault(job.arrival.class_name, LiveClassStats())
        stats.served += 1
        if missed:
            report.missed += 1
            stats.missed += 1
        for listener in self.departure_listeners:
            listener(record)
        window = self.broker.departure_feedback(record)
        if window is not None:
            self.broker.deliver_batch(self._batch_stats(window))
        self._reallocate()
        if not self._jobs and self._drained is not None:
            self._drained.set()

    def _batch_stats(self, window) -> BatchStats:
        """Live telemetry for the policy's feedback channel.

        The realized MPL is the wall-time-weighted admitted count over
        the window; utilisation is the worker pool's busy fraction (the
        live stand-in for the simulator's bottleneck-resource signal).
        """
        now = self._wall()
        self._note_mpl()
        span = max(now - self._batch_wall_start, 1e-9)
        realized_mpl = (self._mpl_integral - self._batch_mpl_start) / span
        busy = self._busy_seconds - self._batch_busy_start
        utilization = min(1.0, busy / (span * self.workers))
        self._batch_wall_start = now
        self._batch_mpl_start = self._mpl_integral
        self._batch_busy_start = self._busy_seconds
        return BatchStats(
            time=self.sim_now(),
            served=window.served,
            missed=window.missed,
            realized_mpl=realized_mpl,
            cpu_utilization=utilization,
            disk_utilizations=(),
        )


def _serve_chunk(
    dataplane: LiveDataPlane, busy_wall: float, ops: tuple
) -> None:
    """Worker-pool body of one service chunk: occupy + move bytes."""
    if busy_wall > 0:
        _time.sleep(busy_wall)
    for kind, disk, start_page, npages in ops:
        dataplane.copy_pages(
            "read" if kind == READ else "write", disk, start_page, npages
        )


async def run_live(
    config: SimulationConfig,
    policy: Union[str, MemoryPolicy],
    time_scale: float = 0.05,
    workers: Optional[int] = None,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
    invariants: bool = False,
) -> LiveReport:
    """Convenience: build gateway + schedule, replay, return the report."""
    from repro.serve.workload import build_schedule

    gateway = LiveGateway(
        config,
        policy,
        time_scale=time_scale,
        workers=workers,
        invariants=invariants,
    )
    schedule = build_schedule(
        config, gateway.dataplane.database, horizon=horizon, max_arrivals=max_arrivals
    )
    return await gateway.run_schedule(schedule)
