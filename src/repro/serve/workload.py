"""Open-loop live traffic: the simulator's workload, replayed for real.

:func:`build_schedule` reproduces the *exact* query stream a
fixed-seed simulation would generate -- same arrival instants, same
operand relations, same slack draws, same deadlines -- by replaying
the :class:`~repro.rtdbs.source.Source`'s per-class random streams
outside the simulator (the common-random-numbers discipline makes each
class's draws independent of event interleaving, so the schedule can
be computed ahead of time).  The live gateway then submits this
schedule open-loop: arrivals fire at their scheduled instants whether
or not earlier queries have finished, exactly like the simulated
Poisson sources.

Because the schedule *is* the simulated workload, a live run and a DES
run of the same scenario are an apples-to-apples comparison: same
queries, same deadlines, same memory demands -- only the execution
substrate differs.  ``tests/test_serve.py`` pins arrival-count parity
against the simulator per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.queries.base import MemoryGrant, Operator, OperatorContext
from repro.queries.cost_model import StandAloneCostModel
from repro.queries.hash_join import HashJoinOperator
from repro.queries.sort import ExternalSortOperator
from repro.rtdbs.config import EXTERNAL_SORT, HASH_JOIN, QueryClass, SimulationConfig
from repro.rtdbs.database import Database, Relation
from repro.sim.rng import Streams


@dataclass(frozen=True)
class LiveArrival:
    """One scheduled query submission (all times in simulated seconds)."""

    qid: int
    class_name: str
    query_type: str
    arrival: float
    deadline: float
    standalone: float
    #: Operand relation (the inner/building relation for joins).
    inner: Relation
    #: Probing relation for joins, ``None`` for sorts.
    outer: Optional[Relation]
    temp_disk: int
    #: Owning tenant ("" = untagged single-tenant traffic).  Tenants
    #: map onto query classes (the multitenant scenario family names
    #: one class per tenant); per-tenant outcomes land in
    #: :attr:`repro.serve.gateway.LiveReport.per_tenant`.
    tenant: str = ""

    @property
    def time_constraint(self) -> float:
        return self.deadline - self.arrival


@dataclass(frozen=True)
class LiveSchedule:
    """The full open-loop schedule for one scenario."""

    config: SimulationConfig
    arrivals: Tuple[LiveArrival, ...]
    horizon: float

    def per_class_counts(self) -> dict:
        counts: dict = {}
        for arrival in self.arrivals:
            counts[arrival.class_name] = counts.get(arrival.class_name, 0) + 1
        return counts


def _arrival_times(
    query_class: QueryClass, streams: Streams, horizon: float
) -> List[float]:
    """A class's arrival instants, replicating ``Source`` draw for draw."""
    arrivals = streams.stream(f"arrivals.{query_class.name}")
    times: List[float] = []
    modulation = query_class.modulation
    if modulation is None:
        rate = query_class.arrival_rate
        if rate <= 0.0:
            return times
        now = 0.0
        while True:
            now += arrivals.exponential(1.0 / rate)
            if now > horizon:
                return times
            times.append(now)
    # Modulated: thin a peak-rate candidate process, the state path on
    # its own stream (identical structure to Source._modulated_arrivals).
    state_stream = streams.stream(f"modulation.{query_class.name}")
    factors = modulation.factors
    dwells = modulation.dwell_seconds
    peak = modulation.peak_factor
    stochastic = modulation.stochastic

    def dwell(state: int) -> float:
        mean = dwells[state % len(dwells)]
        return state_stream.exponential(mean) if stochastic else mean

    state = 0
    next_toggle = dwell(0)
    peak_rate = query_class.arrival_rate * peak
    if peak_rate <= 0.0:
        return times
    now = 0.0
    while True:
        now += arrivals.exponential(1.0 / peak_rate)
        if now > horizon:
            return times
        while now >= next_toggle:
            state += 1
            next_toggle += dwell(state)
        factor = factors[state % len(factors)]
        if factor >= peak or state_stream.uniform(0.0, 1.0) * peak < factor:
            times.append(now)


def build_schedule(
    config: SimulationConfig,
    database: Database,
    horizon: Optional[float] = None,
    max_arrivals: Optional[int] = None,
) -> LiveSchedule:
    """Compute the open-loop schedule for one scenario config.

    ``database`` must be laid out from the same config seed (the
    gateway's :class:`~repro.serve.dataplane.LiveDataPlane` builds it
    exactly as :class:`~repro.rtdbs.system.RTDBSystem` would).  The
    returned arrivals are in submission order with simulator-identical
    query ids.
    """
    config.validate()
    limit = horizon if horizon is not None else config.duration
    streams = Streams(config.seed)
    cost_model = StandAloneCostModel(
        resources=config.resources,
        costs=config.cpu_costs,
        tuples_per_page=config.tuples_per_page,
        fudge_factor=config.workload.fudge_factor,
        join_selectivity=config.workload.join_selectivity,
    )

    # Per-class arrival instants first (independent streams), then one
    # global merge: the per-class operand/slack draws below happen in
    # per-class arrival order, which is all their streams ever see.
    tagged: List[Tuple[float, int, QueryClass]] = []
    for class_index, query_class in enumerate(config.workload.classes):
        for time in _arrival_times(query_class, streams, limit):
            tagged.append((time, class_index, query_class))
    tagged.sort(key=lambda item: (item[0], item[1]))
    if max_arrivals is not None:
        tagged = tagged[:max_arrivals]

    arrivals: List[LiveArrival] = []
    temp_cursor = 0
    for qid, (time, _class_index, query_class) in enumerate(tagged):
        picker = streams.stream(f"relations.{query_class.name}")
        slack_stream = streams.stream(f"slack.{query_class.name}")
        if query_class.query_type == HASH_JOIN:
            first = database.pick_relation(query_class.rel_groups[0], picker)
            second = database.pick_relation(query_class.rel_groups[1], picker)
            inner, outer = (
                (first, second) if first.pages <= second.pages else (second, first)
            )
            standalone = cost_model.hash_join_standalone(inner.pages, outer.pages)
        elif query_class.query_type == EXTERNAL_SORT:
            inner = database.pick_relation(query_class.rel_groups[0], picker)
            outer = None
            standalone = cost_model.sort_standalone(inner.pages)
        else:  # pragma: no cover - validated at config time
            raise ValueError(f"unknown query type {query_class.query_type!r}")
        if config.temp_placement == "local":
            temp_disk = inner.disk
        else:
            temp_disk = temp_cursor
            temp_cursor = (temp_cursor + 1) % config.resources.num_disks
        slack = slack_stream.uniform(*query_class.slack_range)
        arrivals.append(
            LiveArrival(
                qid=qid,
                class_name=query_class.name,
                query_type=query_class.query_type,
                arrival=time,
                deadline=time + standalone * slack,
                standalone=standalone,
                inner=inner,
                outer=outer,
                temp_disk=temp_disk,
            )
        )
    return LiveSchedule(config=config, arrivals=tuple(arrivals), horizon=limit)


def tag_tenants(schedule: LiveSchedule) -> LiveSchedule:
    """Tag every arrival with its query class as the owning tenant.

    The multitenant scenario family generates one query class per
    tenant (``tenant0`` .. ``tenantN``), so class identity *is* tenant
    identity there; tagging turns on per-tenant accounting in the
    gateway without touching the replayed traffic.
    """
    from dataclasses import replace

    return replace(
        schedule,
        arrivals=tuple(
            replace(arrival, tenant=arrival.class_name)
            for arrival in schedule.arrivals
        ),
    )


def submit_request(arrival: LiveArrival) -> dict:
    """The JSON-lines ``submit`` request replaying one scheduled
    arrival through the TCP front end (server or shard router).

    The tenant tag is what feeds the router's consistent-hash
    placement; the class tag keeps the policy-facing identity the
    schedule assigned (the receiving shard would otherwise re-derive
    it from the tenant name).  Slack is expressed relative to the
    stand-alone time so the receiving server reprices the deadline
    with its own cost model -- stand-alone times assume maximum
    memory, so they are identical on every shard regardless of the
    resource split.
    """
    request = {
        "op": "submit",
        "type": "hash_join" if arrival.query_type == HASH_JOIN else "sort",
        "pages": arrival.inner.pages,
        "slack": arrival.time_constraint / arrival.standalone,
        "class": arrival.class_name,
    }
    if arrival.outer is not None:
        request["outer_pages"] = arrival.outer.pages
    if arrival.tenant:
        request["tenant"] = arrival.tenant
    return request


def make_operator(
    arrival: LiveArrival,
    context: OperatorContext,
    grant: MemoryGrant,
    config: SimulationConfig,
) -> Operator:
    """Instantiate the real operator for one scheduled arrival."""
    if arrival.query_type == HASH_JOIN:
        return HashJoinOperator(
            context,
            grant,
            arrival.inner,
            arrival.outer,
            fudge_factor=config.workload.fudge_factor,
            selectivity=config.workload.join_selectivity,
            temp_disk=arrival.temp_disk,
        )
    return ExternalSortOperator(
        context, grant, arrival.inner, temp_disk=arrival.temp_disk
    )
