"""A consistent-hash front-end router over N live-server shards.

The router speaks the same JSON-lines protocol as
:class:`~repro.serve.server.LiveServer` -- clients do not know whether
they connected to a single server or a routed farm.  Every submission
is forwarded to the shard owning its tenant:

* **Placement** starts on a :class:`HashRing` (sha256 points, virtual
  nodes, deterministic in the scenario seed), so a tenant lands on the
  same shard across restarts and across routers.
* **Rebalancing**: a background task polls every shard's ``stats`` op
  -- the batch feedback channel that already carries miss ratio, pool
  hit ratio and queued disk seconds -- and, when the per-shard load
  skew exceeds a threshold, migrates one tenant from the hottest shard
  to the coldest.  New submissions route to the new shard immediately;
  in-flight queries drain on the old shard (their responses come back
  on its link, correlated by tag).

One TCP connection per shard carries all forwarded traffic: submit
responses arrive at query *departure* time, wildly out of order, so
:class:`ShardLink` correlates them with the ``tag`` echo the server
protocol provides.

Conservation is checked end to end: the router counts what it accepted
and relays, the shards count what they served, and
``router arrivals == Σ shard arrivals == Σ shard (served + shed)``
must hold once the farm is drained (``served`` includes deadline
misses -- a missed query still departs and still answers its client).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

#: readline limit on shard links and router connections -- aggregated
#: stats responses outgrow the 64 KiB asyncio default on big farms.
LINE_LIMIT = 1 << 20

#: Default wall seconds between rebalancer passes.
REBALANCE_INTERVAL = 0.5

#: Default skew trigger: migrate when the hottest shard's window load
#: exceeds the coldest's by more than this fraction of the mean.
SKEW_THRESHOLD = 0.5

#: Never rebalance on fewer window arrivals than this -- one lone
#: query is not skew.
MIN_SKEW_ARRIVALS = 4


def _point(seed: int, label: str) -> int:
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent tenant->shard placement, deterministic in ``seed``.

    Each shard contributes ``replicas`` virtual points on a 64-bit
    ring; a tenant hashes to a point and is owned by the next shard
    point clockwise.  Pure python, no dependencies; the same
    ``(seed, shards)`` pair always builds the same ring.
    """

    def __init__(self, shards: int, seed: int = 0, replicas: int = 64):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.seed = seed
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append(
                    (_point(seed, f"shard:{shard}:{replica}"), shard)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def place(self, tenant: str) -> int:
        """The shard owning ``tenant`` (stable for a fixed ring)."""
        where = bisect_right(self._points, _point(self.seed, f"tenant:{tenant}"))
        if where == len(self._points):
            where = 0
        return self._owners[where]


class ShardLink:
    """One JSON-lines connection to a shard, multiplexing concurrent
    requests via the server's ``tag`` echo.

    Many submits are in flight at once and their responses arrive at
    query departure time -- out of order -- so each request gets a
    link-private tag and a future; the reader task resolves futures as
    tagged responses land.  A dead link fails every pending future
    with :class:`ConnectionError` instead of hanging the callers.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._tags = count()
        self._pending: Dict[str, asyncio.Future] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=LINE_LIMIT
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def request(self, payload: dict) -> dict:
        """Send one request and await its (tag-correlated) response."""
        if self._writer is None:
            raise ConnectionError(f"shard {self.host}:{self.port} not connected")
        tag = f"link{next(self._tags)}"
        message = dict(payload)
        message["tag"] = tag
        future = asyncio.get_running_loop().create_future()
        self._pending[tag] = future
        data = json.dumps(message).encode() + b"\n"
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError) as error:
            self._pending.pop(tag, None)
            raise ConnectionError(
                f"shard {self.host}:{self.port} write failed: {error}"
            ) from error
        return await future

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(response, dict):
                    continue
                future = self._pending.pop(response.pop("tag", None), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            error = ConnectionError(
                f"shard link {self.host}:{self.port} closed"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    @property
    def inflight(self) -> int:
        return len(self._pending)

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None


@dataclass(frozen=True)
class Migration:
    """One rebalancer decision: ``tenant`` moved ``source -> target``."""

    tenant: str
    source: int
    target: int
    #: Wall seconds since the router started.
    at_wall: float

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "from": self.source,
            "to": self.target,
            "at_wall": round(self.at_wall, 3),
        }


class ShardRouter:
    """The asyncio front end: accept client submissions, place them on
    shards, relay the departure responses, rebalance on skew."""

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        ring_seed: int = 0,
        rebalance_interval: float = REBALANCE_INTERVAL,
        skew_threshold: float = SKEW_THRESHOLD,
        min_skew_arrivals: int = MIN_SKEW_ARRIVALS,
        placement: Optional[Dict[str, int]] = None,
    ):
        if not endpoints:
            raise ValueError("router needs at least one shard endpoint")
        self.links = [ShardLink(host, port) for host, port in endpoints]
        self.ring = HashRing(len(self.links), seed=ring_seed)
        #: tenant -> shard index.  Seeded from ``placement`` overrides
        #: (the shootout's skew demo packs every tenant on one shard),
        #: then filled lazily from the ring, then amended by
        #: migrations.
        self._placement: Dict[str, int] = dict(placement or {})
        for tenant, shard in self._placement.items():
            if not 0 <= shard < len(self.links):
                raise ValueError(
                    f"placement maps {tenant!r} to shard {shard}, but the "
                    f"farm has {len(self.links)} shards"
                )
        self.rebalance_interval = rebalance_interval
        self.skew_threshold = skew_threshold
        self.min_skew_arrivals = min_skew_arrivals
        self.migrations: List[Migration] = []
        self.rebalance_passes = 0
        # -- conservation counters ------------------------------------
        #: Submissions accepted and forwarded to a shard.
        self.arrivals = 0
        #: Shard responses relayed back to clients.
        self.responses = 0
        self.routed = [0] * len(self.links)
        self.per_tenant: Dict[str, int] = {}
        # -- rebalancer window state ----------------------------------
        self._window_tenant: Dict[str, int] = {}
        self._last_shard_arrivals = [0] * len(self.links)
        # -- lifecycle ------------------------------------------------
        self._server: Optional[asyncio.AbstractServer] = None
        self._rebalance_task: Optional[asyncio.Task] = None
        self._writers: set = set()
        self._draining = False
        self._closing = False
        self._closed = asyncio.Event()
        self._pending = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._t0 = 0.0

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Connect every shard link, bind the listener, start the
        rebalancer; returns ``(host, port)``."""
        for link in self.links:
            await link.connect()
        self._t0 = asyncio.get_running_loop().time()
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=LINE_LIMIT
        )
        if self.rebalance_interval > 0:
            self._rebalance_task = asyncio.ensure_future(self._rebalance_loop())
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    def place(self, tenant: str) -> int:
        """Current shard for ``tenant``: explicit placement (including
        migrations) first, ring otherwise; sticky once decided."""
        shard = self._placement.get(tenant)
        if shard is None:
            shard = self.ring.place(tenant)
            self._placement[tenant] = shard
        return shard

    # ------------------------------------------------------------------
    async def drain_stats(self, timeout: float = 60.0) -> dict:
        """Refuse new submissions, wait for every in-flight one to be
        answered (firm deadlines bound the wait), and return the final
        aggregated stats while the shard links are still open."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        return await self.stats()

    async def close(self) -> None:
        """Stop accepting, let in-flight requests answer, close the
        shard links.  Idempotent, like ``LiveServer.close``."""
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        self._draining = True
        try:
            if self._server is not None:
                self._server.close()
            if self._rebalance_task is not None:
                self._rebalance_task.cancel()
                try:
                    await self._rebalance_task
                except asyncio.CancelledError:
                    pass
                self._rebalance_task = None
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=60.0)
            except asyncio.TimeoutError:
                pass
            for writer in list(self._writers):
                writer.close()
            if self._server is not None:
                await self._server.wait_closed()
                self._server = None
            for link in self.links:
                await link.close()
        finally:
            self._closed.set()

    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        """One client connection, same discipline as ``LiveServer``:
        every line served in its own task, hostile input answered with
        structured errors, a disconnect cancels the in-flight relays."""
        self._writers.add(writer)
        state = {"tenant": ""}
        lock = asyncio.Lock()
        inflight: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._respond(
                        writer, lock, {"error": "request line too long"}
                    )
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(line, state, writer, lock)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for task in list(inflight):
                task.cancel()
            self._writers.discard(writer)
            writer.close()

    async def _serve_request(self, line, state, writer, lock) -> None:
        self._pending += 1
        self._idle.clear()
        tag = None
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response = {"error": f"malformed JSON: {error}"}
            else:
                if not isinstance(request, dict):
                    response = {"error": "request must be a JSON object"}
                else:
                    tag = request.get("tag")
                    try:
                        response = await self._dispatch(request, state)
                    except (ValueError, KeyError, TypeError) as error:
                        response = {"error": str(error)}
                    except ConnectionError as error:
                        response = {"error": f"shard unreachable: {error}"}
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:
                        response = {
                            "error": "internal error: "
                            f"{type(error).__name__}: {error}"
                        }
            if tag is not None:
                response["tag"] = tag
            await self._respond(writer, lock, response)
        except asyncio.CancelledError:
            return
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()

    async def _respond(self, writer, lock, response: dict) -> None:
        payload = json.dumps(response).encode() + b"\n"
        try:
            async with lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _dispatch(self, request: dict, state: dict) -> dict:
        op = request.get("op", "submit")
        if op == "hello":
            tenant = str(request.get("tenant", ""))
            state["tenant"] = tenant
            return {
                "tenant": tenant,
                "shard": self.place(tenant) if tenant else None,
            }
        if op == "stats":
            return await self.stats()
        if op == "submit":
            if self._draining:
                raise ValueError("router is draining; submission refused")
            tenant = str(request.get("tenant", state["tenant"]) or "")
            shard = self.place(tenant)
            self.arrivals += 1
            self.routed[shard] += 1
            self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1
            self._window_tenant[tenant] = (
                self._window_tenant.get(tenant, 0) + 1
            )
            forward = {
                key: value for key, value in request.items() if key != "tag"
            }
            forward["tenant"] = tenant
            response = await self.links[shard].request(forward)
            response["shard"] = shard
            self.responses += 1
            return response
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    async def stats(self) -> dict:
        """Router counters, every shard's own stats, the aggregate, and
        the conservation cross-check."""
        shard_stats = list(
            await asyncio.gather(
                *(link.request({"op": "stats"}) for link in self.links)
            )
        )
        aggregate = {"arrivals": 0, "served": 0, "missed": 0, "shed": 0}
        for one in shard_stats:
            for key in aggregate:
                aggregate[key] += int(one.get(key, 0) or 0)
        aggregate["miss_ratio"] = round(
            aggregate["missed"] / aggregate["served"], 4
        ) if aggregate["served"] else 0.0
        return {
            "arrivals": self.arrivals,
            "responses": self.responses,
            "routed": list(self.routed),
            "placement": dict(sorted(self._placement.items())),
            "per_tenant": dict(sorted(self.per_tenant.items())),
            "migrations": [m.as_dict() for m in self.migrations],
            "rebalance_passes": self.rebalance_passes,
            "shards": shard_stats,
            "aggregate": aggregate,
            "conservation": self.conservation(shard_stats),
            "draining": self._draining,
        }

    def conservation(self, shard_stats: Sequence[dict]) -> dict:
        """The cross-check: router arrivals == Σ shard arrivals, and --
        once the farm is drained -- Σ shard (served + shed) == arrivals
        (``served`` includes deadline misses; every accepted query
        departs exactly once)."""
        shard_arrivals = sum(
            int(one.get("arrivals", 0) or 0) for one in shard_stats
        )
        served = sum(int(one.get("served", 0) or 0) for one in shard_stats)
        shed = sum(int(one.get("shed", 0) or 0) for one in shard_stats)
        settled = served + shed
        return {
            "router_arrivals": self.arrivals,
            "shard_arrivals": shard_arrivals,
            "settled": settled,
            "responses": self.responses,
            #: Arrival conservation holds at any instant.
            "ok": shard_arrivals == self.arrivals
            and settled <= shard_arrivals,
            #: True once drained: every arrival settled and answered.
            "complete": shard_arrivals == self.arrivals
            and settled == shard_arrivals
            and self.responses == self.arrivals,
        }

    # ------------------------------------------------------------------
    async def _rebalance_loop(self) -> None:
        """Poll every shard's batch feedback and migrate on skew."""
        while True:
            await asyncio.sleep(self.rebalance_interval)
            try:
                shard_stats = await asyncio.gather(
                    *(link.request({"op": "stats"}) for link in self.links)
                )
            except ConnectionError:
                continue
            self.rebalance_passes += 1
            self._maybe_migrate(list(shard_stats))

    def _maybe_migrate(self, shard_stats: List[dict]) -> None:
        """One rebalance pass over one batch-feedback window.

        Load per shard = window arrivals weighted by the degradation
        the shard itself reports (miss ratio, queued disk seconds from
        the ``stats`` op).  When the hottest exceeds the coldest by
        more than ``skew_threshold`` of the mean, one tenant moves hot
        -> cold -- the one whose window traffic best halves the gap.
        """
        arrivals = [int(one.get("arrivals", 0) or 0) for one in shard_stats]
        window = [
            max(0, now - before)
            for now, before in zip(arrivals, self._last_shard_arrivals)
        ]
        self._last_shard_arrivals = arrivals
        tenant_window = self._window_tenant
        self._window_tenant = {}
        if sum(window) < self.min_skew_arrivals:
            return
        loads = [
            window[i]
            * (1.0 + float(shard_stats[i].get("miss_ratio", 0.0) or 0.0))
            + float(shard_stats[i].get("disk_queue_s", 0.0) or 0.0)
            for i in range(len(window))
        ]
        hot = max(range(len(loads)), key=loads.__getitem__)
        cold = min(range(len(loads)), key=loads.__getitem__)
        if hot == cold:
            return
        mean = sum(loads) / len(loads)
        if loads[hot] - loads[cold] <= self.skew_threshold * max(mean, 1.0):
            return
        tenant = self._pick_tenant(
            hot, cold, tenant_window, window[hot] - window[cold]
        )
        if tenant is None:
            return
        self._placement[tenant] = cold
        self.migrations.append(
            Migration(
                tenant=tenant,
                source=hot,
                target=cold,
                at_wall=asyncio.get_running_loop().time() - self._t0,
            )
        )

    def _pick_tenant(
        self,
        hot: int,
        cold: int,
        tenant_window: Dict[str, int],
        arrival_gap: int,
    ) -> Optional[str]:
        """The hot shard's tenant whose migration best halves the
        window-arrival gap; ``None`` when no move strictly improves.

        A zero-traffic tenant is still a valid move when the cold
        shard hosts nothing at all (the packed cold-start case) --
        spreading placement is the improvement there.
        """
        candidates = sorted(
            tenant
            for tenant, shard in self._placement.items()
            if shard == hot
        )
        if not candidates:
            return None
        cold_hosts_any = any(
            shard == cold for shard in self._placement.values()
        )
        best: Optional[str] = None
        best_score: Optional[float] = None
        for tenant in candidates:
            load = tenant_window.get(tenant, 0)
            improves = 0 < load < arrival_gap
            spreads = not cold_hosts_any and len(candidates) >= 2
            if not improves and not spreads:
                continue
            score = abs(arrival_gap - 2 * load)
            if best_score is None or score < best_score:
                best, best_score = tenant, score
        return best
