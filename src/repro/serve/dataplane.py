"""The live data plane: real pages, real grants, shared and contended.

Five pieces back the live serving layer's execution substrate:

* :class:`PageStore` -- a sparse in-memory "disk": page-granular byte
  storage with deterministic content for never-written (base relation)
  pages.  Operator disk accesses move real bytes through it, so the
  worker pool does genuine memory traffic rather than sleeping through
  a model.
* :class:`TrackedAllocator` -- the grant enforcement ledger.  Every
  allocation decision the broker makes is installed here first; the
  allocator re-checks the conservation law (sum of holdings never
  exceeds the pool) independently of the policy and raises
  :class:`GrantOversubscribedError` on any violation, so a broken
  policy can never silently oversubscribe a live server.
* :class:`LiveBufferPool` -- the *shared* buffer pool: the allocator's
  reservation ledger plus a cross-query LRU region over the unreserved
  remainder, mirroring the simulator's
  :class:`~repro.rtdbs.buffer_manager.BufferManager` semantics.  Every
  concurrent query and tenant consults the same pool, so one tenant's
  operand scan can serve another's re-read -- and one tenant's memory
  reservations shrink everyone's cache.
* :class:`LiveDisk` -- the contended disk model: a FIFO service queue
  per disk (plus the shared head state the sequential-positioning
  rules read), so concurrent queries' accesses genuinely queue and
  interleaving scans break each other's sequential streams.
* :class:`LiveDataPlane` -- the bundle the gateway hands to operators:
  the paper's :class:`~repro.rtdbs.database.Database` layout (same
  placement rules, same seeded streams as the simulator), one
  :class:`PageStore` + :class:`LiveDisk` per disk, and the
  :class:`~repro.queries.base.OperatorContext` wired to the database's
  temp-extent allocators.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List

from repro.queries.base import OperatorContext
from repro.rtdbs.buffer_manager import LRUDataCache
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.database import Database
from repro.sim.rng import Streams


class GrantOversubscribedError(RuntimeError):
    """An allocation vector violated the memory conservation law."""


class TrackedAllocator:
    """Independent ledger of live memory grants, pages per query.

    The broker's policy *decides* grants; this class *enforces* them:
    :meth:`apply` installs a full allocation vector and fails loudly if
    it oversubscribes the pool or contains a negative grant.  The
    ledger is deliberately redundant with the broker's own bookkeeping
    -- it is the live system's equivalent of the simulator's
    :class:`~repro.rtdbs.buffer_manager.BufferManager` oversubscription
    guard plus the invariant checker's buffer laws.
    """

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        self.total_pages = total_pages
        self._holdings: Dict[int, int] = {}
        #: Decisions installed so far (the admission-decision counter).
        self.applied = 0

    @property
    def reserved_pages(self) -> int:
        return sum(self._holdings.values())

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages

    def holding(self, qid: int) -> int:
        return self._holdings.get(qid, 0)

    def apply(self, allocation: Dict[int, int]) -> None:
        """Install a full allocation vector (absent queries hold 0)."""
        total = 0
        for qid, pages in allocation.items():
            if pages < 0:
                raise GrantOversubscribedError(
                    f"query {qid} granted {pages} < 0 pages"
                )
            total += pages
        if total > self.total_pages:
            raise GrantOversubscribedError(
                f"allocation of {total} pages exceeds the "
                f"{self.total_pages}-page pool"
            )
        self._holdings = {q: p for q, p in allocation.items() if p > 0}
        self.applied += 1

    def release(self, qid: int) -> None:
        self._holdings.pop(qid, None)


class LiveBufferPool:
    """The shared buffer pool: reservations + cross-query LRU reuse.

    Live equivalent of the simulator's
    :class:`~repro.rtdbs.buffer_manager.BufferManager`: the policy's
    grants are installed through the :class:`TrackedAllocator` (which
    enforces the conservation law), and whatever the grants leave
    unreserved backs an LRU data cache shared by *every* concurrent
    query.  Cacheable operand reads consult the cache before paying
    for a disk access and are retained in it afterwards, so live miss
    ratios respond to pool size and load exactly the way the DES's
    buffer manager makes them.

    The attribute surface (``total_pages`` / ``_reserved`` / ``cache``)
    deliberately matches ``BufferManager`` so
    :meth:`repro.rtdbs.invariants.InvariantChecker.check_buffers`
    asserts the identical ledger laws on the live pool.
    """

    def __init__(self, allocator: TrackedAllocator):
        self.allocator = allocator
        self.total_pages = allocator.total_pages
        self.cache = LRUDataCache(allocator.total_pages)
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps ledger updates hook-free.
        self.invariants = None

    # -- ledger views (the InvariantChecker reads these) ----------------
    @property
    def _reserved(self) -> Dict[int, int]:
        return self.allocator._holdings

    @property
    def reserved_pages(self) -> int:
        return self.allocator.reserved_pages

    @property
    def free_pages(self) -> int:
        return self.allocator.free_pages

    def reservation_of(self, qid: int) -> int:
        return self.allocator.holding(qid)

    # -- grant installation ---------------------------------------------
    def apply(self, allocation: Dict[int, int]) -> None:
        """Install a decision: enforce it, then resize the LRU region."""
        self.allocator.apply(allocation)
        self.cache.capacity = self.allocator.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    def release(self, qid: int) -> None:
        """Drop one query's reservation (departure or abort)."""
        self.allocator.release(qid)
        self.cache.capacity = self.allocator.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    # -- the cross-query cache ------------------------------------------
    def read_hit(self, disk: int, start_page: int, npages: int) -> bool:
        """Whether a cacheable read is fully served from the pool."""
        return self.cache.contains_all(disk, start_page, npages)

    def install(self, disk: int, start_page: int, npages: int) -> None:
        """Retain pages that just arrived from a live disk."""
        self.cache.insert(disk, start_page, npages)

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    @property
    def hit_ratio(self) -> float:
        consulted = self.cache.hits + self.cache.misses
        return self.cache.hits / consulted if consulted else 0.0


class LiveDisk:
    """One live disk: a FIFO service queue over shared stream state.

    Concurrent queries' service chunks queue here first-in-first-out
    (the arm is non-shareable), so a loaded disk stretches every
    access by its queueing delay -- the live analogue of the DES disk
    queues, with conservation counters to prove no chunk is ever lost:
    ``chunks_submitted == chunks_served + chunks_cancelled + waiting +
    in-service``.  :meth:`service_time` prices accesses with the same
    physical rules as the DES :class:`~repro.rtdbs.disk.Disk`: it
    tracks the tails of recently active sequential streams (bounded by
    the modelled 256-KByte prefetch cache, exactly as the simulator
    bounds its ``_streams``), so a handful of interleaved scans each
    stay efficient -- and beyond that bound, concurrent queries evict
    each other's tails and sequentiality is genuinely lost, the
    physical face of thrashing.
    """

    def __init__(self, store: PageStore, resources):
        self.store = store
        self._transfer = resources.transfer_s_per_page
        rotation_half = resources.rotation_s / 2.0
        self._positioning = rotation_half + resources.seek_time(
            max(1, resources.num_cylinders // 8)
        )
        self._page_hop = rotation_half + self._transfer + resources.seek_time(1)
        #: Tails of recently active sequential streams (shared across
        #: every query touching this disk; insertion-ordered dict,
        #: oldest tail evicted first -- mirror of ``Disk._streams``).
        self._streams: dict = {}
        self._max_streams = max(1, resources.disk_cache_pages // resources.block_size)
        self.sequential_continuations = 0
        self._busy = False
        self._waiters: Deque[asyncio.Future] = deque()
        # -- conservation counters -------------------------------------
        self.chunks_submitted = 0
        self.chunks_served = 0
        self.chunks_cancelled = 0
        # -- contention telemetry --------------------------------------
        #: Wall seconds chunks spent waiting for the arm.
        self.queue_seconds = 0.0
        #: Wall seconds the arm spent in service.
        self.busy_seconds = 0.0
        #: Individual disk accesses served (a chunk batches several).
        self.accesses = 0

    def service_time(self, start_page: int, npages: int, sequential: bool) -> float:
        """Price one access (simulated seconds) and update stream tails."""
        if sequential:
            service = npages * self._transfer
            if start_page in self._streams:
                self.sequential_continuations += 1
            else:
                service = service + self._positioning
        else:
            service = npages * self._page_hop
        streams = self._streams
        streams.pop(start_page, None)
        streams[start_page + npages] = None
        while len(streams) > self._max_streams:
            del streams[next(iter(streams))]
        return service

    @property
    def in_service(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Live waiters (excluding any chunk in service)."""
        return sum(1 for future in self._waiters if not future.done())

    async def acquire(self) -> float:
        """Join the FIFO queue; returns the wall seconds spent waiting."""
        self.chunks_submitted += 1
        if not self._busy:
            self._busy = True
            return 0.0
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._waiters.append(future)
        started = loop.time()
        try:
            await future  # the releasing holder hands the arm over
        except asyncio.CancelledError:
            self.chunks_cancelled += 1
            if future.done() and not future.cancelled():
                # The arm was handed over in the same loop pass the
                # expiry cancelled us: pass it on or it leaks.
                self.release()
            raise
        waited = loop.time() - started
        self.queue_seconds += waited
        return waited

    def release(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():  # skip waiters cancelled by expiry
                future.set_result(None)
                return
        self._busy = False


class PageStore:
    """Sparse page-granular byte storage for one live 'disk'.

    Pages never written return deterministic seeded content (the page's
    address hashed into a repeating pattern), standing in for base
    relation data laid out at database build time; written pages
    (operator spool output) are retained verbatim.  ``payload_bytes``
    decouples the live page payload from the model's 8 KB ``PageSize``
    so a laptop-scale server does real byte movement without gigabytes
    of resident relations.
    """

    def __init__(self, disk: int, payload_bytes: int = 256):
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {payload_bytes}")
        self.disk = disk
        self.payload_bytes = payload_bytes
        self._pages: Dict[int, bytes] = {}
        self.pages_read = 0
        self.pages_written = 0

    def _template(self, page: int) -> bytes:
        # Cheap deterministic content: the page address smeared over
        # the payload (distinct pages -> distinct bytes, reproducible).
        seed = (self.disk * 1_000_003 + page * 2_654_435_761) & 0xFFFFFFFF
        word = seed.to_bytes(4, "little")
        repeats = -(-self.payload_bytes // 4)
        return (word * repeats)[: self.payload_bytes]

    def read(self, start_page: int, npages: int) -> bytes:
        """Materialise ``npages`` of real bytes (a genuine copy)."""
        pages = self._pages
        chunks: List[bytes] = []
        for page in range(start_page, start_page + npages):
            data = pages.get(page)
            chunks.append(data if data is not None else self._template(page))
        self.pages_read += npages
        return b"".join(chunks)

    def write(self, start_page: int, payload: bytes) -> int:
        """Store ``payload`` page by page; returns pages written."""
        step = self.payload_bytes
        npages = max(1, -(-len(payload) // step))
        for index in range(npages):
            chunk = payload[index * step : (index + 1) * step]
            if len(chunk) < step:
                chunk = chunk + b"\x00" * (step - len(chunk))
            self._pages[start_page + index] = chunk
        self.pages_written += npages
        return npages

    def write_blank(self, start_page: int, npages: int) -> None:
        """Spool ``npages`` of operator output (content irrelevant)."""
        blank = b"\x00" * self.payload_bytes
        for page in range(start_page, start_page + npages):
            self._pages[page] = blank
        self.pages_written += npages

    def __len__(self) -> int:
        return len(self._pages)


class LiveDataPlane:
    """Everything a live operator touches: layout, pages, temp space.

    Builds the same :class:`Database` the simulator would (identical
    placement streams from the config seed), so live queries scan the
    very relations the DES predicts for, then backs each disk with a
    :class:`PageStore` for real byte movement.
    """

    def __init__(self, config: SimulationConfig, payload_bytes: int = 256):
        self.config = config
        self.streams = Streams(config.seed)
        self.database = Database(config.database, config.resources, self.streams)
        self.stores = [
            PageStore(disk, payload_bytes)
            for disk in range(config.resources.num_disks)
        ]
        #: The contended service queues, one per store.
        self.disks = [LiveDisk(store, config.resources) for store in self.stores]
        self.context = OperatorContext(
            tuples_per_page=config.tuples_per_page,
            block_size=config.resources.block_size,
            costs=config.cpu_costs,
            allocate_temp=lambda disk, pages: self.database.temp_space(disk).allocate(pages),
            release_temp=lambda temp: self.database.temp_space(temp.disk).release(temp),
        )

