"""The live data plane: real pages, real grants, shared and contended.

Five pieces back the live serving layer's execution substrate:

* :class:`PageStore` -- a sparse in-memory "disk": page-granular byte
  storage with deterministic content for never-written (base relation)
  pages.  Operator disk accesses move real bytes through it, so the
  worker pool does genuine memory traffic rather than sleeping through
  a model.
* :class:`TrackedAllocator` -- the grant enforcement ledger.  Every
  allocation decision the broker makes is installed here first; the
  allocator re-checks the conservation law (sum of holdings never
  exceeds the pool) independently of the policy and raises
  :class:`GrantOversubscribedError` on any violation, so a broken
  policy can never silently oversubscribe a live server.
* :class:`LiveBufferPool` -- the *shared* buffer pool: the allocator's
  reservation ledger plus a cross-query LRU region over the unreserved
  remainder, mirroring the simulator's
  :class:`~repro.rtdbs.buffer_manager.BufferManager` semantics.  Every
  concurrent query and tenant consults the same pool, so one tenant's
  operand scan can serve another's re-read -- and one tenant's memory
  reservations shrink everyone's cache.
* :class:`LiveDisk` -- the contended disk model: an Earliest-Deadline
  service queue per disk with the elevator tie-break, wrapped around
  the same :class:`~repro.core.devices.DeviceCore` the simulator's
  :class:`~repro.rtdbs.disk.Disk` uses -- head position, sweep
  direction, sequential-stream tails, the per-disk prefetch cache, and
  the ``Seek + RotateDelay + Transfer`` pricing are one implementation
  shared by both hosts, so concurrent queries' accesses genuinely
  queue, urgent chunks overtake patient ones, and interleaving scans
  break each other's sequential streams exactly as the DES predicts.
* :class:`LiveDataPlane` -- the bundle the gateway hands to operators:
  the paper's :class:`~repro.rtdbs.database.Database` layout (same
  placement rules, same seeded streams as the simulator), one
  :class:`PageStore` + :class:`LiveDisk` per disk, and the
  :class:`~repro.queries.base.OperatorContext` wired to the database's
  temp-extent allocators.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Dict, List, Tuple

from repro.core.devices import DeviceCore, LRUDataCache
from repro.queries.base import OperatorContext
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.database import Database
from repro.sim.rng import Streams


class GrantOversubscribedError(RuntimeError):
    """An allocation vector violated the memory conservation law."""


class GrantLeakError(RuntimeError):
    """The gateway closed with grants still held in the ledger."""


class TrackedAllocator:
    """Independent ledger of live memory grants, pages per query.

    The broker's policy *decides* grants; this class *enforces* them:
    :meth:`apply` installs a full allocation vector and fails loudly if
    it oversubscribes the pool or contains a negative grant.  The
    ledger is deliberately redundant with the broker's own bookkeeping
    -- it is the live system's equivalent of the simulator's
    :class:`~repro.rtdbs.buffer_manager.BufferManager` oversubscription
    guard plus the invariant checker's buffer laws.
    """

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        self.total_pages = total_pages
        self._holdings: Dict[int, int] = {}
        #: Decisions installed so far (the admission-decision counter).
        self.applied = 0

    @property
    def reserved_pages(self) -> int:
        return sum(self._holdings.values())

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages

    def holding(self, qid: int) -> int:
        return self._holdings.get(qid, 0)

    def apply(self, allocation: Dict[int, int]) -> None:
        """Install a full allocation vector (absent queries hold 0)."""
        total = 0
        for qid, pages in allocation.items():
            if pages < 0:
                raise GrantOversubscribedError(
                    f"query {qid} granted {pages} < 0 pages"
                )
            total += pages
        if total > self.total_pages:
            raise GrantOversubscribedError(
                f"allocation of {total} pages exceeds the "
                f"{self.total_pages}-page pool"
            )
        self._holdings = {q: p for q, p in allocation.items() if p > 0}
        self.applied += 1

    def release(self, qid: int) -> None:
        self._holdings.pop(qid, None)

    def resize(self, total_pages: int) -> None:
        """Change the pool bound (an external memory consumer came or
        went).  Shrinking below the pages currently reserved would turn
        the ledger inconsistent, so the caller must reallocate first."""
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        if total_pages < self.reserved_pages:
            raise GrantOversubscribedError(
                f"cannot shrink the pool to {total_pages} pages while "
                f"{self.reserved_pages} are still reserved"
            )
        self.total_pages = total_pages


class LiveBufferPool:
    """The shared buffer pool: reservations + cross-query LRU reuse.

    Live equivalent of the simulator's
    :class:`~repro.rtdbs.buffer_manager.BufferManager`: the policy's
    grants are installed through the :class:`TrackedAllocator` (which
    enforces the conservation law), and whatever the grants leave
    unreserved backs an LRU data cache shared by *every* concurrent
    query.  Cacheable operand reads consult the cache before paying
    for a disk access and are retained in it afterwards, so live miss
    ratios respond to pool size and load exactly the way the DES's
    buffer manager makes them.

    The attribute surface (``total_pages`` / ``_reserved`` / ``cache``)
    deliberately matches ``BufferManager`` so
    :meth:`repro.rtdbs.invariants.InvariantChecker.check_buffers`
    asserts the identical ledger laws on the live pool.
    """

    def __init__(self, allocator: TrackedAllocator):
        self.allocator = allocator
        self.total_pages = allocator.total_pages
        self.cache = LRUDataCache(allocator.total_pages)
        #: Optional :class:`repro.rtdbs.invariants.InvariantChecker`;
        #: ``None`` (the default) keeps ledger updates hook-free.
        self.invariants = None

    # -- ledger views (the InvariantChecker reads these) ----------------
    @property
    def _reserved(self) -> Dict[int, int]:
        return self.allocator._holdings

    @property
    def reserved_pages(self) -> int:
        return self.allocator.reserved_pages

    @property
    def free_pages(self) -> int:
        return self.allocator.free_pages

    def reservation_of(self, qid: int) -> int:
        return self.allocator.holding(qid)

    # -- grant installation ---------------------------------------------
    def apply(self, allocation: Dict[int, int]) -> None:
        """Install a decision: enforce it, then resize the LRU region."""
        self.allocator.apply(allocation)
        self.cache.capacity = self.allocator.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    def release(self, qid: int) -> None:
        """Drop one query's reservation (departure or abort)."""
        self.allocator.release(qid)
        self.cache.capacity = self.allocator.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    def resize(self, total_pages: int) -> None:
        """Re-bound the pool (memory-pressure window opened or closed).

        Resizes the allocator (which refuses to shrink below current
        reservations) and re-derives the LRU region from the new free
        space; the ledger laws are re-checked immediately.
        """
        self.allocator.resize(total_pages)
        self.total_pages = total_pages
        self.cache.capacity = self.allocator.free_pages
        if self.invariants is not None:
            self.invariants.check_buffers(self)

    # -- the cross-query cache ------------------------------------------
    def read_hit(self, disk: int, start_page: int, npages: int) -> bool:
        """Whether a cacheable read is fully served from the pool."""
        return self.cache.contains_all(disk, start_page, npages)

    def install(self, disk: int, start_page: int, npages: int) -> None:
        """Retain pages that just arrived from a live disk."""
        self.cache.insert(disk, start_page, npages)

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    @property
    def hit_ratio(self) -> float:
        consulted = self.cache.hits + self.cache.misses
        return self.cache.hits / consulted if consulted else 0.0


class _DiskWaiter:
    """One chunk waiting for a disk arm: the ED-heap entry payload.

    Exposes the two attributes :meth:`DeviceCore.select` reads --
    ``cancelled`` (expired waiters are skipped and dropped) and
    ``cylinder`` (the elevator tie-break key).
    """

    __slots__ = ("future", "cylinder")

    def __init__(self, future: asyncio.Future, cylinder: int):
        self.future = future
        self.cylinder = cylinder

    @property
    def cancelled(self) -> bool:
        return self.future.cancelled()


class LiveDisk:
    """One live disk: an ED+elevator service queue over the shared core.

    Concurrent queries' service chunks queue here in Earliest-Deadline
    order with the elevator tie-break -- the arm is non-shareable, and
    :meth:`DeviceCore.select` picks the next holder exactly the way the
    DES :class:`~repro.rtdbs.disk.Disk` picks its next request.  A
    loaded disk stretches every access by its queueing delay, urgent
    chunks overtake patient backlogs, and conservation counters prove
    no chunk is ever lost: ``chunks_submitted == chunks_served +
    chunks_cancelled + waiting + in-service``.

    Pricing and physical state (head, sweep direction, stream tails,
    the per-disk prefetch cache) live in the shared
    :class:`~repro.core.devices.DeviceCore`; with no seeded rotation
    stream the live host prices the deterministic half-rotation.
    Reads fully covered by the prefetch cache (:meth:`read_hit`) cost
    no arm time at all, the same short-circuit the DES applies in
    ``Disk.submit_op``.
    """

    def __init__(self, store: PageStore, resources):
        self.store = store
        self.core = DeviceCore(resources)
        self.cache = self.core.cache
        #: Outage-window flag (fault injection).  While set, new chunk
        #: submissions take the gateway's retry/breaker/reroute path
        #: instead of queueing; the no-fault path never sets it.
        self.faulted = False
        self._busy = False
        self._queue: List[Tuple[float, int, _DiskWaiter]] = []
        self._seq = 0
        # -- conservation counters -------------------------------------
        self.chunks_submitted = 0
        self.chunks_served = 0
        self.chunks_cancelled = 0
        # -- contention telemetry --------------------------------------
        #: Wall seconds chunks spent waiting for the arm.
        self.queue_seconds = 0.0
        #: Wall seconds the arm spent in service.
        self.busy_seconds = 0.0
        #: Individual disk accesses served (a chunk batches several).
        self.accesses = 0

    @property
    def sequential_continuations(self) -> int:
        return self.core.sequential_continuations

    def cylinder_of(self, page: int) -> int:
        return self.core.cylinder_of(page)

    def read_hit(self, start_page: int, npages: int) -> bool:
        """Whether a read is fully served by the per-disk prefetch cache."""
        return self.core.read_hit(start_page, npages)

    def service_time(self, start_page: int, npages: int) -> float:
        """Price one access (simulated seconds) with the DES rules.

        Advances the shared physical state exactly as the simulator's
        disk does on completion: head movement, sweep direction, the
        stream tail, and the prefetch-cache installation.
        """
        cylinder = self.core.cylinder_of(start_page)
        service = self.core.service_time(start_page, npages, cylinder)
        self.core.note_transfer(start_page, npages)
        return service

    def detour_service_time(self, npages: int) -> float:
        """Price a rerouted (foreign-address) access on this disk.

        Stateless on purpose: a replica serving another disk's address
        range must not pollute its own head position, stream tails or
        prefetch cache with aliased page numbers.  See
        :meth:`DeviceCore.detour_service_time`.
        """
        return self.core.detour_service_time(npages)

    @property
    def in_service(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Live waiters (excluding any chunk in service)."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    async def acquire(self, priority: float = 0.0, cylinder: int = 0) -> float:
        """Join the ED queue; returns the wall seconds spent waiting.

        ``priority`` is the chunk's deadline (smaller = more urgent),
        ``cylinder`` its first access's cylinder for the elevator
        tie-break among equal deadlines.
        """
        self.chunks_submitted += 1
        if not self._busy:
            self._busy = True
            return 0.0
        loop = asyncio.get_running_loop()
        waiter = _DiskWaiter(loop.create_future(), cylinder)
        self._seq += 1
        heapq.heappush(self._queue, (priority, self._seq, waiter))
        started = loop.time()
        try:
            await waiter.future  # the releasing holder hands the arm over
        except asyncio.CancelledError:
            self.chunks_cancelled += 1
            if waiter.future.done() and not waiter.future.cancelled():
                # The arm was handed over in the same loop pass the
                # expiry cancelled us: pass it on or it leaks.
                self.release()
            raise
        waited = loop.time() - started
        self.queue_seconds += waited
        return waited

    def release(self) -> None:
        waiter = self.core.select(self._queue)
        if waiter is None:
            self._busy = False
        else:
            waiter.future.set_result(None)


class PageStore:
    """Sparse page-granular byte storage for one live 'disk'.

    Pages never written return deterministic seeded content (the page's
    address hashed into a repeating pattern), standing in for base
    relation data laid out at database build time; written pages
    (operator spool output) are retained verbatim.  ``payload_bytes``
    decouples the live page payload from the model's 8 KB ``PageSize``
    so a laptop-scale server does real byte movement without gigabytes
    of resident relations.
    """

    def __init__(self, disk: int, payload_bytes: int = 256):
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {payload_bytes}")
        self.disk = disk
        self.payload_bytes = payload_bytes
        self._pages: Dict[int, bytes] = {}
        self.pages_read = 0
        self.pages_written = 0
        # Zero-copy replay machinery: one reusable scratch buffer (all
        # replayed reads land here via memcpy -- no per-read joined
        # bytes object) and one shared immutable blank page (every
        # spooled page aliases it -- no per-write allocation).
        self._scratch = bytearray(payload_bytes)
        self._scratch_view = memoryview(self._scratch)
        self._blank = bytes(payload_bytes)

    def _template(self, page: int) -> bytes:
        # Cheap deterministic content: the page address smeared over
        # the payload (distinct pages -> distinct bytes, reproducible).
        seed = (self.disk * 1_000_003 + page * 2_654_435_761) & 0xFFFFFFFF
        word = seed.to_bytes(4, "little")
        repeats = -(-self.payload_bytes // 4)
        return (word * repeats)[: self.payload_bytes]

    def read(self, start_page: int, npages: int) -> bytes:
        """Materialise ``npages`` of real bytes (a genuine copy)."""
        pages = self._pages
        chunks: List[bytes] = []
        for page in range(start_page, start_page + npages):
            data = pages.get(page)
            chunks.append(data if data is not None else self._template(page))
        self.pages_read += npages
        return b"".join(chunks)

    def replay_read(self, start_page: int, npages: int) -> int:
        """Move ``npages`` of real bytes without materialising a copy.

        The disk-service replay only needs the byte *traffic* (the
        joined result of :meth:`read` was always discarded); each page
        is memcpy'd into the reusable scratch buffer through a
        memoryview, so the hot path allocates nothing.  Returns the
        bytes moved.
        """
        pages = self._pages
        view = self._scratch_view
        blank = self._blank
        for page in range(start_page, start_page + npages):
            data = pages.get(page)
            view[:] = data if data is not None else blank
        self.pages_read += npages
        return npages * self.payload_bytes

    def write(self, start_page: int, payload: bytes) -> int:
        """Store ``payload`` page by page; returns pages written."""
        step = self.payload_bytes
        npages = max(1, -(-len(payload) // step))
        for index in range(npages):
            chunk = payload[index * step : (index + 1) * step]
            if len(chunk) < step:
                chunk = chunk + b"\x00" * (step - len(chunk))
            self._pages[start_page + index] = chunk
        self.pages_written += npages
        return npages

    def write_blank(self, start_page: int, npages: int) -> None:
        """Spool ``npages`` of operator output (content irrelevant)."""
        blank = self._blank  # shared immutable page: no allocation
        pages = self._pages
        for page in range(start_page, start_page + npages):
            pages[page] = blank
        self.pages_written += npages

    def __len__(self) -> int:
        return len(self._pages)


class LiveDataPlane:
    """Everything a live operator touches: layout, pages, temp space.

    Builds the same :class:`Database` the simulator would (identical
    placement streams from the config seed), so live queries scan the
    very relations the DES predicts for, then backs each disk with a
    :class:`PageStore` for real byte movement.
    """

    def __init__(self, config: SimulationConfig, payload_bytes: int = 256):
        self.config = config
        self.streams = Streams(config.seed)
        self.database = Database(config.database, config.resources, self.streams)
        self.stores = [
            PageStore(disk, payload_bytes)
            for disk in range(config.resources.num_disks)
        ]
        #: The contended service queues, one per store.
        self.disks = [LiveDisk(store, config.resources) for store in self.stores]
        self.context = OperatorContext(
            tuples_per_page=config.tuples_per_page,
            block_size=config.resources.block_size,
            costs=config.cpu_costs,
            allocate_temp=lambda disk, pages: self.database.temp_space(disk).allocate(pages),
            release_temp=lambda temp: self.database.temp_space(temp.disk).release(temp),
        )

