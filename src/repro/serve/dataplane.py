"""The live data plane: real pages, real grants, no simulator.

Three pieces back the live serving layer's execution substrate:

* :class:`PageStore` -- a sparse in-memory "disk": page-granular byte
  storage with deterministic content for never-written (base relation)
  pages.  Operator disk accesses move real bytes through it, so the
  worker pool does genuine memory traffic rather than sleeping through
  a model.
* :class:`TrackedAllocator` -- the grant enforcement ledger.  Every
  allocation decision the broker makes is installed here first; the
  allocator re-checks the conservation law (sum of holdings never
  exceeds the pool) independently of the policy and raises
  :class:`GrantOversubscribedError` on any violation, so a broken
  policy can never silently oversubscribe a live server.
* :class:`LiveDataPlane` -- the bundle the gateway hands to operators:
  the paper's :class:`~repro.rtdbs.database.Database` layout (same
  placement rules, same seeded streams as the simulator), one
  :class:`PageStore` per disk, and the
  :class:`~repro.queries.base.OperatorContext` wired to the database's
  temp-extent allocators.
"""

from __future__ import annotations

from typing import Dict, List

from repro.queries.base import OperatorContext
from repro.rtdbs.config import SimulationConfig
from repro.rtdbs.database import Database
from repro.sim.rng import Streams


class GrantOversubscribedError(RuntimeError):
    """An allocation vector violated the memory conservation law."""


class TrackedAllocator:
    """Independent ledger of live memory grants, pages per query.

    The broker's policy *decides* grants; this class *enforces* them:
    :meth:`apply` installs a full allocation vector and fails loudly if
    it oversubscribes the pool or contains a negative grant.  The
    ledger is deliberately redundant with the broker's own bookkeeping
    -- it is the live system's equivalent of the simulator's
    :class:`~repro.rtdbs.buffer_manager.BufferManager` oversubscription
    guard plus the invariant checker's buffer laws.
    """

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"buffer pool must be positive, got {total_pages}")
        self.total_pages = total_pages
        self._holdings: Dict[int, int] = {}
        #: Decisions installed so far (the admission-decision counter).
        self.applied = 0

    @property
    def reserved_pages(self) -> int:
        return sum(self._holdings.values())

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages

    def holding(self, qid: int) -> int:
        return self._holdings.get(qid, 0)

    def apply(self, allocation: Dict[int, int]) -> None:
        """Install a full allocation vector (absent queries hold 0)."""
        total = 0
        for qid, pages in allocation.items():
            if pages < 0:
                raise GrantOversubscribedError(
                    f"query {qid} granted {pages} < 0 pages"
                )
            total += pages
        if total > self.total_pages:
            raise GrantOversubscribedError(
                f"allocation of {total} pages exceeds the "
                f"{self.total_pages}-page pool"
            )
        self._holdings = {q: p for q, p in allocation.items() if p > 0}
        self.applied += 1

    def release(self, qid: int) -> None:
        self._holdings.pop(qid, None)


class PageStore:
    """Sparse page-granular byte storage for one live 'disk'.

    Pages never written return deterministic seeded content (the page's
    address hashed into a repeating pattern), standing in for base
    relation data laid out at database build time; written pages
    (operator spool output) are retained verbatim.  ``payload_bytes``
    decouples the live page payload from the model's 8 KB ``PageSize``
    so a laptop-scale server does real byte movement without gigabytes
    of resident relations.
    """

    def __init__(self, disk: int, payload_bytes: int = 256):
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {payload_bytes}")
        self.disk = disk
        self.payload_bytes = payload_bytes
        self._pages: Dict[int, bytes] = {}
        self.pages_read = 0
        self.pages_written = 0

    def _template(self, page: int) -> bytes:
        # Cheap deterministic content: the page address smeared over
        # the payload (distinct pages -> distinct bytes, reproducible).
        seed = (self.disk * 1_000_003 + page * 2_654_435_761) & 0xFFFFFFFF
        word = seed.to_bytes(4, "little")
        repeats = -(-self.payload_bytes // 4)
        return (word * repeats)[: self.payload_bytes]

    def read(self, start_page: int, npages: int) -> bytes:
        """Materialise ``npages`` of real bytes (a genuine copy)."""
        pages = self._pages
        chunks: List[bytes] = []
        for page in range(start_page, start_page + npages):
            data = pages.get(page)
            chunks.append(data if data is not None else self._template(page))
        self.pages_read += npages
        return b"".join(chunks)

    def write(self, start_page: int, payload: bytes) -> int:
        """Store ``payload`` page by page; returns pages written."""
        step = self.payload_bytes
        npages = max(1, -(-len(payload) // step))
        for index in range(npages):
            chunk = payload[index * step : (index + 1) * step]
            if len(chunk) < step:
                chunk = chunk + b"\x00" * (step - len(chunk))
            self._pages[start_page + index] = chunk
        self.pages_written += npages
        return npages

    def write_blank(self, start_page: int, npages: int) -> None:
        """Spool ``npages`` of operator output (content irrelevant)."""
        blank = b"\x00" * self.payload_bytes
        for page in range(start_page, start_page + npages):
            self._pages[page] = blank
        self.pages_written += npages

    def __len__(self) -> int:
        return len(self._pages)


class LiveDataPlane:
    """Everything a live operator touches: layout, pages, temp space.

    Builds the same :class:`Database` the simulator would (identical
    placement streams from the config seed), so live queries scan the
    very relations the DES predicts for, then backs each disk with a
    :class:`PageStore` for real byte movement.
    """

    def __init__(self, config: SimulationConfig, payload_bytes: int = 256):
        self.config = config
        self.streams = Streams(config.seed)
        self.database = Database(config.database, config.resources, self.streams)
        self.stores = [
            PageStore(disk, payload_bytes)
            for disk in range(config.resources.num_disks)
        ]
        self.context = OperatorContext(
            tuples_per_page=config.tuples_per_page,
            block_size=config.resources.block_size,
            costs=config.cpu_costs,
            allocate_temp=lambda disk, pages: self.database.temp_space(disk).allocate(pages),
            release_temp=lambda temp: self.database.temp_space(temp.disk).release(temp),
        )

    def copy_pages(self, kind: str, disk: int, start_page: int, npages: int) -> int:
        """Execute one operator disk access as real byte traffic."""
        store = self.stores[disk]
        if kind == "read":
            return len(store.read(start_page, npages))
        store.write_blank(start_page, npages)
        return npages * store.payload_bytes
