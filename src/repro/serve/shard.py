"""Shard-slicing and shard-process management for the routed serve layer.

A *shard* is one full :class:`~repro.serve.server.LiveServer` stack --
its own :class:`~repro.serve.broker.MemoryBroker`, tracked allocator,
``LiveBufferPool``, ``LiveDisk`` farm and worker gate -- serving a
slice of the scenario's physical resources.  :func:`shard_config`
computes that slice: shard ``i`` of ``N`` gets an even split of the
scenario's disks and buffer-pool pages (remainders go to the low
shards), while the *workload definition* (query classes, rates, slack
ranges) stays global so any shard can serve any tenant.

``of == 1`` is the identity: the config object is returned unchanged,
so an unrouted deployment is byte-identical to what PR 4-7 shipped.

:class:`ShardProcess` launches a shard as a real subprocess through
the existing ``python -m repro.serve serve`` entrypoint (with
``--shard-id/--of``), parses the listening banner for the ephemeral
port, and drains it with SIGINT -- the same lifecycle a human operator
or an init system would drive.
"""

from __future__ import annotations

import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.rtdbs.config import SimulationConfig

#: ``repro.serve: ... listening on 127.0.0.1:43211`` -- printed by
#: ``serve`` (and ``route``) once the listener is bound.
BANNER_PATTERN = re.compile(r"listening on ([\d.]+):(\d+)")


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integer shares, remainder to the
    low indices: ``split_evenly(10, 3) == [4, 3, 3]``."""
    if parts < 1:
        raise ValueError(f"parts must be positive, got {parts}")
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def shard_config(
    config: SimulationConfig, shard_id: int, of: int
) -> SimulationConfig:
    """The resource slice shard ``shard_id`` of ``of`` serves.

    Disks and buffer-pool pages are split evenly (remainder to the low
    shards); everything else -- workload classes, cost constants, seed
    -- is untouched, so every shard prices deadlines and maps tenants
    identically.  ``of == 1`` returns ``config`` itself (the unrouted
    identity path).
    """
    if of < 1:
        raise ValueError(f"shard count must be positive, got {of}")
    if not 0 <= shard_id < of:
        raise ValueError(f"shard id {shard_id} outside [0, {of})")
    if of == 1:
        return config
    num_disks = config.resources.num_disks
    if of > num_disks:
        raise ValueError(
            f"cannot split {num_disks} disks across {of} shards -- "
            "every shard needs at least one disk"
        )
    disks = split_evenly(num_disks, of)
    pages = split_evenly(config.resources.memory_pages, of)
    if pages[shard_id] < 1:
        raise ValueError(
            f"cannot split {config.resources.memory_pages} pool pages "
            f"across {of} shards"
        )
    resources = replace(
        config.resources,
        num_disks=disks[shard_id],
        memory_pages=pages[shard_id],
    )
    return config.with_overrides(resources=resources)


def _src_root() -> str:
    """The directory holding the ``repro`` package (for PYTHONPATH)."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


@dataclass
class ShardProcess:
    """One shard subprocess: launch, banner parse, drain, reap."""

    shard_id: int
    of: int
    process: subprocess.Popen
    host: str = ""
    port: int = 0
    #: Every stdout/stderr line the shard printed (diagnostics).
    lines: List[str] = field(default_factory=list)
    _queue: "queue.Queue" = field(default_factory=queue.Queue)

    # -- launch --------------------------------------------------------
    @classmethod
    def launch(
        cls,
        shard_id: int,
        of: int,
        policy: str = "pmm",
        tenants: Optional[int] = None,
        family: str = "mix",
        index: int = 0,
        scenario_seed: int = 0,
        time_scale: float = 0.05,
        shed: bool = False,
        extra_args: Sequence[str] = (),
        banner_timeout: float = 30.0,
    ) -> "ShardProcess":
        """Spawn ``python -m repro.serve serve --shard-id I --of N`` on
        an ephemeral port and wait for its listening banner."""
        argv = [
            sys.executable,
            "-m",
            "repro.serve",
            "serve",
            "--port",
            "0",
            "--policy",
            policy,
            "--shard-id",
            str(shard_id),
            "--of",
            str(of),
            "--family",
            family,
            "--index",
            str(index),
            "--scenario-seed",
            str(scenario_seed),
            "--time-scale",
            str(time_scale),
        ]
        if tenants is not None:
            argv += ["--tenants", str(tenants)]
        if shed:
            argv.append("--shed")
        argv += list(extra_args)
        env = dict(os.environ)
        src = _src_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        shard = cls(shard_id=shard_id, of=of, process=process)
        shard._start_pump()
        shard._await_banner(banner_timeout)
        return shard

    def _start_pump(self) -> None:
        def pump() -> None:
            assert self.process.stdout is not None
            for line in self.process.stdout:
                self._queue.put(line.rstrip("\n"))
            self._queue.put(None)  # EOF sentinel

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()

    def _await_banner(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.process.kill()
                raise RuntimeError(
                    f"shard {self.shard_id}/{self.of}: no listening "
                    f"banner within {timeout}s; output so far:\n"
                    + "\n".join(self.lines)
                )
            try:
                line = self._queue.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise RuntimeError(
                    f"shard {self.shard_id}/{self.of} exited before "
                    "printing its banner; output:\n" + "\n".join(self.lines)
                )
            self.lines.append(line)
            match = BANNER_PATTERN.search(line)
            if match:
                self.host = match.group(1)
                self.port = int(match.group(2))
                return

    # -- teardown ------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> int:
        """SIGINT the shard (graceful drain) and reap it, collecting
        the rest of its output.  Returns the exit code."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
        code = self.process.wait(timeout=timeout)
        self.collect_output()
        return code

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)
        self.collect_output()

    def collect_output(self) -> List[str]:
        """Drain the pump queue into :attr:`lines` (non-blocking)."""
        while True:
            try:
                line = self._queue.get_nowait()
            except queue.Empty:
                break
            if line is None:
                break
            self.lines.append(line)
        return self.lines

    @property
    def drained_cleanly(self) -> bool:
        """True once the shard printed its graceful-drain banner."""
        return any("drained cleanly" in line for line in self.lines)

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port


def launch_shards(
    count: int,
    policy: str = "pmm",
    tenants: Optional[int] = None,
    family: str = "mix",
    index: int = 0,
    scenario_seed: int = 0,
    time_scale: float = 0.05,
    shed: bool = False,
    extra_args: Sequence[str] = (),
) -> List[ShardProcess]:
    """Launch ``count`` shard subprocesses; kill them all if any fails
    to come up (no half-built farm leaks)."""
    shards: List[ShardProcess] = []
    try:
        for shard_id in range(count):
            shards.append(
                ShardProcess.launch(
                    shard_id,
                    count,
                    policy=policy,
                    tenants=tenants,
                    family=family,
                    index=index,
                    scenario_seed=scenario_seed,
                    time_scale=time_scale,
                    shed=shed,
                    extra_args=extra_args,
                )
            )
    except BaseException:
        for shard in shards:
            shard.kill()
        raise
    return shards
