"""A JSON-lines TCP front end over the live gateway.

``python -m repro.serve serve`` runs this: clients connect, submit
queries with deadlines, and receive the outcome when the query departs
(completed or deadline-aborted).  One request per line, one JSON
response per request.

Protocol
--------
Submit a query (the response arrives when the query departs)::

    {"op": "submit", "type": "sort", "pages": 40, "slack": 3.0}
    {"op": "submit", "type": "hash_join", "pages": 30, "outer_pages": 80}

    -> {"qid": 7, "missed": false, "admitted": true,
        "waiting_s": 0.8, "execution_s": 2.1, "deadline_s": 9.3}

Read the server's live metrics::

    {"op": "stats"}
    -> {"arrivals": 12, "served": 9, "missed": 2, "miss_ratio": 0.222,
        "observed_mpl": 2.4, "decisions": 25, ...}

``pages`` is the operand size in model pages (a sort's relation, a
join's inner relation); the server synthesises a relation of that size
on a round-robin disk, prices the deadline with the same stand-alone
cost model the simulator uses (``deadline = now + standalone * slack``),
and admission is entirely up to the configured memory policy.
"""

from __future__ import annotations

import asyncio
import json
from itertools import count
from typing import Optional

from repro.rtdbs.config import EXTERNAL_SORT, HASH_JOIN
from repro.rtdbs.database import Relation
from repro.serve.gateway import LiveGateway
from repro.serve.workload import LiveArrival

#: Synthetic relations get ids far above any laid-out relation's.
_SYNTHETIC_BASE = 1_000_000


class LiveServer:
    """Accept query submissions over TCP and push them to the gateway."""

    def __init__(self, gateway: LiveGateway):
        self.gateway = gateway
        self._qids = count()
        self._rel_ids = count(_SYNTHETIC_BASE)
        self._disk_cursor = 0
        self._waiters: dict = {}
        self._server: Optional[asyncio.AbstractServer] = None
        gateway.departure_listeners.append(self._on_departure)

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start the gateway and the listener; returns (host, port)."""
        await self.gateway.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.gateway.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    def _on_departure(self, record) -> None:
        future = self._waiters.pop(record.qid, None)
        if future is not None and not future.done():
            future.set_result(record)

    def _next_disk(self) -> int:
        disk = self._disk_cursor
        self._disk_cursor = (disk + 1) % self.gateway.config.resources.num_disks
        return disk

    def _synthetic_relation(self, pages: int) -> Relation:
        return Relation(
            rel_id=next(self._rel_ids),
            group=0,
            disk=self._next_disk(),
            pages=pages,
            start_page=0,
        )

    def _build_arrival(self, request: dict) -> LiveArrival:
        query_type = request.get("type", "sort")
        pages = int(request.get("pages", 20))
        if pages <= 0:
            raise ValueError(f"pages must be positive, got {pages}")
        slack = float(request.get("slack", 3.0))
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        gateway = self.gateway
        if query_type in ("hash_join", "join"):
            outer_pages = int(request.get("outer_pages", 2 * pages))
            inner = self._synthetic_relation(pages)
            outer = self._synthetic_relation(outer_pages)
            if inner.pages > outer.pages:
                inner, outer = outer, inner
            standalone = gateway.cost_model.hash_join_standalone(
                inner.pages, outer.pages
            )
            kind = HASH_JOIN
        elif query_type in ("sort", "external_sort"):
            inner = self._synthetic_relation(pages)
            outer = None
            standalone = gateway.cost_model.sort_standalone(pages)
            kind = EXTERNAL_SORT
        else:
            raise ValueError(f"unknown query type {query_type!r}")
        now = gateway.sim_now()
        return LiveArrival(
            qid=next(self._qids),
            class_name=str(request.get("class", query_type)),
            query_type=kind,
            arrival=now,
            deadline=now + standalone * slack,
            standalone=standalone,
            inner=inner,
            outer=outer,
            temp_disk=inner.disk,
        )

    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._dispatch(json.loads(line))
                except (ValueError, KeyError) as error:
                    response = {"error": str(error)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # server shutdown or client vanished: just end quietly
        finally:
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op", "submit")
        if op == "stats":
            report = self.gateway.report
            return {
                "policy": report.policy,
                "arrivals": report.arrivals,
                "served": report.served,
                "missed": report.missed,
                "miss_ratio": round(report.miss_ratio, 4),
                "observed_mpl": round(self.gateway.observed_mpl(), 4),
                "admitted": self.gateway.broker.admitted_count,
                "waiting": self.gateway.broker.waiting_count,
                "decisions": report.decisions,
                "decision_latency_mean_us": round(
                    report.decision_latency_mean_us, 2
                ),
            }
        if op == "submit":
            arrival = self._build_arrival(request)
            future = asyncio.get_running_loop().create_future()
            self._waiters[arrival.qid] = future
            job = self.gateway.submit(arrival)
            record = await future
            return {
                "qid": record.qid,
                "class": record.class_name,
                "missed": record.missed,
                "admitted": job.admitted_wall is not None,
                "waiting_s": round(record.waiting_time, 4),
                "execution_s": round(record.execution_time, 4),
                "deadline_s": round(arrival.deadline, 4),
            }
        raise ValueError(f"unknown op {op!r}")
