"""A multi-tenant JSON-lines TCP front end over the live gateway.

``python -m repro.serve serve`` runs this: any number of clients
connect concurrently, submit queries with deadlines, and receive the
outcome when the query departs (completed or deadline-aborted).  One
request per line, one JSON response per request.  Every connection
shares the *same* gateway -- one memory broker, one tracked allocator,
one cross-query buffer pool, one contended disk farm, one worker gate
-- so tenants genuinely compete for memory and disks the way the
paper's policies arbitrate.

Protocol
--------
Declare the connection's tenant (optional; per-request ``"tenant"``
keys override it)::

    {"op": "hello", "tenant": "acme"}
    -> {"tenant": "acme", "class": "tenant0"}

Tenants map onto the scenario's query classes (the multitenant family
names one class per tenant): a tenant named after a class keeps it,
anyone else is assigned round-robin.  The mapped class is the identity
the memory policy sees (per-class fairness goals etc.); per-tenant
outcomes are tracked separately.

Submit a query (the response arrives when the query departs)::

    {"op": "submit", "type": "sort", "pages": 40, "slack": 3.0}
    {"op": "submit", "type": "hash_join", "pages": 30, "outer_pages": 80,
     "tenant": "acme"}

    -> {"qid": 7, "tenant": "acme", "missed": false, "admitted": true,
        "waiting_s": 0.8, "execution_s": 2.1, "deadline_s": 9.3}

Read the server's live metrics (shared-pool + contention telemetry and
the per-tenant breakdown included)::

    {"op": "stats"}
    -> {"arrivals": 12, "served": 9, "missed": 2, "miss_ratio": 0.222,
        "observed_mpl": 2.4, "decisions": 25, "pool_hit_ratio": 0.13,
        "disk_queue_s": 0.8, "per_tenant": {"acme": {...}}, ...}

Any request may carry a ``"tag"`` (any JSON value); the server echoes
it in the response.  Submit responses arrive at query *departure*
time -- out of order on a pipelining connection -- so the tag is how a
multiplexing client (e.g. :mod:`repro.serve.router`) correlates them.

``pages`` is the operand size in model pages (a sort's relation, a
join's inner relation); the server synthesises a relation of that size
on a round-robin disk, prices the deadline with the same stand-alone
cost model the simulator uses (``deadline = now + standalone * slack``),
and admission is entirely up to the configured memory policy.

Shutdown is a graceful drain: the listener stops accepting, new
submissions are refused, in-flight queries run to departure (firm
deadlines bound the wait) and their clients receive their responses,
then the gateway closes.
"""

from __future__ import annotations

import asyncio
import json
from itertools import count
from typing import Dict, Optional, Tuple

from repro.rtdbs.config import EXTERNAL_SORT, HASH_JOIN
from repro.rtdbs.database import Relation
from repro.serve.gateway import SHED, LiveGateway
from repro.serve.workload import LiveArrival

#: Synthetic relations get ids far above any laid-out relation's.
_SYNTHETIC_BASE = 1_000_000


class LiveServer:
    """Accept query submissions over TCP and push them to the gateway."""

    def __init__(
        self,
        gateway: LiveGateway,
        shard: Optional[Tuple[int, int]] = None,
    ):
        self.gateway = gateway
        #: ``(shard_id, shard_count)`` when this server is one shard of
        #: a routed deployment (``serve --shard-id I --of N``); ``None``
        #: for a standalone server.  Purely identity -- the resource
        #: split happened in :func:`repro.serve.shard.shard_config`.
        self.shard = shard
        self._qids = count()
        self._rel_ids = count(_SYNTHETIC_BASE)
        self._disk_cursor = 0
        self._waiters: dict = {}
        self._server: Optional[asyncio.AbstractServer] = None
        #: tenant name -> query-class name (policy-facing identity).
        self._tenant_classes: Dict[str, str] = {}
        #: The scenario's classes, computed once -- tenant_class is on
        #: the submit path and a routed deployment fans many tenants
        #: through it.
        self._classes = tuple(gateway.config.workload.classes)
        self._class_names = frozenset(qc.name for qc in self._classes)
        self._class_cursor = 0
        self._writers: set = set()
        self._draining = False
        self._closing = False
        self._closed = asyncio.Event()
        #: Requests mid-flight in a handler (read, not yet responded).
        self._pending = 0
        self._idle = asyncio.Event()
        self._idle.set()
        gateway.departure_listeners.append(self._on_departure)

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start the gateway and the listener; returns (host, port)."""
        await self.gateway.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    async def close(self) -> None:
        """Graceful drain: refuse new work, let in-flight queries depart
        (answering their clients), then tear the gateway down.

        Idempotent: concurrent or repeated calls wait for the first
        drain to finish instead of re-draining a closed gateway.
        """
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        self._draining = True
        try:
            if self._server is not None:
                self._server.close()
            await self.gateway.drain()
            # The departures resolved every waiter; wait until the
            # handler tasks have written those final responses out
            # (bounded, in case a client's transport wedges mid-write).
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                pass
            for writer in list(self._writers):
                writer.close()
            if self._server is not None:
                await self._server.wait_closed()
                self._server = None
            await self.gateway.close()
        finally:
            self._closed.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    def tenant_class(self, tenant: str) -> str:
        """The query class a tenant maps onto (sticky once assigned).

        A tenant named after one of the scenario's classes keeps that
        class (the multitenant family names one class per tenant);
        other tenants are assigned round-robin over the classes.
        """
        mapped = self._tenant_classes.get(tenant)
        if mapped is None:
            if tenant in self._class_names:
                mapped = tenant
            else:
                mapped = self._classes[
                    self._class_cursor % len(self._classes)
                ].name
                self._class_cursor += 1
            self._tenant_classes[tenant] = mapped
        return mapped

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    def _on_departure(self, record) -> None:
        future = self._waiters.pop(record.qid, None)
        if future is not None and not future.done():
            future.set_result(record)

    def _next_disk(self) -> int:
        disk = self._disk_cursor
        self._disk_cursor = (disk + 1) % self.gateway.config.resources.num_disks
        return disk

    def _synthetic_relation(self, pages: int) -> Relation:
        return Relation(
            rel_id=next(self._rel_ids),
            group=0,
            disk=self._next_disk(),
            pages=pages,
            start_page=0,
        )

    def _build_arrival(self, request: dict, tenant: str = "") -> LiveArrival:
        query_type = request.get("type", "sort")
        pages = int(request.get("pages", 20))
        if pages <= 0:
            raise ValueError(f"pages must be positive, got {pages}")
        slack = float(request.get("slack", 3.0))
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        tenant = str(request.get("tenant", tenant) or "")
        gateway = self.gateway
        if query_type in ("hash_join", "join"):
            outer_pages = int(request.get("outer_pages", 2 * pages))
            inner = self._synthetic_relation(pages)
            outer = self._synthetic_relation(outer_pages)
            if inner.pages > outer.pages:
                inner, outer = outer, inner
            standalone = gateway.cost_model.hash_join_standalone(
                inner.pages, outer.pages
            )
            kind = HASH_JOIN
        elif query_type in ("sort", "external_sort"):
            inner = self._synthetic_relation(pages)
            outer = None
            standalone = gateway.cost_model.sort_standalone(pages)
            kind = EXTERNAL_SORT
        else:
            raise ValueError(f"unknown query type {query_type!r}")
        if "class" in request:
            class_name = str(request["class"])
        elif tenant:
            class_name = self.tenant_class(tenant)
        else:
            class_name = query_type
        now = gateway.sim_now()
        return LiveArrival(
            qid=next(self._qids),
            class_name=class_name,
            query_type=kind,
            arrival=now,
            deadline=now + standalone * slack,
            standalone=standalone,
            inner=inner,
            outer=outer,
            temp_disk=inner.disk,
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        """One connection: read request lines, serve each in its own task.

        Hardened against hostile or broken clients: malformed and
        non-object JSON get structured ``error`` responses, an
        oversized line (framing is unrecoverable) gets one error and a
        close, and a mid-stream disconnect cancels every request still
        in flight -- which aborts the queries they own and releases
        their grants.  Nothing a single client does can kill the
        accept loop or wedge another tenant's connection.
        """
        self._writers.add(writer)
        #: Shared connection state: "hello" sets the default tenant for
        #: every later request (tasks start in arrival order, and hello
        #: has no await before the mutation, so the order holds).
        state = {"tenant": ""}
        lock = asyncio.Lock()  # serialises response writes
        inflight: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized line: the stream's framing is lost.
                    await self._respond(
                        writer, lock, {"error": "request line too long"}
                    )
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(line, state, writer, lock)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # server shutdown or client vanished: just end quietly
        finally:
            for task in list(inflight):
                task.cancel()  # aborts the queries these requests own
            self._writers.discard(writer)
            writer.close()

    async def _serve_request(self, line, state, writer, lock) -> None:
        """Parse and serve one request line; always answer something.

        A request carrying a ``"tag"`` gets it echoed in the response:
        submit responses arrive at query *departure* time, so a client
        multiplexing many in-flight submits on one connection (the
        shard router does exactly this) needs the tag to correlate the
        out-of-order responses.
        """
        self._pending += 1
        self._idle.clear()
        tag = None
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response = {"error": f"malformed JSON: {error}"}
            else:
                if not isinstance(request, dict):
                    response = {"error": "request must be a JSON object"}
                else:
                    tag = request.get("tag")
                    try:
                        if request.get("op") == "hello":
                            tenant = str(request.get("tenant", ""))
                            state["tenant"] = tenant
                            response = {
                                "tenant": tenant,
                                "class": self.tenant_class(tenant)
                                if tenant
                                else None,
                            }
                        else:
                            response = await self._dispatch(
                                request, state["tenant"]
                            )
                    except (ValueError, KeyError, TypeError) as error:
                        response = {"error": str(error)}
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:
                        # A server-side bug must not kill the
                        # connection loop; the gateway's failure
                        # channel still surfaces it at drain.
                        response = {
                            "error": "internal error: "
                            f"{type(error).__name__}: {error}"
                        }
            if tag is not None:
                response["tag"] = tag
            await self._respond(writer, lock, response)
        except asyncio.CancelledError:
            return  # connection gone: _dispatch cancelled its query
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()

    async def _respond(self, writer, lock, response: dict) -> None:
        payload = json.dumps(response).encode() + b"\n"
        try:
            async with lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished before reading its response

    def _stats(self) -> dict:
        gateway = self.gateway
        report = gateway.report
        pool = gateway.pool
        return {
            "policy": report.policy,
            "arrivals": report.arrivals,
            "served": report.served,
            "missed": report.missed,
            "shed": report.shed,
            "client_cancels": report.client_cancels,
            "miss_ratio": round(report.miss_ratio, 4),
            "observed_mpl": round(gateway.observed_mpl(), 4),
            "admitted": gateway.broker.admitted_count,
            "waiting": gateway.broker.waiting_count,
            "decisions": report.decisions,
            "decision_latency_mean_us": round(
                report.decision_latency_mean_us, 2
            ),
            "pool_hit_ratio": round(pool.hit_ratio, 4),
            "pool_reserved_pages": pool.reserved_pages,
            "pool_free_pages": pool.free_pages,
            "disk_queue_s": round(
                sum(disk.queue_seconds for disk in gateway.disks), 4
            ),
            "disk_busy_s": round(
                sum(disk.busy_seconds for disk in gateway.disks), 4
            ),
            "per_tenant": {
                tenant: {
                    "class": self._tenant_classes.get(tenant),
                    "arrivals": stats.arrivals,
                    "served": stats.served,
                    "missed": stats.missed,
                    "miss_ratio": round(stats.miss_ratio, 4),
                }
                for tenant, stats in sorted(report.per_tenant.items())
            },
            "draining": self._draining,
            "shard": (
                {"id": self.shard[0], "of": self.shard[1]}
                if self.shard is not None
                else None
            ),
        }

    async def _dispatch(self, request: dict, tenant: str = "") -> dict:
        op = request.get("op", "submit")
        if op == "stats":
            return self._stats()
        if op == "submit":
            if self._draining:
                raise ValueError("server is draining; submission refused")
            arrival = self._build_arrival(request, tenant)
            future = asyncio.get_running_loop().create_future()
            self._waiters[arrival.qid] = future
            try:
                job = self.gateway.submit(arrival)
            except BaseException:
                # A failed submit never departs, so nothing would ever
                # pop this waiter -- it must not outlive the request.
                self._waiters.pop(arrival.qid, None)
                raise
            if job.state == SHED:
                self._waiters.pop(arrival.qid, None)
                return {
                    "qid": arrival.qid,
                    "tenant": arrival.tenant or None,
                    "shed": True,
                    "reason": "overload: projected backlog makes the "
                    "deadline infeasible",
                }
            try:
                record = await future
            except asyncio.CancelledError:
                # The client vanished mid-query: abort it so its grant
                # and disk chunks are released instead of leaking.
                self._waiters.pop(arrival.qid, None)
                self.gateway.cancel_query(arrival.qid)
                raise
            return {
                "qid": record.qid,
                "class": record.class_name,
                "tenant": arrival.tenant or None,
                "missed": record.missed,
                "admitted": job.admitted_wall is not None,
                "waiting_s": round(record.waiting_time, 4),
                "execution_s": round(record.execution_time, 4),
                "deadline_s": round(arrival.deadline, 4),
            }
        raise ValueError(f"unknown op {op!r}")
