"""Legacy setup shim (pip in this environment lacks the wheel package,
so PEP 517 editable installs are unavailable)."""

from setuptools import setup

setup()
