#!/usr/bin/env python
"""Serve a generated scenario live -- and check the simulator's call.

The simulator *predicts* how each memory policy behaves; the live
serving layer (`repro.serve`) actually runs them: the same
`MemoryBroker` + policy objects admit real concurrent queries, the
real adaptive operators (PPHJ hash join, adaptive external sort)
execute over in-memory relations in an ED-scheduled worker pool, and
firm deadlines abort queries that run late.

This example replays one generated scenario open-loop -- the identical
workload the simulator sees, down to each arrival instant and deadline
-- under two policies, live, and prints the measured miss ratios next
to the simulator's prediction for the same scenario.

Run:  python examples/live_serving.py
"""

import asyncio

from repro.experiments import runner
from repro.scenarios import ScenarioGenerator
from repro.serve import run_live

#: Policies to race (module-level so the smoke test can shrink them).
POLICIES = ("max", "minmax")
#: Wall seconds per simulated second (0.02 = 50x faster than real time).
TIME_SCALE = 0.02
#: Cap on submitted queries (None = the scenario's full horizon).
MAX_ARRIVALS = None


def main() -> None:
    scenario = ScenarioGenerator(0).generate("mix", 0)
    print(f"scenario {scenario.name} ({scenario.content_hash[:10]}): "
          f"{len(scenario.config.workload.classes)} classes, "
          f"{scenario.config.resources.memory_pages} buffer pages, "
          f"{scenario.config.duration:.0f} simulated seconds\n")

    print(f"{'policy':14s} {'live miss':>9s} {'sim miss':>9s} "
          f"{'served':>6s} {'mpl':>5s} {'decisions/s':>11s}")
    for policy in POLICIES:
        live = asyncio.run(
            run_live(
                scenario.config,
                policy,
                time_scale=TIME_SCALE,
                max_arrivals=MAX_ARRIVALS,
            )
        )
        predicted = runner.run_many([scenario.run_spec(policy)])[0]
        print(f"{live.policy:14s} {live.miss_ratio:9.3f} "
              f"{predicted.miss_ratio:9.3f} {live.served:6d} "
              f"{live.observed_mpl:5.2f} {live.decisions_per_sec:11.0f}")

    print("\nSame workload, two substrates: the live layer executes real "
          "operator request\nstreams under wall-clock deadlines; the "
          "simulator predicts the same admission\ndecisions (the broker "
          "replay test pins them equal, decision for decision).")


if __name__ == "__main__":
    main()
