#!/usr/bin/env python
"""Memory-adaptive operators under a shrinking / growing grant.

Drives the two operator implementations -- the Partially Preemptible
Hash Join [Pang93a] and the adaptive external sort [Pang93b] --
*outside* the simulator, showing exactly how their I/O demand responds
to memory fluctuations:

* at the maximum allocation both run one-pass (no temp I/O);
* at the minimum they spool everything and read it back;
* when memory is yanked away mid-flight they contract (hash join) or
  split the running merge step (sort), and recover when it returns.

This is the operator-level behaviour PMM relies on (Section 2.2).

Run:  python examples/adaptive_operators.py
"""

from repro.queries.base import MemoryGrant, OperatorContext
from repro.queries.hash_join import HashJoinOperator
from repro.queries.requests import READ, WRITE, CPUBurst, DiskAccess
from repro.queries.sort import ExternalSortOperator
from repro.rtdbs.config import CPUCosts
from repro.rtdbs.database import Relation, TempFile


def make_context() -> OperatorContext:
    def allocate(disk: int, pages: int) -> TempFile:
        return TempFile(disk, 50_000, pages)

    return OperatorContext(
        tuples_per_page=40,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=allocate,
        release_temp=lambda temp: None,
    )


def summarise(trace) -> str:
    reads = sum(r.npages for r in trace if isinstance(r, DiskAccess) and r.kind == READ)
    writes = sum(r.npages for r in trace if isinstance(r, DiskAccess) and r.kind == WRITE)
    # CPU = stand-alone bursts plus the per-block bursts batched onto
    # disk accesses (DiskAccess.cpu).
    cpu = sum(r.instructions for r in trace if isinstance(r, CPUBurst))
    cpu += sum(r.cpu for r in trace if isinstance(r, DiskAccess))
    return f"pages read={reads:5d}  pages written={writes:5d}  CPU instructions={cpu/1e6:6.2f}M"


def run_join(grant_pages, label, shrink_at=None, shrink_to=None):
    context = make_context()
    grant = MemoryGrant(0)
    join = HashJoinOperator(
        context,
        grant,
        inner=Relation(0, 0, 0, 120, 1000),
        outer=Relation(1, 1, 1, 600, 2000),
    )
    grant.set(grant_pages if grant_pages else join.max_pages)
    trace = []
    for index, request in enumerate(join.run()):
        trace.append(request)
        if shrink_at is not None and index == shrink_at:
            grant.set(shrink_to)
    print(f"  {label:34s}: {summarise(trace)}")
    return join


def run_sort(grant_pages, label, shrink_at=None, shrink_to=None):
    context = make_context()
    grant = MemoryGrant(0)
    sort = ExternalSortOperator(context, grant, Relation(0, 0, 0, 240, 1000))
    grant.set(grant_pages if grant_pages else sort.max_pages)
    trace = []
    for index, request in enumerate(sort.run()):
        trace.append(request)
        if shrink_at is not None and index == shrink_at:
            grant.set(shrink_to)
    print(f"  {label:34s}: {summarise(trace)}  (merge steps: {sort.merge_passes})")
    return sort


def main() -> None:
    print("PPHJ hash join, R=120 pages, S=600 pages (F=1.1):")
    join = run_join(None, "max memory (one-pass)")
    print(f"    demand envelope: min={join.min_pages} max={join.max_pages} pages")
    run_join(join.min_pages, "min memory (two-pass)")
    mid = (join.min_pages + join.max_pages) // 2
    run_join(mid, "half memory (partial contraction)")
    run_join(None, "memory yanked mid-build", shrink_at=25, shrink_to=join.min_pages)

    print("\nAdaptive external sort, R=240 pages:")
    sort = run_sort(None, "max memory (in-memory sort)")
    print(f"    demand envelope: min={sort.min_pages} max={sort.max_pages} pages")
    run_sort(12, "12 pages (runs + merge)")
    run_sort(3, "minimum 3 pages (binary merges)")
    run_sort(30, "merge step split by shrink", shrink_at=80, shrink_to=3)


if __name__ == "__main__":
    main()
