#!/usr/bin/env python
"""The multiclass bias (Figure 18) and the fairness extension.

The paper's last experiment shows PMM's one blemish: with a
Small-query-dominated multiclass workload, PMM's drift into Max mode
minimises the *system* miss ratio but starves the large Medium-class
queries of memory -- "a disproportionally large number of Medium
queries miss their deadlines" (Section 5.6).  The authors close by
announcing a fairness mechanism as future work.

This example reproduces the bias under plain PMM and then runs the
same workload under this repository's implementation of that future
work -- ``FairPMM``, which lets an administrator specify desired
relative class miss ratios -- showing the Medium/Small gap narrowing.

Run:  python examples/fair_multiclass.py
"""

from repro import RTDBSystem, make_policy, multiclass


def report(label, result):
    medium = result.per_class["Medium"]
    small = result.per_class["Small"]
    print(f"{label:28s} system={result.miss_ratio:6.3f}  "
          f"Medium={medium.miss_ratio:6.3f} ({medium.served} served)  "
          f"Small={small.miss_ratio:6.3f} ({small.served} served)")
    return medium.miss_ratio - small.miss_ratio


def main() -> None:
    config = multiclass(
        small_rate=0.8,  # Small queries dominate the mix
        medium_rate=0.05,
        scale=0.1,
        seed=11,
        duration=2_000.0,
    )

    print("Multiclass workload, Small class dominant (Figure 18 regime)\n")
    plain_gap = report("PMM (paper)", RTDBSystem(config, "pmm").run())

    fair_policy = make_policy("fairpmm", goals={"Medium": 1.0, "Small": 1.0})
    fair_gap = report("FairPMM (equal goals)", RTDBSystem(config, fair_policy).run())

    strict_policy = make_policy("fairpmm", goals={"Medium": 0.5, "Small": 1.0})
    report("FairPMM (protect Medium)", RTDBSystem(config, strict_policy).run())

    print(f"\nMedium-vs-Small miss-ratio gap: PMM {plain_gap:+.3f} "
          f"-> FairPMM {fair_gap:+.3f}")
    print("The fairness extension trades a little system-level optimality "
          "for a (tunable) per-class balance.")


if __name__ == "__main__":
    main()
