#!/usr/bin/env python
"""Policy shootout: the paper's Figure 3 in miniature.

Sweeps the arrival rate of the memory-bound baseline workload and
compares all four algorithms of Table 5 -- Max, MinMax, Proportional,
and PMM -- on miss ratio, observed MPL, and disk utilisation.  The
qualitative result to look for (the paper's Section 5.1): MinMax wins,
PMM tracks it closely, Proportional degrades under load, and Max --
whose insistence on maximum allocations pins the MPL below 2 -- is the
worst once the system is loaded.

Run:  python examples/policy_shootout.py [--full]
      --full uses the paper's 10x larger configuration (slower).
"""

import argparse

from repro import RTDBSystem, baseline
from repro.analysis.report import format_table

POLICIES = ("max", "minmax", "proportional", "pmm")
RATES = (0.03, 0.045, 0.06)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run at the paper's full scale (slow)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.1
    duration = 20_000.0 if args.full else 2_500.0

    rows = []
    for rate in RATES:
        for policy in POLICIES:
            config = baseline(
                arrival_rate=rate, scale=scale, seed=args.seed, duration=duration
            )
            result = RTDBSystem(config, policy).run()
            rows.append(
                [
                    rate,
                    result.policy,
                    round(result.miss_ratio, 3),
                    round(result.observed_mpl, 2),
                    round(result.avg_disk_utilization, 2),
                    round(result.avg_waiting, 1),
                    round(result.avg_execution, 1),
                ]
            )
    print(
        format_table(
            ["rate", "policy", "miss_ratio", "mpl", "disk_util", "wait_s", "exec_s"],
            rows,
            title="Figure 3 in miniature: miss ratio by policy and arrival rate",
        )
    )
    print(
        "\nExpected ordering under load: MinMax <= PMM < Proportional < Max\n"
        "(the paper's Section 5.1 conclusion)."
    )


if __name__ == "__main__":
    main()
