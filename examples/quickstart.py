#!/usr/bin/env python
"""Quickstart: run the paper's baseline workload under PMM.

Builds the memory-bound baseline of Section 5.1 (one class of hash
joins over 10 disks) at the paper's validated small scale, runs it
under the PMM policy, and prints the headline statistics -- miss
ratio, timings, utilisations -- plus PMM's adaptation story (mode
switches and the target-MPL trajectory of Figure 6).

Run:  python examples/quickstart.py
"""

from repro import RTDBSystem, baseline


def main() -> None:
    config = baseline(
        arrival_rate=0.045,  # queries/second at full scale
        scale=0.1,  # the paper's small-scale configuration (Section 5.7)
        seed=42,
        duration=2_500.0,  # simulated seconds
    )
    system = RTDBSystem(config, "pmm")
    result = system.run()

    print("=== Baseline workload under PMM ===")
    print(f"queries served     : {result.served}")
    print(f"miss ratio         : {result.miss_ratio:.3f}")
    print(f"avg waiting time   : {result.avg_waiting:.2f} s")
    print(f"avg execution time : {result.avg_execution:.2f} s")
    print(f"avg response time  : {result.avg_response:.2f} s")
    print(f"observed MPL       : {result.observed_mpl:.2f}")
    print(f"CPU utilisation    : {result.cpu_utilization:.2f}")
    print(f"disk utilisation   : {result.avg_disk_utilization:.2f}")
    print(f"memory fluctuations: {result.avg_fluctuations:.2f} per query")

    print("\n=== PMM adaptation ===")
    policy = system.policy
    print(f"mode switches      : {policy.mode_switches}")
    print(f"restarts           : {policy.restarts}")
    trace = result.pmm_mpl_trace
    print("target-MPL trace (first 10 batches):")
    for time, mpl in trace[:10]:
        print(f"  t={time:8.1f}s  target MPL = {mpl:.1f}")


if __name__ == "__main__":
    main()
