#!/usr/bin/env python
"""Two tenants, one memory broker: multi-tenant serving over TCP.

The paper's admission policies exist because concurrent queries fight
over one buffer pool and one disk farm.  This example makes that
concrete: a live server (`repro.serve`) runs a multitenant scenario's
configuration -- one query class per tenant -- and two tenants connect
over real TCP at the same time, submitting sorts and joins.  Every
submission flows through the *same* `MemoryBroker`, the same tracked
allocator, the same cross-query `LiveBufferPool` (one tenant's scan
warms the cache the other hits), and the same contended per-disk FIFO
queues.  At the end the server drains gracefully and we print the
per-tenant outcomes beside the shared-pool telemetry.

Run:  python examples/multitenant_serving.py
"""

import asyncio
import json

from repro.scenarios import ScenarioGenerator
from repro.serve import LiveGateway, LiveServer, find_multitenant_scenario

#: Tenants to connect (each becomes one TCP client).
TENANTS = ("acme", "globex")
#: Queries each tenant submits.
QUERIES_PER_TENANT = 4
#: Memory policy arbitrating between the tenants.
POLICY = "pmm"
#: Wall seconds per simulated second (0.02 = 50x faster than real time).
TIME_SCALE = 0.02


async def run_tenant(host: str, port: int, tenant: str) -> list:
    """One tenant's session: hello, then a burst of submissions."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            json.dumps({"op": "hello", "tenant": tenant}).encode() + b"\n"
        )
        await writer.drain()
        hello = json.loads(await reader.readline())
        print(f"  {tenant} connected -> class {hello['class']}")
        outcomes = []
        for index in range(QUERIES_PER_TENANT):
            request = {
                "op": "submit",
                "type": "sort" if index % 2 == 0 else "hash_join",
                "pages": 10 + 6 * index,
                "slack": 8.0,
            }
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            outcomes.append(json.loads(await reader.readline()))
        return outcomes
    finally:
        writer.close()


async def serve_and_query() -> None:
    scenario = find_multitenant_scenario(ScenarioGenerator(0), len(TENANTS))
    print(f"scenario {scenario.name} ({scenario.content_hash[:10]}): "
          f"{len(scenario.config.workload.classes)} tenant classes, "
          f"{scenario.config.resources.memory_pages} shared buffer pages, "
          f"{scenario.config.resources.num_disks} shared disks\n")

    gateway = LiveGateway(
        scenario.config, POLICY, time_scale=TIME_SCALE, invariants=True
    )
    server = LiveServer(gateway)
    host, port = await server.start(port=0)
    print(f"server: policy={gateway.policy.name} on {host}:{port}")

    results = await asyncio.gather(
        *(run_tenant(host, port, tenant) for tenant in TENANTS)
    )
    await server.close()  # graceful drain: every query has departed

    print(f"\n{'tenant':10s} {'served':>6s} {'missed':>6s} {'mean exec s':>11s}")
    for tenant, outcomes in zip(TENANTS, results):
        missed = sum(1 for outcome in outcomes if outcome["missed"])
        mean_exec = sum(o["execution_s"] for o in outcomes) / len(outcomes)
        print(f"{tenant:10s} {len(outcomes):6d} {missed:6d} {mean_exec:11.3f}")

    pool = gateway.pool
    report = gateway.report
    print(f"\nshared pool : {pool.hits} hits / {pool.misses} misses "
          f"(hit ratio {pool.hit_ratio:.3f}), "
          f"{pool.free_pages}/{pool.total_pages} pages free after drain")
    print(f"disk farm   : busy {sum(d.busy_seconds for d in gateway.disks):.2f} s, "
          f"queued {sum(d.queue_seconds for d in gateway.disks):.2f} s "
          "(FIFO contention between the tenants)")
    print(f"decisions   : {report.decisions} broker reallocations over "
          f"{report.served} departures")
    print("\nOne broker, one pool, one disk farm -- the tenants only ever "
          "met inside the\nmemory policy's allocation vectors.")


def main() -> None:
    asyncio.run(serve_and_query())


if __name__ == "__main__":
    main()
