#!/usr/bin/env python
"""Cold/warm smoke check for the persistent experiment cache (CI).

Runs one small figure twice in *separate processes* against a fresh
cache directory:

* the **cold** run must execute simulations (engine reports misses and
  stores, and cache files appear on disk);
* the **warm** run must be served entirely from the persistent cache
  (zero misses) and therefore finish much faster.

Worker count comes from ``REPRO_BENCH_JOBS`` (default 2).  Usage::

    PYTHONPATH=src REPRO_BENCH_JOBS=2 python scripts/cache_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

FIGURE = os.environ.get("REPRO_SMOKE_FIGURE", "fig3")
DURATION = os.environ.get("REPRO_SMOKE_DURATION", "600")


def run_cli(cache_dir: str, jobs: str) -> tuple[float, dict, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro.experiments",
        FIGURE,
        "--duration",
        DURATION,
        "--jobs",
        jobs,
        "--cache-dir",
        cache_dir,
    ]
    start = time.perf_counter()
    proc = subprocess.run(command, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(f"CLI failed with exit code {proc.returncode}")
    match = re.search(
        r"\[engine\] jobs=\d+ cache=\S+ memo_hits=(\d+) disk_hits=(\d+) "
        r"misses=(\d+) stores=(\d+)",
        proc.stdout,
    )
    if match is None:
        raise SystemExit("engine stats line missing from CLI output")
    stats = dict(
        zip(("memo_hits", "disk_hits", "misses", "stores"), map(int, match.groups()))
    )
    return elapsed, stats, proc.stdout


def main() -> int:
    jobs = os.environ.get("REPRO_BENCH_JOBS", "2")
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache_dir:
        cold_s, cold, _ = run_cli(cache_dir, jobs)
        stored = sum(1 for _ in Path(cache_dir).rglob("*.pkl"))
        if cold["misses"] == 0 or cold["stores"] == 0 or stored == 0:
            raise SystemExit(f"cold run did not populate the cache: {cold}")

        warm_s, warm, _ = run_cli(cache_dir, jobs)
        if warm["misses"] != 0:
            raise SystemExit(f"warm run re-ran simulations: {warm}")
        if warm["disk_hits"] == 0:
            raise SystemExit(f"warm run never read the persistent cache: {warm}")

        print(
            f"[cache-smoke] OK: cold {cold_s:.1f}s ({cold['misses']} runs, "
            f"{stored} cached), warm {warm_s:.1f}s ({warm['disk_hits']} disk hits, "
            f"0 misses), speedup {cold_s / warm_s:.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
