#!/usr/bin/env python
"""Multi-tenant serve smoke: two TCP clients against the real server.

CI's ``serve-smoke`` job runs this: it launches the actual CLI server
process (``python -m repro.serve serve --tenants 2``), connects two
concurrent TCP clients as two different tenants, drives real
submissions through the shared data plane, asserts the per-tenant
report is sane, and then shuts the server down with SIGINT -- which
must drain gracefully (in-flight queries depart, clients get their
responses, exit code 0).

A second leg rehearses the crash path: a fresh server is launched with
``--journal``, SIGKILLed mid-traffic (no drain, no flush beyond the
per-op journal writes), and ``python -m repro.serve recover`` must
replay the journal to a conserved ledger -- exit 0 and the
"ledger conserved" banner.

Run locally with::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import queue
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Submissions per tenant.
PER_TENANT = 3


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def launch(time_scale: float, extra: tuple = ()) -> tuple:
    """Start the server subprocess; returns (process, host, port, lines).

    ``lines`` is a queue fed by a stdout-pump thread (``None`` marks
    EOF); all later output -- the drain banners -- is read from it.
    ``extra`` appends additional CLI flags (e.g. ``--journal``).
    """
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "serve",
            "--port",
            "0",
            "--tenants",
            "2",
            "--policy",
            "pmm",
            "--time-scale",
            str(time_scale),
            *extra,
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # Read stdout on a thread: a wedged server must trip the deadline,
    # not leave this script blocked forever inside readline().
    lines: queue.Queue = queue.Queue()

    def pump() -> None:
        for line in process.stdout:
            lines.put(line)
        lines.put(None)  # EOF

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 60.0
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            process.kill()
            raise SystemExit("server never printed its ready line")
        try:
            line = lines.get(timeout=min(remaining, 1.0))
        except queue.Empty:
            continue
        if line is None:
            raise SystemExit(
                f"server exited early ({process.wait()}) before its ready line"
            )
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return process, match.group(1), int(match.group(2)), lines


async def tenant_client(host: str, port: int, tenant: str) -> list:
    """One tenant's connection: hello, then PER_TENANT submissions."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            json.dumps({"op": "hello", "tenant": tenant}).encode() + b"\n"
        )
        await writer.drain()
        hello = json.loads(await reader.readline())
        assert hello["tenant"] == tenant, hello
        assert hello["class"], f"tenant {tenant} got no class mapping: {hello}"
        responses = []
        for index in range(PER_TENANT):
            writer.write(
                json.dumps(
                    {
                        "op": "submit",
                        "type": "sort" if index % 2 == 0 else "hash_join",
                        "pages": 8 + 4 * index,
                        "slack": 20.0,
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            assert "error" not in response, response
            assert response["tenant"] == tenant, response
            responses.append(response)
        return responses
    finally:
        writer.close()


async def fetch_stats(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def check_stats(stats: dict) -> None:
    """Per-tenant report sanity over the shared data plane."""
    per_tenant = stats["per_tenant"]
    assert set(per_tenant) == {"alpha", "beta"}, per_tenant
    for tenant, entry in per_tenant.items():
        assert entry["arrivals"] == PER_TENANT, (tenant, entry)
        assert entry["served"] == PER_TENANT, (tenant, entry)
        assert 0 <= entry["missed"] <= entry["served"], (tenant, entry)
        assert 0.0 <= entry["miss_ratio"] <= 1.0, (tenant, entry)
        assert entry["class"], (tenant, entry)
    served = sum(entry["served"] for entry in per_tenant.values())
    assert stats["served"] == served, stats
    assert stats["arrivals"] == 2 * PER_TENANT, stats
    assert 0.0 <= stats["pool_hit_ratio"] <= 1.0, stats
    assert stats["disk_queue_s"] >= 0.0, stats
    assert stats["disk_busy_s"] > 0.0, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=0.02)
    args = parser.parse_args(argv)

    process, host, port, lines = launch(args.time_scale)
    try:
        results = asyncio.run(
            asyncio.wait_for(
                _drive(host, port),
                timeout=240.0,
            )
        )
    except BaseException:
        process.kill()
        process.wait()
        raise
    stats = results["stats"]
    check_stats(stats)
    print(
        f"serve-smoke: 2 tenants x {PER_TENANT} queries served "
        f"(miss_ratio={stats['miss_ratio']}, "
        f"pool_hit_ratio={stats['pool_hit_ratio']}, "
        f"disk_queue_s={stats['disk_queue_s']})"
    )

    # Graceful drain: SIGINT must produce a clean exit and the drain
    # banner, with every query already departed.
    process.send_signal(signal.SIGINT)
    try:
        process.wait(timeout=120.0)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("server did not drain within 120 s of SIGINT")
    chunks = []
    while True:  # the pump thread ends with a None sentinel at EOF
        line = lines.get(timeout=10.0)
        if line is None:
            break
        chunks.append(line)
    output = "".join(chunks)
    if process.returncode != 0:
        raise SystemExit(
            f"server exited {process.returncode} after SIGINT:\n{output}"
        )
    if "drained cleanly" not in output:
        raise SystemExit(f"no drain banner in server output:\n{output}")
    print("serve-smoke: graceful drain ok")

    crash_recovery_leg(args.time_scale)
    return 0


async def _pipeline_submissions(host: str, port: int, count: int) -> None:
    """Pipeline ``count`` long-deadline submissions without waiting.

    Submit responses only arrive when queries *depart*; by writing the
    requests and never reading, the queries are left in flight so the
    SIGKILL lands mid-traffic with a populated broker ledger.
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(json.dumps({"op": "hello", "tenant": "alpha"}).encode() + b"\n")
    await writer.drain()
    hello = json.loads(await reader.readline())
    assert hello["tenant"] == "alpha", hello
    for index in range(count):
        writer.write(
            json.dumps(
                {
                    "op": "submit",
                    "type": "sort" if index % 2 == 0 else "hash_join",
                    "pages": 48 + 8 * index,
                    "slack": 1000.0,
                }
            ).encode()
            + b"\n"
        )
    await writer.drain()
    # Leave the connection open long enough for the submissions to be
    # admitted and journalled, then abandon it without reading.
    await asyncio.sleep(0.5)
    writer.close()


def crash_recovery_leg(time_scale: float) -> None:
    """SIGKILL the server mid-traffic; the journal must replay cleanly."""
    journal = Path(
        tempfile.mkdtemp(prefix="serve-smoke-crash-")
    ) / "broker.jsonl"
    process, host, port, lines = launch(
        time_scale, extra=("--journal", str(journal))
    )
    try:
        asyncio.run(
            asyncio.wait_for(_pipeline_submissions(host, port, 4), timeout=60.0)
        )
    except BaseException:
        process.kill()
        process.wait()
        raise
    process.kill()  # SIGKILL: no drain, no graceful close, no flush
    process.wait()
    while True:  # drain the pump thread to its EOF sentinel
        if lines.get(timeout=10.0) is None:
            break
    if not journal.exists() or not journal.read_text().strip():
        raise SystemExit(f"server never journalled to {journal}")

    recover = subprocess.run(
        [sys.executable, "-m", "repro.serve", "recover",
         "--journal", str(journal)],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120.0,
    )
    output = recover.stdout + recover.stderr
    if recover.returncode != 0:
        raise SystemExit(
            f"journal recovery exited {recover.returncode}:\n{output}"
        )
    if "ledger conserved" not in output:
        raise SystemExit(f"no conservation banner in recovery:\n{output}")
    print("serve-smoke: SIGKILL mid-traffic -> journal replayed to a "
          "conserved ledger")


async def _drive(host: str, port: int) -> dict:
    alpha, beta = await asyncio.gather(
        tenant_client(host, port, "alpha"),
        tenant_client(host, port, "beta"),
    )
    stats = await fetch_stats(host, port)
    return {"alpha": alpha, "beta": beta, "stats": stats}


if __name__ == "__main__":
    raise SystemExit(main())
