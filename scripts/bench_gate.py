#!/usr/bin/env python
"""Gate CI on the perf trajectory: fresh ``BENCH_*.json`` vs baselines.

The repository commits its perf trajectory (``BENCH_kernel.json``,
``BENCH_serve.json``); CI regenerates fresh copies on every push.
Until now the fresh files were uploaded as artifacts and compared to
nothing -- the trajectory existed and gated nothing.  This script
closes the loop: it diffs the fresh throughput numbers against the
committed baselines and **fails** on any regression beyond the floors,
printing a one-line delta table per metric.

Floors are the larger of

* an **absolute floor** -- the hard contract the test suite and bench
  scripts already promise (events/s from ``tests/test_kernel_perf.py``,
  decisions/s from ``scripts/bench_serve.py``, a live replay
  queries/s minimum), and
* a **relative floor** -- ``--rel`` (default 0.25) times the committed
  baseline, generous because CI runners are slower and noisier than
  the machines baselines are committed from.  A fresh number below a
  quarter of its baseline is a real regression, not runner noise.

Usage (either or both)::

    python scripts/bench_gate.py --kernel BENCH_kernel.fresh.json
    python scripts/bench_gate.py --serve BENCH_serve.fresh.json \
        --baseline-serve BENCH_serve.json --rel 0.25
    python scripts/bench_gate.py --oracle BENCH_oracle.fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, NamedTuple

#: Relative floor: fresh must reach this fraction of the baseline.
DEFAULT_REL = 0.25

#: Absolute floors -- the hard contracts, independent of any baseline.
KERNEL_EVENTS_PER_S_FLOOR = 12_000  # pinned by tests/test_kernel_perf.py
SERVE_DECISIONS_PER_S_FLOOR = 8_000  # pinned by scripts/bench_serve.py
#: Paced replay is arrival-bound (~188 q/s on mix/0/0 at scale 0.01 --
#: the gateway idles between scheduled arrivals), so its floor reflects
#: replay health, not capacity.
LIVE_QUERIES_PER_S_FLOOR = 100.0
#: The compressed-arrival probe is capacity-bound; the live plane must
#: absorb at least 2x the old paced-replay rate.
LIVE_CAPACITY_QUERIES_PER_S_FLOOR = 375.0
#: The overload reject path (shed at the door) must stay far cheaper
#: than admission -- pinned by scripts/bench_serve.py.
SHED_PER_S_FLOOR = 5_000
#: The routed round trip (client -> router -> shard -> back, two TCP
#: hops + a JSON re-encode per query) -- pinned by scripts/bench_serve.py.
ROUTER_QUERIES_PER_S_FLOOR = 1_000
#: The oracle's heuristic solver (the regret column's per-cell cost)
#: must stay interactive: a full 15x6 shootout matrix is ~90 solves,
#: so even at the floor the regret pass adds under ten seconds.
ORACLE_TRACES_PER_S_FLOOR = 10.0


class Metric(NamedTuple):
    name: str
    baseline: float
    fresh: float
    abs_floor: float


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"bench-gate: missing file {path}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"bench-gate: {path} is not valid JSON ({error})")


def kernel_metrics(baseline: dict, fresh: dict) -> Iterator[Metric]:
    yield Metric(
        "kernel.events_per_s",
        float(baseline["events_per_s"]),
        float(fresh["events_per_s"]),
        KERNEL_EVENTS_PER_S_FLOOR,
    )


def serve_metrics(baseline: dict, fresh: dict) -> Iterator[Metric]:
    def slowest_admission(payload: dict) -> float:
        return min(
            float(entry["decisions_per_sec"])
            for entry in payload["admission"].values()
        )

    yield Metric(
        "serve.admission_decisions_per_s",
        slowest_admission(baseline),
        slowest_admission(fresh),
        SERVE_DECISIONS_PER_S_FLOOR,
    )
    if "live" in baseline and "live" in fresh:
        yield Metric(
            "serve.live_queries_per_s",
            float(baseline["live"]["queries_per_sec"]),
            float(fresh["live"]["queries_per_sec"]),
            LIVE_QUERIES_PER_S_FLOOR,
        )
    if "live_capacity" in baseline and "live_capacity" in fresh:
        yield Metric(
            "serve.live_capacity_queries_per_s",
            float(baseline["live_capacity"]["queries_per_sec"]),
            float(fresh["live_capacity"]["queries_per_sec"]),
            LIVE_CAPACITY_QUERIES_PER_S_FLOOR,
        )
    if "shed" in baseline and "shed" in fresh:
        yield Metric(
            "serve.sheds_per_s",
            float(baseline["shed"]["sheds_per_sec"]),
            float(fresh["shed"]["sheds_per_sec"]),
            SHED_PER_S_FLOOR,
        )
    if "router" in baseline and "router" in fresh:
        yield Metric(
            "serve.router_queries_per_s",
            float(baseline["router"]["routed_per_sec"]),
            float(fresh["router"]["routed_per_sec"]),
            ROUTER_QUERIES_PER_S_FLOOR,
        )


def oracle_metrics(baseline: dict, fresh: dict) -> Iterator[Metric]:
    yield Metric(
        "oracle.traces_per_s",
        float(baseline["traces_per_s"]),
        float(fresh["traces_per_s"]),
        ORACLE_TRACES_PER_S_FLOOR,
    )


def gate(metrics: list, rel: float) -> int:
    """Print the delta table; return the number of failed metrics."""
    failures = 0
    width = max(len(metric.name) for metric in metrics)
    for metric in metrics:
        floor = max(metric.abs_floor, rel * metric.baseline)
        delta = (
            (metric.fresh - metric.baseline) / metric.baseline * 100.0
            if metric.baseline
            else float("nan")
        )
        ok = metric.fresh >= floor
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"{metric.name:<{width}}  baseline={metric.baseline:>10.1f}  "
            f"fresh={metric.fresh:>10.1f}  delta={delta:>+7.1f}%  "
            f"floor={floor:>10.1f}  {verdict}"
        )
        if not ok:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--kernel", type=Path, default=None, help="fresh BENCH_kernel.json"
    )
    parser.add_argument(
        "--serve", type=Path, default=None, help="fresh BENCH_serve.json"
    )
    parser.add_argument(
        "--oracle", type=Path, default=None, help="fresh BENCH_oracle.json"
    )
    parser.add_argument(
        "--baseline-kernel",
        type=Path,
        default=Path("BENCH_kernel.json"),
        help="committed kernel baseline (default: ./BENCH_kernel.json)",
    )
    parser.add_argument(
        "--baseline-serve",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="committed serve baseline (default: ./BENCH_serve.json)",
    )
    parser.add_argument(
        "--baseline-oracle",
        type=Path,
        default=Path("BENCH_oracle.json"),
        help="committed oracle baseline (default: ./BENCH_oracle.json)",
    )
    parser.add_argument(
        "--rel",
        type=float,
        default=DEFAULT_REL,
        help=f"relative floor as a fraction of baseline (default {DEFAULT_REL})",
    )
    args = parser.parse_args(argv)
    if args.kernel is None and args.serve is None and args.oracle is None:
        parser.error("nothing to gate: pass --kernel, --serve, and/or --oracle")
    if not 0.0 < args.rel <= 1.0:
        parser.error(f"--rel must be in (0, 1], got {args.rel}")

    metrics: list = []
    if args.kernel is not None:
        metrics.extend(
            kernel_metrics(_load(args.baseline_kernel), _load(args.kernel))
        )
    if args.serve is not None:
        metrics.extend(
            serve_metrics(_load(args.baseline_serve), _load(args.serve))
        )
    if args.oracle is not None:
        metrics.extend(
            oracle_metrics(_load(args.baseline_oracle), _load(args.oracle))
        )

    failures = gate(metrics, args.rel)
    if failures:
        print(
            f"bench-gate: {failures} metric(s) regressed beyond the floor",
            file=sys.stderr,
        )
        return 1
    print(f"bench-gate: {len(metrics)} metric(s) within floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
