#!/usr/bin/env python
"""Sharded serve smoke: the routed farm over real subprocesses.

CI's ``shard-smoke`` job runs this: it launches the actual router CLI
(``python -m repro.serve route --shards 2 --tenants 2``), which itself
spawns two real shard subprocesses (each a full serve stack on half
the scenario's disks and pool pages).  Two concurrent tenant clients
drive submissions through the router; the script asserts

* every submission is answered with its shard attribution and echoed
  tag (departure-time responses are correlated, not ordered);
* conservation: router arrivals == Σ shard arrivals == Σ shard
  (served + shed), per tenant and in aggregate;
* SIGINT drains the whole farm: the router prints its conservation
  verdict and exits 0, and every shard drains cleanly underneath it.

On any failure the exact reproduction command is printed last.

Run locally with::

    PYTHONPATH=src python scripts/shard_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SHARDS = 2
TENANTS = ("tenant0", "tenant1")
#: Submissions per tenant.
PER_TENANT = 3

REPRO_COMMAND = (
    "PYTHONPATH=src python -m repro.serve route --shards 2 --tenants 2 "
    "--port 0 --time-scale {scale}"
)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def launch(time_scale: float) -> tuple:
    """Start the router CLI (which launches the shard subprocesses);
    returns (process, host, port, lines queue)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "route",
            "--shards",
            str(SHARDS),
            "--tenants",
            str(len(TENANTS)),
            "--port",
            "0",
            "--policy",
            "pmm",
            "--time-scale",
            str(time_scale),
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: queue.Queue = queue.Queue()

    def pump() -> None:
        for line in process.stdout:
            lines.put(line)
        lines.put(None)  # EOF

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 120.0
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            process.kill()
            raise SystemExit("router never printed its ready line")
        try:
            line = lines.get(timeout=min(remaining, 1.0))
        except queue.Empty:
            continue
        if line is None:
            raise SystemExit(
                f"router exited early ({process.wait()}) before its ready line"
            )
        match = re.search(r"router .*listening on ([\d.]+):(\d+)", line)
        if match:
            return process, match.group(1), int(match.group(2)), lines


async def tenant_client(host: str, port: int, tenant: str) -> list:
    """One tenant through the router: hello (placement), submissions."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            json.dumps({"op": "hello", "tenant": tenant}).encode() + b"\n"
        )
        await writer.drain()
        hello = json.loads(await reader.readline())
        assert hello["tenant"] == tenant, hello
        assert hello["shard"] in range(SHARDS), hello
        responses = []
        for index in range(PER_TENANT):
            tag = f"{tenant}-{index}"
            writer.write(
                json.dumps(
                    {
                        "op": "submit",
                        "type": "sort" if index % 2 == 0 else "hash_join",
                        "pages": 8 + 4 * index,
                        "slack": 20.0,
                        "tag": tag,
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            assert "error" not in response, response
            assert response["tenant"] == tenant, response
            assert response["tag"] == tag, response
            assert response["shard"] in range(SHARDS), response
            responses.append(response)
        return responses
    finally:
        writer.close()


async def fetch_stats(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port, limit=1 << 20)
    try:
        writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def check_stats(stats: dict) -> None:
    """Conservation across the routed farm."""
    expected = len(TENANTS) * PER_TENANT
    assert stats["arrivals"] == expected, stats
    assert stats["responses"] == expected, stats
    assert sum(stats["routed"]) == expected, stats
    assert stats["per_tenant"] == {
        tenant: PER_TENANT for tenant in TENANTS
    }, stats["per_tenant"]
    conservation = stats["conservation"]
    assert conservation["ok"], conservation
    assert conservation["complete"], conservation
    assert conservation["shard_arrivals"] == expected, conservation
    assert conservation["settled"] == expected, conservation
    shards = stats["shards"]
    assert len(shards) == SHARDS, [s.get("shard") for s in shards]
    for shard_stats in shards:
        shard = shard_stats["shard"]
        assert shard is not None and shard["of"] == SHARDS, shard_stats
        assert shard_stats["served"] + shard_stats["shed"] == shard_stats[
            "arrivals"
        ], shard_stats
    assert sum(s["arrivals"] for s in shards) == expected, shards


async def _drive(host: str, port: int) -> dict:
    results = await asyncio.gather(
        *(tenant_client(host, port, tenant) for tenant in TENANTS)
    )
    stats = await fetch_stats(host, port)
    return {"responses": results, "stats": stats}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=0.02)
    args = parser.parse_args(argv)

    try:
        return _run(args)
    except BaseException:
        print(
            "shard-smoke failed; reproduce with:\n  "
            + REPRO_COMMAND.format(scale=args.time_scale),
            file=sys.stderr,
        )
        raise


def _run(args) -> int:
    process, host, port, lines = launch(args.time_scale)
    try:
        results = asyncio.run(
            asyncio.wait_for(_drive(host, port), timeout=240.0)
        )
    except BaseException:
        process.kill()
        process.wait()
        raise
    stats = results["stats"]
    check_stats(stats)
    aggregate = stats["aggregate"]
    print(
        f"shard-smoke: {len(TENANTS)} tenants x {PER_TENANT} queries routed "
        f"across {SHARDS} shards (miss_ratio={aggregate['miss_ratio']}, "
        f"placement={stats['placement']})"
    )

    # Graceful drain: SIGINT to the router must drain the whole farm --
    # router conservation verdict, exit 0, every shard drained.
    process.send_signal(signal.SIGINT)
    try:
        process.wait(timeout=180.0)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("router did not drain within 180 s of SIGINT")
    chunks = []
    while True:  # the pump thread ends with a None sentinel at EOF
        line = lines.get(timeout=10.0)
        if line is None:
            break
        chunks.append(line)
    output = "".join(chunks)
    if process.returncode != 0:
        raise SystemExit(
            f"router exited {process.returncode} after SIGINT:\n{output}"
        )
    if "router drained cleanly" not in output:
        raise SystemExit(f"no router drain banner:\n{output}")
    if "conservation ok" not in output:
        raise SystemExit(f"no conservation verdict in drain banner:\n{output}")
    print("shard-smoke: SIGINT drained the farm (router + shards) cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
