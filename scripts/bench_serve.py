#!/usr/bin/env python
"""Benchmark the live serving layer and write ``BENCH_serve.json``.

Four probes:

* **admission** -- the broker decision path exactly as the gateway
  drives it (register -> reallocate -> enforce through the tracked
  allocator -> depart -> reallocate), measured per policy over a
  churning population: sustained admission decisions/second plus
  per-decision latency percentiles.  The serve-smoke CI job asserts
  the sustained rate stays above ``MIN_DECISIONS_PER_SEC``.
* **live replay** -- one scenario replayed open-loop through the full
  asyncio gateway (workers, pacing, real byte traffic): sustained
  queries/second and end-to-end decision rate under load.  This leg is
  *arrival-pacing-bound*: the gateway idles between scheduled Poisson
  arrivals, so its q/s measures fidelity-preserving replay, not
  capacity.
* **live capacity** -- the same scenario with the arrival instants
  compressed (slacks untouched) so queries land as fast as the plane
  can absorb them: sustained q/s with the gateway *capacity-bound* --
  the number that actually moves when the data plane gets faster.
* **shed** -- an overload burst of arrivals whose deadlines are
  already infeasible: sustained shed decisions/second on the reject
  path.  Overload survival depends on rejecting doomed work much
  faster than admitting it; a slow reject path is itself an overload
  amplifier.
* **router** -- a doomed-submit burst through the consistent-hash
  front end over real TCP: two in-process shed-enabled shards behind a
  :class:`~repro.serve.router.ShardRouter`, one pipelining client,
  responses correlated by tag.  Measures the full routed round trip
  (client -> router -> shard -> router -> client) on the cheapest
  server path, i.e. pure routing overhead.

Run locally with::

    PYTHONPATH=src python scripts/bench_serve.py [--output BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The serve acceptance floor: the admission path must sustain at
#: least this many decisions per second (it typically does 2-3x; the
#: proportional bisection is the historically slowest path and holds
#: ~10k/s after its grant-exact shortcuts).
MIN_DECISIONS_PER_SEC = 8000

#: The reject path must stay far cheaper than admission: a shed is a
#: counter bump and a structured response, no broker registration, no
#: reallocation (it typically sustains hundreds of thousands/second).
MIN_SHEDS_PER_SEC = 5000

#: The routed round trip adds two TCP hops and a JSON re-encode per
#: query on top of the shard's own work; the router must not become
#: the bottleneck (it typically sustains several thousand/second).
MIN_ROUTED_PER_SEC = 1000


def bench_admission(policy_spec: str, decisions: int, population: int) -> dict:
    """Time the gateway's decision path over a churning population."""
    from repro.core.broker import MemoryBroker
    from repro.policies import make_policy
    from repro.serve.dataplane import TrackedAllocator

    policy = make_policy(policy_spec)
    broker = MemoryBroker(policy, total_pages=256, sample_size=30)
    allocator = TrackedAllocator(256)
    latencies = []
    qid = 0
    # Seed a standing population of mixed-demand queries.
    for qid in range(population):
        broker.register(qid, f"C{qid % 3}", 100.0 + qid, 4 + qid % 13, 20 + qid % 90)
    started = time.perf_counter()
    for step in range(decisions):
        tick = time.perf_counter()
        decision = broker.reallocate(now=float(step))
        allocator.apply(decision.allocation)
        latencies.append(time.perf_counter() - tick)
        # Churn: the oldest query departs, a fresh one arrives.
        victim = qid - population + 1
        broker.release(victim)
        allocator.release(victim)
        qid += 1
        broker.register(
            qid, f"C{qid % 3}", 100.0 + qid, 4 + qid % 13, 20 + qid % 90
        )
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "decisions": decisions,
        "population": population,
        "decisions_per_sec": round(decisions / elapsed),
        "latency_us": {
            "p50": round(latencies[len(latencies) // 2] * 1e6, 1),
            "p99": round(latencies[int(len(latencies) * 0.99)] * 1e6, 1),
            "max": round(latencies[-1] * 1e6, 1),
        },
    }


def bench_live(time_scale: float) -> dict:
    """Replay one scenario through the full gateway."""
    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import run_live

    scenario = ScenarioGenerator(0).generate("mix", 0)
    started = time.perf_counter()
    report = asyncio.run(
        run_live(scenario.config, "minmax", time_scale=time_scale)
    )
    elapsed = time.perf_counter() - started
    return {
        "scenario": scenario.name,
        "time_scale": time_scale,
        "wall_s": round(elapsed, 3),
        "served": report.served,
        "miss_ratio": round(report.miss_ratio, 4),
        "queries_per_sec": round(report.queries_per_sec, 1),
        "decisions_per_sec": round(report.decisions_per_sec, 1),
        "decision_latency_mean_us": round(report.decision_latency_mean_us, 1),
        "bytes_moved": report.bytes_moved,
        "pool_hit_ratio": round(report.pool_hit_ratio, 4),
        "disk_queue_s": round(report.disk_queue_seconds, 4),
    }


def bench_live_capacity(time_scale: float, compress: float) -> dict:
    """Replay the scenario with arrivals compressed ``compress``-fold.

    Each arrival keeps its slack (``deadline - arrival``) so per-query
    urgency is untouched; only the inter-arrival gaps shrink.  Under
    heavy compression the gateway stops idling between arrivals and the
    measured q/s is bounded by the data plane itself (worker pacing,
    disk arms, admission) rather than by the Poisson schedule.
    """
    from dataclasses import replace

    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import LiveGateway
    from repro.serve.workload import build_schedule

    scenario = ScenarioGenerator(0).generate("mix", 0)

    async def run():
        gateway = LiveGateway(scenario.config, "minmax", time_scale=time_scale)
        schedule = build_schedule(scenario.config, gateway.dataplane.database)
        compressed = replace(
            schedule,
            arrivals=tuple(
                replace(
                    arrival,
                    arrival=arrival.arrival / compress,
                    deadline=arrival.arrival / compress + arrival.time_constraint,
                )
                for arrival in schedule.arrivals
            ),
        )
        return await gateway.run_schedule(compressed)

    started = time.perf_counter()
    report = asyncio.run(run())
    elapsed = time.perf_counter() - started
    return {
        "scenario": scenario.name,
        "time_scale": time_scale,
        "compress": compress,
        "wall_s": round(elapsed, 3),
        "served": report.served,
        "queries_per_sec": round(report.queries_per_sec, 1),
        "decisions_per_sec": round(report.decisions_per_sec, 1),
        "bytes_moved": report.bytes_moved,
        "disk_queue_s": round(report.disk_queue_seconds, 4),
    }


def bench_shed(burst: int) -> dict:
    """Time the overload reject path under a burst of doomed arrivals.

    Every burst arrival carries a deadline below its own stand-alone
    time, so the feasibility projection sheds each one at the door --
    the measured rate is pure reject-path cost (projection + counters +
    structured response state), no broker churn.
    """
    from dataclasses import replace

    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import LiveGateway
    from repro.serve.workload import build_schedule

    scenario = ScenarioGenerator(0).generate("mix", 0)

    async def run():
        gateway = LiveGateway(
            scenario.config, "minmax", time_scale=1.0, shed_overload=True
        )
        schedule = build_schedule(
            scenario.config, gateway.dataplane.database, max_arrivals=1
        )
        template = schedule.arrivals[0]
        await gateway.start()
        try:
            now = gateway.sim_now()
            started = time.perf_counter()
            for qid in range(burst):
                gateway.submit(
                    replace(
                        template,
                        qid=1_000_000 + qid,
                        arrival=now,
                        deadline=now + template.standalone * 0.5,
                    )
                )
            elapsed = time.perf_counter() - started
        finally:
            await gateway.close()
        return gateway.report, elapsed

    report, elapsed = asyncio.run(run())
    assert report.shed == burst, "a doomed arrival was not shed"
    return {
        "burst": burst,
        "shed": report.shed,
        "sheds_per_sec": round(burst / elapsed),
    }


def bench_router(burst: int) -> dict:
    """Time the routed reject path: a doomed-submit burst through the
    consistent-hash front end over real TCP.

    Two in-process shards (each a shed-enabled gateway on half the
    scenario's disks and pool pages) sit behind a
    :class:`~repro.serve.router.ShardRouter`; one pipelining client
    writes the whole burst, then collects the out-of-order responses
    by tag.  Every submission carries an infeasible deadline, so each
    shard sheds it at the door and the measured rate is the routed
    round trip itself -- placement, forward, shard reject, relay.
    """
    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import LiveGateway
    from repro.serve.router import LINE_LIMIT, ShardRouter
    from repro.serve.server import LiveServer
    from repro.serve.shard import shard_config

    config = ScenarioGenerator(0).generate("mix", 0).config
    shards = 2
    tenants = [f"tenant{i}" for i in range(8)]

    async def run():
        servers = []
        endpoints = []
        for shard_id in range(shards):
            gateway = LiveGateway(
                shard_config(config, shard_id, shards),
                "minmax",
                time_scale=1.0,
                shed_overload=True,
            )
            server = LiveServer(gateway, shard=(shard_id, shards))
            host, port = await server.start(port=0)
            servers.append(server)
            endpoints.append((host, port))
        router = ShardRouter(
            endpoints, ring_seed=config.seed, rebalance_interval=0.0
        )
        try:
            host, port = await router.start()
            reader, writer = await asyncio.open_connection(
                host, port, limit=LINE_LIMIT
            )
            try:

                async def read_all():
                    seen = 0
                    while seen < burst:
                        response = json.loads(await reader.readline())
                        assert response.get("shed"), response
                        seen += 1

                collector = asyncio.ensure_future(read_all())
                started = time.perf_counter()
                for index in range(burst):
                    writer.write(
                        json.dumps(
                            {
                                "op": "submit",
                                "type": "sort",
                                "pages": 8,
                                "slack": 0.01,
                                "tenant": tenants[index % len(tenants)],
                                "tag": index,
                            }
                        ).encode()
                        + b"\n"
                    )
                    if index % 64 == 0:
                        await writer.drain()
                await writer.drain()
                await collector
                elapsed = time.perf_counter() - started
                conservation = (await router.stats())["conservation"]
                assert conservation["complete"], conservation
            finally:
                writer.close()
        finally:
            await router.close()
            for server in servers:
                await server.close()
        return elapsed

    elapsed = asyncio.run(run())
    return {
        "burst": burst,
        "shards": shards,
        "routed_per_sec": round(burst / elapsed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument("--decisions", type=int, default=3000)
    parser.add_argument("--population", type=int, default=24)
    parser.add_argument("--time-scale", type=float, default=0.01)
    parser.add_argument("--compress", type=float, default=16.0)
    parser.add_argument("--shed-burst", type=int, default=5000)
    parser.add_argument("--router-burst", type=int, default=2000)
    parser.add_argument(
        "--skip-live", action="store_true", help="admission probe only"
    )
    args = parser.parse_args(argv)

    from repro.policies import DEFAULT_POLICIES
    from repro.serve.gateway import install_uvloop

    uvloop_active = install_uvloop()

    admission = {
        spec: bench_admission(spec, args.decisions, args.population)
        for spec in DEFAULT_POLICIES
    }
    payload = {
        "probe": "repro.serve admission + live replay + live capacity "
        "+ shed + router",
        "admission": admission,
        "shed": bench_shed(args.shed_burst),
        "router": bench_router(args.router_burst),
        "python": platform.python_version(),
        "uvloop": uvloop_active,
    }
    if not args.skip_live:
        payload["live"] = bench_live(args.time_scale)
        payload["live_capacity"] = bench_live_capacity(
            args.time_scale, args.compress
        )

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    slowest = min(entry["decisions_per_sec"] for entry in admission.values())
    shed_rate = payload["shed"]["sheds_per_sec"]
    routed_rate = payload["router"]["routed_per_sec"]
    print(json.dumps(payload, indent=2))
    print(f"\nslowest admission path: {slowest} decisions/s "
          f"(floor {MIN_DECISIONS_PER_SEC})")
    print(f"shed (reject) path: {shed_rate} sheds/s "
          f"(floor {MIN_SHEDS_PER_SEC})")
    print(f"routed round trip: {routed_rate} queries/s "
          f"(floor {MIN_ROUTED_PER_SEC})")
    if slowest < MIN_DECISIONS_PER_SEC:
        print("FAIL: admission decision rate below the floor", file=sys.stderr)
        return 1
    if shed_rate < MIN_SHEDS_PER_SEC:
        print("FAIL: shed (reject) rate below the floor", file=sys.stderr)
        return 1
    if routed_rate < MIN_ROUTED_PER_SEC:
        print("FAIL: routed round-trip rate below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
