#!/usr/bin/env python
"""Time the profiled kernel baseline and write ``BENCH_kernel.json``.

This is the perf-trajectory probe: it re-runs the reference experiment
from ``benchmarks/PROFILE.md`` --

    baseline(arrival_rate=0.02, scale=0.1, duration=400.0, seed=3)  # minmax

-- a few times, takes run-only wall-clock (construction excluded, as in
the profile), and records wall clock, deterministic event count, and
events/second so future PRs can diff the trajectory instead of
re-profiling by hand.  CI runs it on every push; run locally with::

    PYTHONPATH=src python scripts/bench_kernel.py [--repeats 7] [--output BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path


def time_reference(repeats: int):
    from repro import RTDBSystem, baseline

    samples = []
    events = None
    arrivals = None
    for _ in range(repeats):
        config = baseline(arrival_rate=0.02, scale=0.1, duration=400.0, seed=3)
        system = RTDBSystem(config, "minmax")
        start = time.perf_counter()
        result = system.run()
        samples.append(time.perf_counter() - start)
        if events is None:
            events = system.sim.events_processed
            arrivals = result.arrivals
        else:
            # The run is fully deterministic; a drifting event count
            # means the kernel changed under us mid-measurement.
            assert events == system.sim.events_processed, "non-deterministic run"
    return samples, events, arrivals


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default="BENCH_kernel.json")
    args = parser.parse_args(argv)

    samples, events, arrivals = time_reference(args.repeats)
    median = statistics.median(samples)
    best = min(samples)
    payload = {
        "experiment": "baseline(arrival_rate=0.02, scale=0.1, duration=400.0, seed=3), minmax",
        "timing_scope": "RTDBSystem.run() only (construction excluded)",
        "repeats": args.repeats,
        "wall_clock_s": {"median": round(median, 4), "min": round(best, 4)},
        "events_processed": events,
        "events_per_s": round(events / median),
        "arrivals": arrivals,
        "python": platform.python_version(),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
