#!/usr/bin/env python
"""Time the oracle's heuristic solver and write ``BENCH_oracle.json``.

The regret column's cost is one heuristic solve per (scenario, policy)
cell, so this probe times exactly that path: three recorded scenario
traces (mix, bursty, phases -- the same generator seed the oracle
smoke job pins) solved with the exact solver disabled
(``exact_limit=0``), repeated a few times on run-only wall clock
(trace recording excluded).  Records traces/second and queries/second
so future PRs can diff the trajectory; ``scripts/bench_gate.py
--oracle`` fails CI when the fresh numbers drop below the committed
baseline's floor.  Run locally with::

    PYTHONPATH=src python scripts/bench_oracle.py [--repeats 5] [--output BENCH_oracle.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

#: (family, index) cells recorded at generator seed 1 -- a spread of
#: trace sizes, matching the oracle-smoke job's pinned seed.
CELLS = (("mix", 0), ("bursty", 0), ("phases", 0))
SCENARIO_SEED = 1
POLICY = "minmax"


def build_problems():
    from repro.oracle import OracleProblem, trace_scenario
    from repro.scenarios import ScenarioGenerator

    generator = ScenarioGenerator(SCENARIO_SEED)
    problems = []
    for family, index in CELLS:
        scenario = generator.generate(family, index)
        trace, _result = trace_scenario(scenario, POLICY)
        problems.append(OracleProblem.from_trace(trace))
    return problems


def time_heuristic(problems, repeats: int):
    from repro.oracle import solve

    samples = []
    reference = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = tuple(
            solve(problem, exact_limit=0) for problem in problems
        )
        samples.append(time.perf_counter() - start)
        if reference is None:
            reference = results
        else:
            # Content-hash caching requires a deterministic solver; a
            # drifting solution means it changed under us mid-measurement.
            assert results == reference, "non-deterministic solve"
    return samples, reference


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default="BENCH_oracle.json")
    args = parser.parse_args(argv)

    problems = build_problems()
    samples, results = time_heuristic(problems, args.repeats)
    median = statistics.median(samples)
    queries = sum(problem.query_count for problem in problems)
    payload = {
        "experiment": (
            f"heuristic solve (exact_limit=0) over {CELLS} at scenario "
            f"seed {SCENARIO_SEED}, policy {POLICY}"
        ),
        "timing_scope": "solve() only (trace recording excluded)",
        "repeats": args.repeats,
        "wall_clock_s": {
            "median": round(median, 4),
            "min": round(min(samples), 4),
        },
        "traces": len(problems),
        "queries": queries,
        "oracle_misses": sum(result.misses for result in results),
        "traces_per_s": round(len(problems) / median, 2),
        "queries_per_s": round(queries / median, 1),
        "python": platform.python_version(),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
