#!/usr/bin/env python
"""Rotating-seed invariant fuzz over generated scenarios.

The CI ``scenario-fuzz`` job runs this with a seed derived from the CI
run number (rotating-but-logged), so every CI run fuzzes a *fresh*
slice of scenario space while staying exactly reproducible.  On any
failure the script prints the one command line that reproduces it::

    PYTHONPATH=src python scripts/scenario_fuzz.py \\
        --seed <S> --family <F> --index <I> --policy <P>

Seed resolution order: ``--seed``, ``$SCENARIO_FUZZ_SEED``,
``$GITHUB_RUN_NUMBER``, then the current day number (local runs rotate
daily).  The chosen seed is always printed first.

Modes
-----
* sweep (default): ``--count N`` scenarios round-robin over all
  families, rotating through all policies, each run with the
  InvariantChecker attached.
* single: ``--family F --index I [--policy P]`` re-runs one scenario
  (the reproduction mode the failure line points at).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.policies import DEFAULT_POLICIES  # noqa: E402
from repro.rtdbs.system import RTDBSystem  # noqa: E402
from repro.scenarios import FAMILIES, ScenarioGenerator  # noqa: E402

#: The registry's canonical set plus two extra MPL limits for variety.
POLICIES = DEFAULT_POLICIES + ("minmax-2", "minmax-6")


def resolve_seed(explicit) -> int:
    if explicit is not None:
        return int(explicit)
    for variable in ("SCENARIO_FUZZ_SEED", "GITHUB_RUN_NUMBER"):
        value = os.environ.get(variable)
        if value:
            return int(value)
    return int(time.time() // 86_400)  # rotates daily on dev machines


def run_one(scenario, policy: str) -> "tuple":
    system = RTDBSystem(scenario.config, policy, invariants=True)
    result = system.run()
    if system.invariants.failures:  # pragma: no cover - defensive double-check
        raise AssertionError(system.invariants.failures[0])
    return result, system.invariants


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=None, help="generator seed")
    parser.add_argument("--count", type=int, default=150, help="scenarios to sweep")
    parser.add_argument(
        "--family", default=None, help="single-scenario mode: the family"
    )
    parser.add_argument(
        "--index", type=int, default=None, help="single-scenario mode: the index"
    )
    parser.add_argument(
        "--policy", default=None, help="run only this policy (default: rotate all)"
    )
    args = parser.parse_args(argv)

    seed = resolve_seed(args.seed)
    generator = ScenarioGenerator(seed=seed)
    print(f"[scenario-fuzz] seed={seed} policies={','.join(POLICIES)}")

    if args.family is not None or args.index is not None:
        if args.family is None or args.index is None:
            parser.error("single-scenario mode needs both --family and --index")
        scenario = generator.generate(args.family, args.index)
        policies = (args.policy,) if args.policy else POLICIES
        print(f"[scenario-fuzz] single scenario {scenario.name} "
              f"hash={scenario.content_hash}")
        for policy in policies:
            result, checker = run_one(scenario, policy)
            print(
                f"  {policy:12s} arrivals={result.arrivals} served={result.served} "
                f"missed={result.missed} checks={sum(checker.checks.values())}"
            )
        print("[scenario-fuzz] OK")
        return 0

    checked = 0
    started = time.time()
    scenarios = generator.batch(args.count, tuple(FAMILIES))
    for position, scenario in enumerate(scenarios):
        policy = args.policy or POLICIES[position % len(POLICIES)]
        try:
            result, checker = run_one(scenario, policy)
        except Exception as error:
            print(f"\n[scenario-fuzz] FAILED: {scenario.name} x {policy}")
            print(f"  hash : {scenario.content_hash}")
            print(f"  error: {error}")
            print("  repro:")
            print(f"    {scenario.repro_command(policy)}")
            return 1
        checked += sum(checker.checks.values())
    print(
        f"[scenario-fuzz] OK: {len(scenarios)} scenarios x rotating policies, "
        f"{checked} invariant checks, 0 violations "
        f"({time.time() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
