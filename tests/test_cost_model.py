"""Unit tests for the stand-alone cost model."""

import pytest

from repro.queries.cost_model import StandAloneCostModel
from repro.rtdbs.config import CPUCosts, ResourceParams


@pytest.fixture
def model():
    return StandAloneCostModel(
        resources=ResourceParams(),
        costs=CPUCosts(),
        tuples_per_page=40,
        fudge_factor=1.1,
    )


def test_cpu_seconds_uses_mips(model):
    assert model.cpu_seconds(40e6) == pytest.approx(1.0)  # 40 MIPS


def test_scan_io_count_rounds_up(model):
    assert model.scan_io_count(6) == 1
    assert model.scan_io_count(7) == 2
    assert model.scan_io_count(600) == 100


def test_sequential_scan_dominated_by_transfer(model):
    resources = model.resources
    time_1200 = model.sequential_scan_seconds(1200)
    pure_transfer = 1200 * resources.transfer_s_per_page
    assert time_1200 > pure_transfer
    assert time_1200 < pure_transfer + 0.1  # one positioning only


def test_scan_time_linear_in_pages(model):
    small = model.sequential_scan_seconds(600)
    large = model.sequential_scan_seconds(1200)
    assert large - small == pytest.approx(
        600 * model.resources.transfer_s_per_page, rel=1e-9
    )


def test_paged_reads_cost_more_per_page_than_scans(model):
    scan = model.sequential_scan_seconds(600) / 600
    paged = model.paged_read_seconds(600) / 600
    assert paged > 2 * scan


def test_join_standalone_in_papers_range(model):
    # The paper's Table 7 puts the average baseline join (R=1200,
    # S=6000) in the 30-40 s band; our calibration targets that window
    # broadly.
    standalone = model.hash_join_standalone(1200, 6000)
    assert 15.0 < standalone < 45.0


def test_join_standalone_monotone_in_operands(model):
    assert model.hash_join_standalone(1200, 6000) > model.hash_join_standalone(600, 3000)
    assert model.hash_join_standalone(1200, 6000) > model.hash_join_standalone(1200, 3000)


def test_sort_standalone_cheaper_than_join(model):
    # Section 5.5's premise: a 1200-page sort loads the system far
    # less than a 1200/6000-page join.
    assert model.sort_standalone(1200) < model.hash_join_standalone(1200, 6000) / 2


def test_two_pass_join_costs_about_three_scans(model):
    one_pass = model.hash_join_standalone(1200, 6000)
    two_pass = model.hash_join_two_pass(1200, 6000)
    assert 2.0 < two_pass / one_pass < 4.0


def test_sort_two_pass_decreases_with_workspace(model):
    tight = model.sort_two_pass(1200, workspace=10)
    roomy = model.sort_two_pass(1200, workspace=200)
    assert roomy < tight


def test_selectivity_scales_join_cpu():
    lean = StandAloneCostModel(
        resources=ResourceParams(),
        costs=CPUCosts(),
        tuples_per_page=40,
        join_selectivity=0.0,
    )
    rich = StandAloneCostModel(
        resources=ResourceParams(),
        costs=CPUCosts(),
        tuples_per_page=40,
        join_selectivity=2.0,
    )
    assert rich.hash_join_standalone(600, 3000) > lean.hash_join_standalone(600, 3000)
