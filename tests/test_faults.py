"""The fault-injection plane: schedules, survival laws, crash recovery."""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.scenarios import ScenarioGenerator
from repro.serve.faults import (
    DEGRADE,
    OUTAGE,
    CircuitBreaker,
    DiskFaultWindow,
    FaultSchedule,
    FaultyPolicy,
    JournalRecorder,
    MemoryPressureWindow,
    PolicyFaultError,
    load_journal,
    recover_journal,
)
from repro.serve.gateway import LiveGateway, run_live
from repro.serve.workload import build_schedule


def scenario_config(family="memorythief", index=0, seed=0):
    return ScenarioGenerator(seed).generate(family, index).config


def run_chaos(config, policy, faults, shed=True, max_arrivals=25):
    """One live run under faults; returns (gateway, report)."""

    async def scenario():
        gateway = LiveGateway(
            config,
            policy,
            time_scale=0.005,
            invariants=True,
            faults=faults,
            shed_overload=shed,
        )
        schedule = build_schedule(
            config, gateway.dataplane.database, max_arrivals=max_arrivals
        )
        report = await gateway.run_schedule(schedule)
        return gateway, report

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_fault_schedule_deterministic_and_content_hashed():
    config = scenario_config()
    first = FaultSchedule.generate(7, config)
    again = FaultSchedule.generate(7, config)
    assert first == again
    assert first.content_hash == again.content_hash
    assert first.content_hash != FaultSchedule.generate(8, config).content_hash
    # Every generated schedule mixes the fault kinds the chaos gate
    # needs: at least one disk outage, a memory thief, policy faults,
    # and stalled clients.
    assert any(w.kind == OUTAGE for w in first.disk_windows)
    assert first.memory_windows
    assert first.policy_faults
    assert first.stalled_clients >= 1
    assert first.active
    assert not FaultSchedule.empty().active


def test_fault_schedule_windows_fit_horizon():
    config = scenario_config()
    for seed in range(10):
        schedule = FaultSchedule.generate(seed, config, horizon=20.0)
        for window in schedule.disk_windows:
            assert 0.0 <= window.start < window.end <= 20.0
            assert 0 <= window.disk < config.resources.num_disks
        for window in schedule.memory_windows:
            assert 0.0 <= window.start < window.end <= 20.0
            assert 0 < window.stolen_pages < config.resources.memory_pages


def test_faulty_policy_raises_only_on_scheduled_ordinals():
    from repro.policies.registry import make_policy

    policy = FaultyPolicy(make_policy("max"), ordinals=(2,))
    assert policy.allocate({}, 100) == {}
    with pytest.raises(PolicyFaultError):
        policy.allocate({}, 100)
    assert policy.allocate({}, 100) == {}  # delegation untouched after
    assert policy.faults_raised == 1
    assert policy.name == "Max"  # attribute delegation


def test_circuit_breaker_opens_and_half_opens():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    breaker.record_failure(0.0)
    assert not breaker.is_open(0.0)
    breaker.record_failure(0.1)
    assert breaker.opens == 1
    assert breaker.is_open(0.5)
    # Cooldown over: half-open, one probe allowed, one failure re-opens.
    assert not breaker.is_open(2.0)
    breaker.record_failure(2.0)
    assert breaker.is_open(2.5)
    assert breaker.opens == 2
    breaker.record_success()
    assert not breaker.is_open(2.5)
    assert breaker.failures == 0


# ----------------------------------------------------------------------
# the no-fault path is unchanged
# ----------------------------------------------------------------------
def test_empty_schedule_changes_nothing():
    """Running under the empty schedule is structurally the no-fault
    gateway: no injector, no policy proxy, and every degraded-mode
    counter stays zero."""
    config = scenario_config(family="mix")
    gateway = LiveGateway(config, "minmax", faults=FaultSchedule.empty())
    assert gateway._injector is None
    assert not isinstance(gateway.policy, FaultyPolicy)

    baseline = asyncio.run(
        run_live(config, "minmax", time_scale=0.01, max_arrivals=20)
    )
    under_empty = asyncio.run(
        run_live(
            config,
            "minmax",
            time_scale=0.01,
            max_arrivals=20,
            faults=FaultSchedule.empty(),
        )
    )
    assert under_empty.served == baseline.served == under_empty.arrivals
    for report in (baseline, under_empty):
        assert report.shed == 0
        assert report.disk_retries == 0
        assert report.disk_reroutes == 0
        assert report.disk_fast_fails == 0
        assert report.breaker_opens == 0
        assert report.policy_faults == 0
        assert report.pool_shrinks == 0
        assert report.client_cancels == 0
    # Identical code path, so only wall-clock pacing jitter separates
    # the two runs (the CI fidelity gate bounds the ratio against the
    # DES at its slower, stabler time scale).
    assert abs(under_empty.miss_ratio - baseline.miss_ratio) <= 0.25


# ----------------------------------------------------------------------
# survival laws (property test over random seeded schedules)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
def test_random_fault_schedules_conserve_everything(fault_seed):
    config = scenario_config()
    faults = FaultSchedule.generate(fault_seed, config)
    gateway, report = run_chaos(config, "pmm", faults)
    # Arrival conservation: every query was served or shed, never lost.
    assert report.served + report.shed == report.arrivals
    # Zero grant leaks and an empty broker after close.
    assert gateway.allocator.reserved_pages == 0
    assert gateway.broker.present_count == 0
    # Disk chunk conservation, per disk, including the cancelled ones.
    for disk in gateway.disks:
        assert disk.chunks_submitted == disk.chunks_served + disk.chunks_cancelled
        assert disk.queue_depth == 0
        assert not disk.in_service
    # Fault windows were actually opened and closed back to healthy.
    for disk in gateway.disks:
        assert not disk.faulted
        assert disk.core.fault_multiplier == 1.0
    assert gateway.broker.total_pages == config.resources.memory_pages


def test_outage_drives_retries_breaker_and_reroutes():
    config = scenario_config()
    assert config.resources.num_disks >= 2
    faults = FaultSchedule(
        seed=0,
        disk_windows=(
            DiskFaultWindow(0, 0.0, config.duration, OUTAGE),
        ),
    )
    gateway, report = run_chaos(config, "minmax", faults, shed=False)
    assert report.disk_outages == 1
    assert report.disk_retries > 0
    assert report.breaker_opens >= 1
    # With a healthy replica available, cacheable reads reroute.
    assert report.disk_reroutes > 0
    assert report.served == report.arrivals
    assert gateway.allocator.reserved_pages == 0


def test_degrade_window_stretches_service_and_restores():
    config = scenario_config()
    faults = FaultSchedule(
        seed=0,
        disk_windows=(
            DiskFaultWindow(0, 0.0, config.duration, DEGRADE, factor=4.0),
        ),
    )
    gateway, report = run_chaos(config, "minmax", faults, shed=False)
    assert report.disk_degrades == 1
    assert report.served == report.arrivals
    assert gateway.disks[0].core.fault_multiplier == 1.0  # restored


def test_memory_thief_shrinks_and_restores_the_pool():
    config = scenario_config()
    steal = config.resources.memory_pages // 2
    faults = FaultSchedule(
        seed=0,
        memory_windows=(
            MemoryPressureWindow(1.0, config.duration / 2, steal),
        ),
    )
    gateway, report = run_chaos(config, "pmm", faults, shed=False)
    assert report.pool_shrinks == 1
    assert report.served == report.arrivals
    # The theft window ended (or was cancelled at close): full pool back.
    assert gateway.broker.total_pages == config.resources.memory_pages
    assert gateway.pool.total_pages == config.resources.memory_pages
    assert gateway.allocator.reserved_pages == 0


def test_policy_faults_are_survived_not_fatal():
    config = scenario_config()
    faults = FaultSchedule(seed=0, policy_faults=(1, 2, 3))
    gateway, report = run_chaos(config, "minmax", faults, shed=False)
    assert report.policy_faults == 3
    assert report.served == report.arrivals
    assert gateway.allocator.reserved_pages == 0


def test_overload_sheds_infeasible_arrivals_at_the_door():
    config = scenario_config(family="mix")

    async def scenario():
        gateway = LiveGateway(
            config, "max", time_scale=0.01, shed_overload=True
        )
        schedule = build_schedule(
            config, gateway.dataplane.database, max_arrivals=6
        )
        await gateway.start()
        try:
            now = gateway.sim_now()
            feasible = replace(
                schedule.arrivals[0], arrival=now, deadline=now + 1000.0
            )
            job = gateway.submit(feasible)
            assert job.state != "shed"
            for arrival in schedule.arrivals[1:]:
                # Deadline below the query's own stand-alone time:
                # infeasible even with an idle server.
                doomed = replace(
                    arrival,
                    arrival=now,
                    deadline=now + arrival.standalone * 0.5,
                )
                shed_job = gateway.submit(doomed)
                assert shed_job.state == "shed"
            await gateway.drain()
        finally:
            await gateway.close()
        return gateway

    gateway = asyncio.run(scenario())
    report = gateway.report
    assert report.shed == 5
    assert report.served == 1
    assert report.arrivals == 6
    assert report.served + report.shed == report.arrivals
    # Shed queries never touched the broker or the ledger.
    assert gateway.broker.present_count == 0
    assert gateway.allocator.reserved_pages == 0


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def write_crashed_journal(path, config, arrivals=4):
    """Run a gateway with a journal and 'crash' with queries in flight:
    the recorder stops (process death) before any release is recorded."""

    async def scenario():
        recorder = JournalRecorder.for_policy(path, "pmm", config)
        gateway = LiveGateway(
            config, "pmm", time_scale=0.01, recorder=recorder
        )
        schedule = build_schedule(
            config, gateway.dataplane.database, max_arrivals=arrivals
        )
        await gateway.start()
        now = gateway.sim_now()
        qids = []
        for arrival in schedule.arrivals:
            job = gateway.submit(
                replace(arrival, arrival=now, deadline=now + 1000.0)
            )
            qids.append(job.arrival.qid)
        # The SIGKILL lands here: the journal stops dead while every
        # query still holds its broker entry (and possibly a grant).
        recorder.close()
        gateway.broker.recorder = None
        await gateway.close()
        return qids

    return asyncio.run(scenario())


def test_journal_recovery_replays_to_a_conserved_ledger(tmp_path):
    config = scenario_config(family="mix")
    journal = tmp_path / "broker.jsonl"
    qids = write_crashed_journal(journal, config)

    ledger = recover_journal(journal)
    assert ledger.clean
    assert ledger.released == tuple(sorted(qids))
    assert ledger.final_allocation == ()
    assert ledger.decisions_replayed >= len(qids)  # one per arrival
    assert "ledger conserved" in ledger.render()


def test_journal_tolerates_a_torn_final_line(tmp_path):
    config = scenario_config(family="mix")
    journal = tmp_path / "broker.jsonl"
    write_crashed_journal(journal, config)
    with open(journal, "a", encoding="utf-8") as fh:
        fh.write('["register", 99, "C0"')  # the write the kill cut short

    header, ops = load_journal(journal)
    assert header is not None
    assert all(op[1] != 99 for op in ops if op[0] == "register")
    assert recover_journal(journal).clean


def test_journal_rejects_corruption_before_the_tail(tmp_path):
    journal = tmp_path / "broker.jsonl"
    journal.write_text(
        json.dumps({"header": {"policy": "max"}})
        + "\nnot json at all\n[]\n",
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="corrupt journal"):
        load_journal(journal)


def test_recovered_decisions_are_verified_against_the_journal(tmp_path):
    """Replay divergence (a tampered decision record) is an error, not
    a silently wrong ledger."""
    config = scenario_config(family="mix")
    journal = tmp_path / "broker.jsonl"
    write_crashed_journal(journal, config)

    lines = journal.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        record = json.loads(line)
        if isinstance(record, list) and record[0] == "decision" and record[1]:
            record[1][0][1] += 1  # someone else's pages, apparently
            lines[index] = json.dumps(record)
            break
    else:  # pragma: no cover - the crash run always decides something
        pytest.fail("no non-empty decision recorded")
    journal.write_text("\n".join(lines) + "\n", encoding="utf-8")

    with pytest.raises(ValueError, match="diverged"):
        recover_journal(journal)
