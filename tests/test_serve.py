"""The live serving layer: allocator enforcement, schedule parity with
the simulator, the asyncio gateway end to end, and the TCP server."""

import asyncio
import json

import pytest

from repro import RTDBSystem
from repro.scenarios import ScenarioGenerator
from repro.serve.dataplane import (
    GrantOversubscribedError,
    LiveDataPlane,
    PageStore,
    TrackedAllocator,
)
from repro.serve.gateway import LiveGateway, PriorityWorkerGate, run_live
from repro.serve.workload import build_schedule


def scenario_config(family="mix", index=0, seed=0):
    return ScenarioGenerator(seed).generate(family, index).config


# ----------------------------------------------------------------------
# grant enforcement
# ----------------------------------------------------------------------
def test_allocator_tracks_holdings():
    allocator = TrackedAllocator(100)
    allocator.apply({1: 40, 2: 60})
    assert allocator.reserved_pages == 100
    assert allocator.free_pages == 0
    assert allocator.holding(1) == 40
    allocator.release(1)
    assert allocator.reserved_pages == 60
    allocator.apply({2: 10})  # a full vector replaces the ledger
    assert allocator.holding(2) == 10


def test_allocator_rejects_oversubscription():
    allocator = TrackedAllocator(100)
    with pytest.raises(GrantOversubscribedError):
        allocator.apply({1: 70, 2: 40})


def test_allocator_rejects_negative_grants():
    allocator = TrackedAllocator(100)
    with pytest.raises(GrantOversubscribedError):
        allocator.apply({1: -5})


# ----------------------------------------------------------------------
# the page store
# ----------------------------------------------------------------------
def test_page_store_deterministic_content_and_roundtrip():
    store = PageStore(disk=0, payload_bytes=64)
    first = store.read(10, 3)
    assert len(first) == 3 * 64
    assert store.read(10, 3) == first  # unwritten pages are stable
    assert first != store.read(13, 3)  # distinct pages, distinct bytes
    store.write(10, b"x" * 64)
    assert store.read(10, 1) == b"x" * 64
    assert store.pages_written == 1
    assert store.pages_read == 10


# ----------------------------------------------------------------------
# schedule parity with the simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "family",
    ["mix", "bursty", "phases", "multitenant", "heavytail", "memorythief"],
)
def test_schedule_matches_simulator_arrivals(family):
    config = scenario_config(family=family, index=0)
    result = RTDBSystem(config, "max").run()
    plane = LiveDataPlane(config)
    schedule = build_schedule(config, plane.database)
    assert len(schedule.arrivals) == result.arrivals
    # Deadlines are feasible and strictly ordered per query.
    for arrival in schedule.arrivals:
        assert arrival.deadline > arrival.arrival
        assert arrival.standalone > 0


def test_schedule_is_deterministic_and_capped():
    config = scenario_config()
    plane = LiveDataPlane(config)
    first = build_schedule(config, plane.database)
    second = build_schedule(config, plane.database)
    assert [a.qid for a in first.arrivals] == [a.qid for a in second.arrivals]
    assert [a.deadline for a in first.arrivals] == [
        a.deadline for a in second.arrivals
    ]
    capped = build_schedule(config, plane.database, max_arrivals=5)
    assert len(capped.arrivals) == 5
    assert [a.qid for a in capped.arrivals] == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# the ED worker gate
# ----------------------------------------------------------------------
def test_priority_gate_serves_most_urgent_waiter_first():
    async def scenario():
        gate = PriorityWorkerGate(1)
        await gate.acquire(priority=1.0)  # occupy the only slot
        order = []

        async def waiter(priority):
            await gate.acquire(priority)
            order.append(priority)
            gate.release()

        tasks = [
            asyncio.create_task(waiter(p)) for p in (30.0, 10.0, 20.0)
        ]
        await asyncio.sleep(0)  # all three enqueue
        gate.release()  # hand the slot to the most urgent
        await asyncio.gather(*tasks)
        return order

    assert asyncio.run(scenario()) == [10.0, 20.0, 30.0]


def test_priority_gate_recovers_slot_from_cancelled_handoff():
    """Regression: a waiter cancelled in the same loop pass its slot is
    handed over must give the slot back, not leak it."""

    async def scenario():
        gate = PriorityWorkerGate(1)
        await gate.acquire(1.0)

        async def waiter():
            await gate.acquire(2.0)
            gate.release()  # pragma: no cover - the waiter is cancelled

        blocked = asyncio.create_task(waiter())
        await asyncio.sleep(0)  # the waiter enqueues
        gate.release()  # hands the slot to the waiter's future...
        blocked.cancel()  # ...which is cancelled before it resumes
        try:
            await blocked
        except asyncio.CancelledError:
            pass
        # The slot must be available again.
        await asyncio.wait_for(gate.acquire(3.0), timeout=1.0)
        return True

    assert asyncio.run(scenario())


# ----------------------------------------------------------------------
# the gateway end to end
# ----------------------------------------------------------------------
def test_live_replay_serves_every_query():
    config = scenario_config()
    report = asyncio.run(
        run_live(
            config,
            "minmax",
            time_scale=0.005,
            max_arrivals=40,
            invariants=True,
        )
    )
    assert report.arrivals == 40
    assert report.served == 40  # firm deadlines: every query departs
    assert 0.0 <= report.miss_ratio <= 1.0
    assert report.decisions >= 80  # one per arrival + one per departure
    assert report.observed_mpl > 0.0
    assert report.pages_read > 0
    assert sum(s.served for s in report.per_class.values()) == 40


def test_live_gateway_releases_all_grants():
    config = scenario_config(family="heavytail", index=0)

    async def scenario():
        gateway = LiveGateway(config, "pmm", time_scale=0.005, invariants=True)
        schedule = build_schedule(
            config, gateway.dataplane.database, max_arrivals=25
        )
        report = await gateway.run_schedule(schedule)
        return gateway, report

    gateway, report = asyncio.run(scenario())
    assert report.served == 25
    assert gateway.allocator.reserved_pages == 0  # every grant returned
    assert gateway.broker.present_count == 0
    assert gateway.broker.departures == 25


def test_hopeless_deadline_is_aborted_and_counted_missed():
    config = scenario_config()

    async def scenario():
        gateway = LiveGateway(config, "max", time_scale=0.02)
        schedule = build_schedule(config, gateway.dataplane.database, max_arrivals=1)
        await gateway.start()
        arrival = schedule.arrivals[0]
        # Rewrite the deadline to something unmeetable (1 ms of slack).
        from dataclasses import replace

        doomed = replace(
            arrival, arrival=gateway.sim_now(), deadline=gateway.sim_now() + 0.05
        )
        gateway.submit(doomed)
        await gateway.drain()
        await gateway.close()
        return gateway

    gateway = asyncio.run(scenario())
    assert gateway.report.served == 1
    assert gateway.report.missed == 1
    assert gateway.allocator.reserved_pages == 0


def test_broken_policy_fails_the_live_run_loudly():
    """Regression: an oversubscribing decision made on a departure path
    (an asyncio task, no awaiter) must surface through drain(), not be
    swallowed by the event loop while the run hangs or 'passes'."""
    from dataclasses import replace

    from repro.core.allocation import allocate_minmax
    from repro.policies.base import MemoryPolicy

    class LateBrokenPolicy(MemoryPolicy):
        name = "LateBroken"

        def __init__(self):
            self.calls = 0

        def allocate(self, demands, memory, now=0.0):
            self.calls += 1
            if self.calls >= 3 and demands:
                return {demands[0].qid: 2 * memory}  # oversubscribe
            return allocate_minmax(demands, memory)

    config = scenario_config()

    async def scenario():
        gateway = LiveGateway(config, LateBrokenPolicy(), time_scale=0.01)
        schedule = build_schedule(config, gateway.dataplane.database, max_arrivals=2)
        await gateway.start()
        try:
            now = gateway.sim_now()
            for arrival in schedule.arrivals:
                gateway.submit(
                    replace(arrival, arrival=now, deadline=now + 1000.0)
                )
            await gateway.drain()  # decision 3 fires on the departure path
        finally:
            await gateway.close()

    with pytest.raises(GrantOversubscribedError):
        asyncio.run(scenario())


# ----------------------------------------------------------------------
# the TCP server
# ----------------------------------------------------------------------
def test_server_submission_roundtrip():
    config = scenario_config()

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(config, "minmax", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                json.dumps(
                    {"op": "submit", "type": "sort", "pages": 12, "slack": 50.0}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            submit_response = json.loads(await reader.readline())
            writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
            await writer.drain()
            stats_response = json.loads(await reader.readline())
        finally:
            writer.close()
            await server.close()
        return submit_response, stats_response

    submitted, stats = asyncio.run(scenario())
    assert submitted["admitted"] is True
    assert submitted["missed"] is False
    assert submitted["qid"] == 0
    assert stats["served"] == 1
    assert stats["policy"] == "MinMax"


def test_server_multi_tenant_roundtrip_and_drain():
    """Two concurrent TCP tenants share one gateway (one broker, one
    pool, one disk farm); per-tenant stats must conserve and shutdown
    must drain gracefully."""
    from repro.scenarios import ScenarioGenerator
    from repro.serve.server import LiveServer
    from repro.serve.shootout import find_multitenant_scenario

    scenario = find_multitenant_scenario(ScenarioGenerator(0), 2)

    async def tenant(host, port, name, submissions):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                json.dumps({"op": "hello", "tenant": name}).encode() + b"\n"
            )
            await writer.drain()
            hello = json.loads(await reader.readline())
            responses = []
            for _ in range(submissions):
                writer.write(
                    json.dumps(
                        {"op": "submit", "type": "sort", "pages": 8, "slack": 30.0}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            return hello, responses
        finally:
            writer.close()

    async def scenario_run():
        gateway = LiveGateway(scenario.config, "pmm", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        results = await asyncio.gather(
            tenant(host, port, "acme", 2), tenant(host, port, "globex", 2)
        )
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
        await writer.drain()
        stats = json.loads(await reader.readline())
        writer.close()
        await server.close()
        return server, gateway, results, stats

    server, gateway, results, stats = asyncio.run(scenario_run())
    (acme_hello, acme), (globex_hello, globex) = results
    # Tenants map onto distinct per-tenant scenario classes.
    assert {acme_hello["class"], globex_hello["class"]} == {
        "tenant0",
        "tenant1",
    }
    for name, responses in (("acme", acme), ("globex", globex)):
        assert all(r["tenant"] == name for r in responses)
    per_tenant = stats["per_tenant"]
    assert set(per_tenant) == {"acme", "globex"}
    assert all(entry["served"] == 2 for entry in per_tenant.values())
    assert stats["served"] == 4
    assert 0.0 <= stats["pool_hit_ratio"] <= 1.0
    assert stats["disk_busy_s"] > 0.0
    # Graceful drain left nothing behind.
    assert server.draining
    assert gateway.broker.present_count == 0
    assert gateway.allocator.reserved_pages == 0


def test_server_refuses_submissions_while_draining():
    config = scenario_config()

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(config, "max", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        await server.close()
        response = await server._dispatch({"op": "submit", "pages": 4})
        return response  # pragma: no cover - _dispatch raises

    with pytest.raises(ValueError, match="draining"):
        asyncio.run(scenario())


def test_server_rejects_malformed_submissions():
    config = scenario_config()

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(config, "max", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                json.dumps({"op": "submit", "type": "sort", "pages": -3}).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
        finally:
            writer.close()
            await server.close()
        return response

    assert "error" in asyncio.run(scenario())


# ----------------------------------------------------------------------
# hostile-client hardening
# ----------------------------------------------------------------------
async def _served_lines(server_factory, *lines):
    """Feed raw lines to a fresh server; returns the parsed responses
    plus a final stats response proving the connection loop survived."""
    server, gateway = server_factory()
    host, port = await server.start(port=0)
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for line in lines:
            writer.write(line)
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
        writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
        await writer.drain()
        responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await server.close()
    return responses


def _make_server():
    from repro.serve.server import LiveServer

    gateway = LiveGateway(scenario_config(), "max", time_scale=0.01)
    return LiveServer(gateway), gateway


def test_server_survives_malformed_json():
    responses = asyncio.run(
        _served_lines(_make_server, b"this is not json\n")
    )
    assert "malformed JSON" in responses[0]["error"]
    assert responses[-1]["policy"] == "Max"  # the loop kept serving


def test_server_survives_non_object_json():
    responses = asyncio.run(_served_lines(_make_server, b"[1, 2, 3]\n"))
    assert responses[0]["error"] == "request must be a JSON object"
    assert responses[-1]["policy"] == "Max"


def test_server_oversized_line_gets_an_error_then_close():
    config = scenario_config()

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(config, "max", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            # Over the stream reader's 64 KiB line limit: framing is
            # unrecoverable, so one structured error, then EOF.
            writer.write(b"x" * 100_000 + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            trailing = await reader.read()
        finally:
            writer.close()
            await server.close()
        return response, trailing

    response, trailing = asyncio.run(scenario())
    assert response == {"error": "request line too long"}
    assert trailing == b""  # the server closed the ruined connection


def test_server_disconnect_cancels_query_and_releases_grant():
    config = scenario_config()

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(config, "max", time_scale=0.05)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            json.dumps(
                {"op": "submit", "type": "sort", "pages": 40, "slack": 1000.0}
            ).encode()
            + b"\n"
        )
        await writer.drain()
        # Wait until the query is genuinely in flight, then vanish
        # without ever reading the response.
        for _ in range(200):
            if gateway.broker.present_count:
                break
            await asyncio.sleep(0.005)
        assert gateway.broker.present_count == 1
        writer.close()
        for _ in range(200):
            if not gateway.broker.present_count:
                break
            await asyncio.sleep(0.005)
        await server.close()
        return gateway

    gateway = asyncio.run(scenario())
    assert gateway.report.client_cancels == 1
    assert gateway.broker.present_count == 0
    assert gateway.allocator.reserved_pages == 0
    assert gateway.report.served == 1  # departed (as a miss), not lost
    assert gateway.report.missed == 1


# ----------------------------------------------------------------------
# front-end lifecycle regressions
# ----------------------------------------------------------------------
def test_submit_failure_does_not_leak_waiter():
    """A ``gateway.submit`` that raises mid-dispatch must not leave the
    qid's departure waiter behind: nothing would ever pop it, and the
    map would grow by one dead future per failed submission."""

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(scenario_config(), "max", time_scale=0.01)
        server = LiveServer(gateway)
        host, port = await server.start(port=0)

        def exploding_submit(arrival):
            raise RuntimeError("broker on fire")

        gateway.submit = exploding_submit
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                json.dumps(
                    {"op": "submit", "type": "sort", "pages": 8, "slack": 30.0}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
        finally:
            writer.close()
        waiters = dict(server._waiters)
        await server.close()
        return response, waiters

    response, waiters = asyncio.run(scenario())
    assert "broker on fire" in response["error"]
    assert waiters == {}  # the failed submit cleaned up after itself


def test_server_close_is_idempotent():
    """Repeated and concurrent ``close()`` calls drain the gateway
    exactly once; late callers wait for the first drain instead of
    re-draining a closed gateway."""

    async def scenario():
        from repro.serve.server import LiveServer

        gateway = LiveGateway(scenario_config(), "max", time_scale=0.01)
        server = LiveServer(gateway)
        await server.start(port=0)
        closes = {"count": 0}
        original = gateway.close

        async def counted_close():
            closes["count"] += 1
            await original()

        gateway.close = counted_close
        await asyncio.gather(server.close(), server.close())
        await server.close()
        return closes["count"]

    assert asyncio.run(scenario()) == 1


def test_tenant_class_mapping_is_precomputed():
    """``tenant_class`` sits on the submit path: the class tables are
    computed once at construction, never re-derived from the config."""
    from repro.serve.server import LiveServer

    gateway = LiveGateway(scenario_config(), "max", time_scale=0.01)
    server = LiveServer(gateway)
    names = [qc.name for qc in gateway.config.workload.classes]
    # A tenant named after a scenario class keeps that class.
    assert server.tenant_class(names[0]) == names[0]
    # Sabotage the config: lookups must keep working off the
    # precomputed tables (the regression rebuilt a set from the config
    # for every unseen tenant).
    gateway.config = None
    first = server.tenant_class("acme")
    assert first in names
    assert server.tenant_class("acme") == first  # sticky
    assert server.tenant_class("globex") in names


def test_server_echoes_request_tags():
    """Any request may carry a ``tag``; the response echoes it (the
    router multiplexes out-of-order submit responses on this)."""
    responses = asyncio.run(
        _served_lines(
            _make_server,
            json.dumps({"op": "stats", "tag": 7}).encode() + b"\n",
            json.dumps({"op": "bogus", "tag": "t-1"}).encode() + b"\n",
        )
    )
    assert responses[0]["tag"] == 7
    assert responses[0]["policy"] == "Max"
    assert responses[1]["tag"] == "t-1"  # errors are tagged too
    assert "error" in responses[1]
    assert "tag" not in responses[-1]  # untagged requests stay untagged
