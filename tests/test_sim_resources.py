"""Unit tests for the preemptive-resume priority server (the CPU)."""

import pytest

from repro.sim import PreemptiveServer, Simulator


def make_server(rate=1.0):
    sim = Simulator()
    return sim, PreemptiveServer(sim, rate=rate, name="test")


def test_single_request_takes_work_over_rate():
    sim, server = make_server(rate=2.0)
    done = []
    request = server.submit(work=10.0, priority=1.0)
    request.callbacks.append(lambda evt: done.append(sim.now))
    sim.run()
    assert done == [5.0]


def test_zero_work_completes_immediately():
    sim, server = make_server()
    request = server.submit(work=0.0, priority=1.0)
    assert request.triggered
    sim.run()


def test_negative_work_rejected():
    _sim, server = make_server()
    with pytest.raises(ValueError):
        server.submit(work=-1.0, priority=1.0)


def test_lower_priority_waits_for_higher():
    sim, server = make_server()
    finish = {}
    first = server.submit(work=10.0, priority=1.0)
    second = server.submit(work=5.0, priority=2.0)
    first.callbacks.append(lambda evt: finish.setdefault("first", sim.now))
    second.callbacks.append(lambda evt: finish.setdefault("second", sim.now))
    sim.run()
    assert finish == {"first": 10.0, "second": 15.0}


def test_preemption_pauses_and_resumes_without_losing_work():
    sim, server = make_server()
    finish = {}

    def submit_low():
        low = server.submit(work=10.0, priority=5.0)
        low.callbacks.append(lambda evt: finish.setdefault("low", sim.now))

    def submit_high():
        yield sim.timeout(4.0)
        high = server.submit(work=2.0, priority=1.0)
        high.callbacks.append(lambda evt: finish.setdefault("high", sim.now))

    submit_low()
    sim.process(submit_high())
    sim.run()
    # Low runs 4s (6 units left), high runs 4..6, low resumes 6..12.
    assert finish == {"high": 6.0, "low": 12.0}


def test_equal_priority_is_fifo():
    sim, server = make_server()
    order = []
    first = server.submit(work=3.0, priority=1.0)
    second = server.submit(work=3.0, priority=1.0)
    first.callbacks.append(lambda evt: order.append("first"))
    second.callbacks.append(lambda evt: order.append("second"))
    sim.run()
    assert order == ["first", "second"]


def test_cancel_queued_request():
    sim, server = make_server()
    done = []
    server.submit(work=10.0, priority=1.0)
    queued = server.submit(work=10.0, priority=2.0)
    queued.callbacks.append(lambda evt: done.append("queued"))
    server.cancel(queued)
    sim.run()
    assert done == []
    assert queued.cancelled


def test_cancel_in_service_request_advances_queue():
    sim, server = make_server()
    finish = {}
    running = server.submit(work=100.0, priority=1.0)
    waiting = server.submit(work=5.0, priority=2.0)
    waiting.callbacks.append(lambda evt: finish.setdefault("waiting", sim.now))
    server.cancel(running)
    sim.run()
    assert finish == {"waiting": 5.0}


def test_busy_fraction_tracked():
    sim, server = make_server()
    server.submit(work=3.0, priority=1.0)

    def later():
        yield sim.timeout(6.0)
        server.submit(work=2.0, priority=1.0)

    sim.process(later())
    sim.run(until=10.0)
    # Busy 0..3 and 6..8 over a 10s horizon.
    assert server.busy.mean() == pytest.approx(0.5)


def test_rate_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        PreemptiveServer(sim, rate=0.0)


def test_queue_length_excludes_in_service():
    sim, server = make_server()
    server.submit(work=10.0, priority=1.0)
    server.submit(work=10.0, priority=2.0)
    server.submit(work=10.0, priority=3.0)
    assert server.queue_length == 2
    sim.run()
    assert server.queue_length == 0
