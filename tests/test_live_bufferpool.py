"""The shared live data plane: buffer-pool ledger conservation (via the
InvariantChecker), LRU hit-ratio monotonicity vs pool size, per-disk
ED+elevator scheduling and chunk conservation under concurrent access,
and determinism of the multi-tenant live shootout at a fixed seed."""

import asyncio

import pytest

from repro.core.broker import MemoryBroker
from repro.policies import make_policy
from repro.rtdbs.config import ResourceParams
from repro.rtdbs.invariants import InvariantChecker, InvariantViolation
from repro.serve.dataplane import (
    GrantOversubscribedError,
    LiveBufferPool,
    LiveDisk,
    PageStore,
    TrackedAllocator,
)


def make_pool(total_pages=100):
    return LiveBufferPool(TrackedAllocator(total_pages))


# ----------------------------------------------------------------------
# ledger conservation (InvariantChecker on the live pool)
# ----------------------------------------------------------------------
def test_pool_ledger_checked_by_invariants():
    pool = make_pool(100)
    broker = MemoryBroker(make_policy("minmax"), 100, sample_size=10)
    checker = InvariantChecker().attach_broker(broker, pool=pool)
    assert pool.invariants is checker

    pool.apply({1: 40, 2: 30})
    assert pool.reserved_pages == 70
    assert pool.free_pages == 30
    assert pool.cache.capacity == 30  # LRU region = unreserved remainder
    pool.release(1)
    assert pool.cache.capacity == 70
    assert checker.checks["buffers"] == 2  # one check per ledger update

    checker.detach()
    assert pool.invariants is None
    assert broker.invariants is None


def test_pool_ledger_corruption_raises():
    pool = make_pool(100)
    broker = MemoryBroker(make_policy("minmax"), 100, sample_size=10)
    checker = InvariantChecker().attach_broker(broker, pool=pool)
    pool.apply({1: 40})
    # Corrupt the LRU capacity law behind the pool's back.
    pool.cache.capacity = 99
    with pytest.raises(InvariantViolation):
        checker.check_buffers(pool)
    assert checker.failures


def test_pool_apply_enforces_conservation_before_caching():
    pool = make_pool(50)
    with pytest.raises(GrantOversubscribedError):
        pool.apply({1: 30, 2: 30})
    assert pool.reserved_pages == 0  # nothing installed
    assert pool.cache.capacity == 50


def test_pool_reservations_evict_cached_pages():
    pool = make_pool(10)
    pool.install(0, 0, 10)
    assert len(pool.cache) == 10
    pool.apply({1: 7})  # the LRU region shrinks under the reservation
    assert pool.cache.capacity == 3
    assert len(pool.cache) == 3


# ----------------------------------------------------------------------
# hit-ratio monotonicity vs pool size (LRU inclusion property)
# ----------------------------------------------------------------------
def access_trace(seed=7, length=400):
    """A reproducible mix of scans and re-reads over two disks."""
    import numpy as np

    rng = np.random.default_rng(seed)
    trace = []
    for _ in range(length):
        disk = int(rng.integers(0, 2))
        start = int(rng.integers(0, 40))
        npages = int(rng.integers(1, 5))
        trace.append((disk, start, npages))
    return trace


@pytest.mark.parametrize("trace_seed", [7, 11])
def test_hit_ratio_monotone_in_pool_size(trace_seed):
    trace = access_trace(seed=trace_seed)
    hits = []
    for capacity in (4, 8, 16, 32, 64, 128):
        pool = make_pool(capacity)
        for disk, start, npages in trace:
            if not pool.read_hit(disk, start, npages):
                pool.install(disk, start, npages)
        hits.append(pool.hits)
    assert hits == sorted(hits), (
        f"LRU is a stack algorithm: hits must be nondecreasing in pool "
        f"size, got {hits}"
    )
    assert hits[-1] > hits[0] > 0  # the sweep actually exercised reuse


# ----------------------------------------------------------------------
# per-disk ED+elevator scheduling and chunk conservation
# ----------------------------------------------------------------------
def live_disk():
    return LiveDisk(PageStore(0), ResourceParams(num_disks=1, memory_pages=16))


def test_disk_serves_most_urgent_chunk_first():
    """The live disk honours Earliest-Deadline order, as the DES does:
    chunks submitted later but with tighter deadlines overtake."""

    async def scenario():
        disk = live_disk()
        order = []

        async def chunk(tag, priority, hold):
            await disk.acquire(priority)
            try:
                order.append(tag)
                await asyncio.sleep(hold)
            finally:
                disk.release()

        first = asyncio.create_task(chunk("a", 5.0, 0.01))
        await asyncio.sleep(0.002)  # "a" holds the arm
        tasks = [
            asyncio.create_task(chunk(tag, priority, 0.0))
            for tag, priority in (("patient", 30.0), ("urgent", 1.0), ("mid", 10.0))
        ]
        await asyncio.gather(first, *tasks)
        return disk, order

    disk, order = asyncio.run(scenario())
    assert order == ["a", "urgent", "mid", "patient"]  # ED, not FIFO
    assert disk.chunks_submitted == 4
    assert disk.chunks_served == 0  # the gateway counts served chunks
    assert disk.chunks_cancelled == 0
    assert disk.queue_depth == 0
    assert not disk.in_service
    assert disk.queue_seconds > 0.0


def test_disk_elevator_breaks_priority_ties():
    """Equal-deadline chunks are served in elevator order: nearest
    cylinder in the sweep direction first."""

    async def scenario():
        disk = live_disk()
        head = disk.core.head
        cyl_size = disk.core._cylinder_size
        order = []

        async def chunk(tag, cylinder):
            await disk.acquire(7.0, cylinder)
            order.append(tag)
            disk.release()

        await disk.acquire(7.0)  # hold the arm while the tie builds
        # All three tie on priority; the sweep direction is +1, so the
        # nearest cylinder at-or-ahead of the head must win.
        tasks = [
            asyncio.create_task(chunk(tag, cylinder))
            for tag, cylinder in (
                ("far-ahead", head + 40),
                ("behind", head - 10),
                ("near-ahead", head + 4),
            )
        ]
        await asyncio.sleep(0)  # all three enqueue
        disk.release()
        await asyncio.gather(*tasks)
        assert cyl_size > 0  # geometry sanity (core is configured)
        return order

    order = asyncio.run(scenario())
    assert order[0] == "near-ahead"
    assert order == ["near-ahead", "far-ahead", "behind"]


def test_disk_honours_ed_under_cancellation():
    """A cancelled queued chunk must neither be served nor lose the
    conservation law, and the remaining chunks still run in ED order."""

    async def scenario():
        disk = live_disk()
        order = []

        async def chunk(tag, priority):
            await disk.acquire(priority)
            order.append(tag)
            disk.release()

        await disk.acquire(1.0)  # occupy the arm
        doomed = asyncio.create_task(chunk("doomed", 2.0))
        survivors = [
            asyncio.create_task(chunk(tag, priority))
            for tag, priority in (("late", 20.0), ("early", 5.0))
        ]
        await asyncio.sleep(0)  # all enqueue behind the held arm
        doomed.cancel()
        try:
            await doomed
        except asyncio.CancelledError:
            pass
        disk.release()
        await asyncio.gather(*survivors)
        return disk, order

    disk, order = asyncio.run(scenario())
    assert order == ["early", "late"]  # the cancelled chunk never served
    # Conservation: submitted == served-by-callers + cancelled + queued.
    assert disk.chunks_submitted == 4
    assert disk.chunks_cancelled == 1
    assert disk.queue_depth == 0
    assert not disk.in_service


def test_disk_conserves_chunks_through_cancellation():
    async def scenario():
        disk = live_disk()
        await disk.acquire()  # occupy the arm

        async def waiter():
            await disk.acquire()
            disk.release()  # pragma: no cover - cancelled first

        doomed = asyncio.create_task(waiter())
        await asyncio.sleep(0)  # the waiter enqueues
        doomed.cancel()
        try:
            await doomed
        except asyncio.CancelledError:
            pass
        disk.release()
        # The arm must be free and the cancelled chunk accounted for.
        await asyncio.wait_for(disk.acquire(), timeout=1.0)
        disk.release()
        return disk

    disk = asyncio.run(scenario())
    assert disk.chunks_submitted == 3
    assert disk.chunks_cancelled == 1
    assert disk.queue_depth == 0
    assert not disk.in_service


def test_disk_service_time_tracks_shared_streams():
    disk = live_disk()
    cold = disk.service_time(0, 8)  # seek + rotate + transfer
    warm = disk.service_time(8, 8)  # continues the tracked stream
    assert warm < cold
    assert disk.sequential_continuations == 1
    # A fresh access elsewhere pays positioning again.
    merge = disk.service_time(5000, 8)
    assert merge > warm


def test_disk_prefetch_cache_serves_recent_transfers():
    """Pages just transferred are prefetch-cache hits (no arm time),
    exactly as on the DES disk."""
    disk = live_disk()
    assert not disk.read_hit(0, 8)  # cold: nothing cached yet
    disk.service_time(0, 8)  # the transfer installs pages 0..7
    assert disk.read_hit(0, 8)
    assert disk.cache.hits == 1
    assert not disk.read_hit(8, 8)  # beyond the transferred range


def test_gateway_run_conserves_disk_chunks():
    """After a full live replay every chunk is served or cancelled --
    nothing queued, nothing holding an arm."""
    from repro.scenarios import ScenarioGenerator
    from repro.serve.gateway import LiveGateway
    from repro.serve.workload import build_schedule

    config = ScenarioGenerator(0).generate("mix", 0).config

    async def scenario():
        gateway = LiveGateway(config, "minmax", time_scale=0.005, invariants=True)
        schedule = build_schedule(
            config, gateway.dataplane.database, max_arrivals=30
        )
        report = await gateway.run_schedule(schedule)
        return gateway, report

    gateway, report = asyncio.run(scenario())
    assert report.served == 30
    for disk in gateway.disks:
        assert not disk.in_service
        assert disk.queue_depth == 0
        assert disk.chunks_submitted == disk.chunks_served + disk.chunks_cancelled
    assert report.pool_hits + report.pool_misses > 0
    assert report.disk_busy and sum(report.disk_busy) > 0.0


# ----------------------------------------------------------------------
# multi-tenant shootout determinism
# ----------------------------------------------------------------------
def test_tenant_shootout_served_counts_deterministic():
    from repro.serve.shootout import live_shootout

    def run():
        return live_shootout(
            policies=("max", "minmax"),
            time_scale=0.005,
            max_arrivals=15,
            invariants=True,
            predict=False,
            tenants=2,
        )

    first = run()
    second = run()
    assert first.ok, first.failures
    assert second.ok, second.failures
    for report in (first, second):
        assert report.tenants == 2
        assert len(report.scenario.config.workload.classes) == 2
    for policy in ("max", "minmax"):
        assert (
            first.live[policy].served == second.live[policy].served
        ), "served counts must be deterministic at a fixed seed"
        first_tenants = {
            tenant: stats.served
            for tenant, stats in first.live[policy].per_tenant.items()
        }
        second_tenants = {
            tenant: stats.served
            for tenant, stats in second.live[policy].per_tenant.items()
        }
        assert first_tenants == second_tenants
        assert sum(first_tenants.values()) == first.live[policy].served
