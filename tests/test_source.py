"""Unit tests for the workload Source: arrivals, deadlines, stats."""

import pytest

from repro import RTDBSystem, baseline, multiclass, workload_changes


@pytest.mark.slow
def test_poisson_arrival_rate_roughly_matches():
    # 1200 simulated seconds is the shortest horizon at which the
    # fixed-seed arrival count sits well inside the 15% tolerance
    # (observed relative error ~1.2%; the tolerance is ~3.7 sigma).
    config = baseline(arrival_rate=0.05, scale=0.1, duration=1200.0, seed=21)
    system = RTDBSystem(config, "minmax")
    system.run()
    expected = 0.5 * 1200.0  # scaled rate x horizon
    assert system.source.arrivals == pytest.approx(expected, rel=0.15)


def test_deadlines_use_slack_times_standalone():
    config = baseline(arrival_rate=0.02, scale=0.1, duration=500.0, seed=3)
    system = RTDBSystem(config, "minmax")
    captured = []
    original = system.query_manager.submit

    def spy(job):
        captured.append(job)
        original(job)

    system.query_manager.submit = spy
    system.run()
    assert captured
    low, high = config.workload.classes[0].slack_range
    for job in captured:
        slack = (job.deadline - job.arrival) / job.standalone
        assert low - 1e-9 <= slack <= high + 1e-9


def test_inner_relation_is_smaller_of_the_pair():
    config = baseline(arrival_rate=0.02, scale=0.1, duration=800.0, seed=3)
    system = RTDBSystem(config, "minmax")
    captured = []
    original = system.query_manager.submit
    system.query_manager.submit = lambda job: (captured.append(job), original(job))
    system.run()
    for job in captured:
        operator = job.operator
        assert operator.inner.pages <= operator.outer.pages


@pytest.mark.slow
def test_set_rate_disables_and_reenables_class():
    config = workload_changes(scale=0.1, seed=5, duration=600.0)
    system = RTDBSystem(config, "minmax")
    system.source.set_rate("Small", 0.0)
    system.schedule(300.0, lambda: system.source.set_rate("Small", 1.0))
    result = system.run(duration=600.0)
    small_times = [entry[0] for entry in result.departure_log if entry[1] == "Small"]
    # No Small departures early on (their arrivals only start at 300).
    assert all(time >= 300.0 for time in small_times)


def test_set_rate_unknown_class_rejected():
    config = baseline(arrival_rate=0.05, scale=0.1, duration=100.0)
    system = RTDBSystem(config, "minmax")
    with pytest.raises(KeyError):
        system.source.set_rate("Gigantic", 1.0)


@pytest.mark.slow
def test_per_class_stats_partition_departures():
    config = multiclass(small_rate=0.3, medium_rate=0.05, scale=0.1, duration=800.0, seed=5)
    system = RTDBSystem(config, "minmax")
    result = system.run()
    total = sum(stats.served for stats in result.per_class.values())
    assert total == result.served


def test_reset_statistics_clears_but_keeps_running():
    config = baseline(arrival_rate=0.05, scale=0.1, duration=400.0, seed=5)
    system = RTDBSystem(config, "minmax")
    system.schedule(200.0, system.source.reset_statistics)
    result = system.run()
    assert all(entry[0] >= 200.0 for entry in result.departure_log)
    assert result.served > 0


def test_temp_placement_round_robin_spreads_disks():
    config = baseline(arrival_rate=0.02, scale=0.1, duration=1200.0, seed=3).with_overrides(
        temp_placement="round_robin"
    )
    system = RTDBSystem(config, "minmax")
    captured = []
    original = system.query_manager.submit
    system.query_manager.submit = lambda job: (captured.append(job), original(job))
    system.run()
    temp_disks = {job.operator.temp_disk for job in captured}
    assert len(temp_disks) > 3  # spread over the farm, not one disk
