"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import render_chart


def simple_series():
    return {
        "minmax": [(0.04, 0.01), (0.06, 0.05), (0.08, 0.18)],
        "max": [(0.04, 0.03), (0.06, 0.18), (0.08, 0.40)],
    }


def test_chart_contains_axes_and_legend():
    chart = render_chart(simple_series(), title="Figure 3")
    assert "Figure 3" in chart
    assert "o=max" in chart and "x=minmax" in chart
    assert "+-" in chart  # x axis
    assert "0.4" in chart  # y max label


def test_chart_dimensions():
    chart = render_chart(simple_series(), width=40, height=10)
    body_lines = [line for line in chart.splitlines() if "|" in line]
    assert len(body_lines) == 10
    for line in body_lines:
        assert len(line.split("|", 1)[1]) == 40


def test_markers_placed_for_each_series():
    chart = render_chart(simple_series())
    assert "o" in chart and "x" in chart


def test_single_point_series_renders():
    chart = render_chart({"pmm": [(1.0, 0.5)]})
    assert "+" not in chart.splitlines()[0]  # no crash, title absent
    assert "|" in chart


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        render_chart({})
    with pytest.raises(ValueError):
        render_chart({"a": []})


def test_too_small_rejected():
    with pytest.raises(ValueError):
        render_chart(simple_series(), width=5, height=2)


def test_monotone_series_rises_left_to_right():
    chart = render_chart({"up": [(0.0, 0.0), (1.0, 1.0)]}, width=20, height=10)
    rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
    first_marker_top = rows[0].find("o")
    first_marker_bottom = rows[-1].find("o")
    assert first_marker_top > first_marker_bottom  # high values to the right
