"""ScenarioGenerator: determinism, hashing, family coverage, modulation."""

from dataclasses import replace

import pytest

from repro import RTDBSystem, baseline
from repro.experiments.runner import spec_key
from repro.rtdbs.config import ArrivalModulation
from repro.scenarios import FAMILIES, ScenarioGenerator, scenario_hash


# ----------------------------------------------------------------------
# determinism and identity
# ----------------------------------------------------------------------
def test_same_coordinates_same_scenario():
    first = ScenarioGenerator(seed=7).generate("mix", 3)
    second = ScenarioGenerator(seed=7).generate("mix", 3)
    assert first.config == second.config
    assert first.content_hash == second.content_hash


@pytest.mark.parametrize("family", FAMILIES)
def test_distinct_indices_and_seeds_differ(family):
    generator = ScenarioGenerator(seed=7)
    base = generator.generate(family, 0)
    assert base.content_hash != generator.generate(family, 1).content_hash
    assert base.content_hash != ScenarioGenerator(seed=8).generate(family, 0).content_hash


@pytest.mark.parametrize("family", FAMILIES)
def test_every_family_yields_valid_cacheable_configs(family):
    generator = ScenarioGenerator(seed=1)
    for index in range(3):
        scenario = generator.generate(family, index)
        scenario.config.validate()
        # Plugs into the experiment engine: a stable content-hash key
        # both with and without the invariants setup hook.
        assert len(spec_key(scenario.run_spec("minmax"))) == 64
        assert spec_key(scenario.run_spec("minmax")) != spec_key(
            scenario.run_spec("minmax", invariants=False)
        )
        assert len(scenario.content_hash) == 64


def test_hash_is_config_content_only():
    scenario = ScenarioGenerator(seed=5).generate("bursty", 2)
    assert scenario.content_hash == scenario_hash(scenario.config)
    bumped = scenario.config.with_overrides(seed=scenario.config.seed + 1)
    assert scenario_hash(bumped) != scenario.content_hash


def test_batch_round_robins_families():
    scenarios = ScenarioGenerator(seed=0).batch(len(FAMILIES) * 2)
    assert [s.family for s in scenarios] == list(FAMILIES) * 2
    assert [s.index for s in scenarios] == [0] * len(FAMILIES) + [1] * len(FAMILIES)


def test_unknown_family_rejected():
    generator = ScenarioGenerator(seed=0)
    with pytest.raises(ValueError):
        generator.generate("nosuch", 0)
    with pytest.raises(ValueError):
        generator.batch(3, families=("nosuch",))


def test_family_signatures():
    generator = ScenarioGenerator(seed=3)
    bursty = generator.generate("bursty", 0).config
    assert all(
        cls.modulation is not None and cls.modulation.stochastic
        for cls in bursty.workload.classes
    )
    phases = generator.generate("phases", 0).config
    assert all(
        cls.modulation is not None and not cls.modulation.stochastic
        for cls in phases.workload.classes
    )
    tenants = generator.generate("multitenant", 0).config
    assert len(tenants.workload.classes) >= 2
    # Tenants own disjoint relation groups.
    owned = [set(cls.rel_groups) for cls in tenants.workload.classes]
    for i, groups in enumerate(owned):
        for other in owned[i + 1:]:
            assert not groups & other
    heavy = generator.generate("heavytail", 0).config
    sizes = [group.size_range for group in heavy.database.groups]
    assert max(high for _low, high in sizes) >= 10 * min(low for low, _high in sizes)


# ----------------------------------------------------------------------
# arrival modulation semantics
# ----------------------------------------------------------------------
def test_modulation_validation():
    with pytest.raises(ValueError):
        ArrivalModulation(factors=(1.0,), dwell_seconds=(5.0,)).validate()
    with pytest.raises(ValueError):
        ArrivalModulation(factors=(1.0, -0.1), dwell_seconds=(5.0,)).validate()
    with pytest.raises(ValueError):
        ArrivalModulation(factors=(0.0, 0.0), dwell_seconds=(5.0,)).validate()
    with pytest.raises(ValueError):
        ArrivalModulation(factors=(1.0, 0.5), dwell_seconds=()).validate()
    with pytest.raises(ValueError):
        ArrivalModulation(factors=(1.0, 0.5), dwell_seconds=(0.0,)).validate()
    ArrivalModulation(factors=(2.0, 0.0), dwell_seconds=(5.0, 10.0)).validate()


def _with_modulation(config, modulation):
    cls = replace(config.workload.classes[0], modulation=modulation)
    return config.with_overrides(workload=replace(config.workload, classes=(cls,)))


def test_degenerate_modulation_is_bit_identical():
    """factors == (1, 1) must reproduce the unmodulated arrival stream."""
    base = baseline(arrival_rate=0.3, scale=0.05, seed=3, duration=150.0)
    plain = RTDBSystem(base, "minmax").run()
    modulated = RTDBSystem(
        _with_modulation(
            base,
            ArrivalModulation(
                factors=(1.0, 1.0), dwell_seconds=(7.0,), stochastic=True
            ),
        ),
        "minmax",
    ).run()
    assert modulated.arrivals == plain.arrivals
    assert modulated.served == plain.served
    assert modulated.missed == plain.missed


def test_phase_modulation_gates_arrivals_to_on_windows():
    """factors (1, 0) on a 10 s period: no arrivals inside off windows."""
    base = baseline(arrival_rate=0.5, scale=0.05, seed=9, duration=200.0)
    config = _with_modulation(
        base,
        ArrivalModulation(factors=(1.0, 0.0), dwell_seconds=(10.0,), stochastic=False),
    )
    system = RTDBSystem(config, "minmax")
    arrivals = []
    system.query_manager.departure_listeners.append(
        lambda record: arrivals.append(record.arrival)
    )
    system.run()
    assert arrivals, "the on-phases should produce queries"
    for time in arrivals:
        phase = int(time // 10.0)
        assert phase % 2 == 0, f"arrival at t={time} falls in an off window"


def test_modulated_arrivals_policy_independent():
    """The thinning process must not depend on policy decisions."""
    scenario = ScenarioGenerator(seed=4).generate("bursty", 1)
    counts = {
        policy: RTDBSystem(scenario.config, policy).run().arrivals
        for policy in ("max", "minmax", "pmm")
    }
    assert len(set(counts.values())) == 1, counts
