"""Unit tests for database layout and temp-space allocation."""

import pytest

from repro.rtdbs.config import DatabaseParams, RelationGroup, ResourceParams
from repro.rtdbs.database import Database, TempFile, TempSpace
from repro.sim.rng import Streams


def build(groups, num_disks=4):
    params = DatabaseParams(groups=tuple(groups))
    resources = ResourceParams(num_disks=num_disks, memory_pages=256)
    return Database(params, resources, Streams(11)), resources


# ----------------------------------------------------------------------
# relation sizing and placement
# ----------------------------------------------------------------------
def test_relation_sizes_at_equal_intervals():
    group = RelationGroup(rel_per_disk=5, size_range=(100, 200))
    assert group.relation_sizes() == [100, 125, 150, 175, 200]


def test_single_relation_uses_midpoint():
    group = RelationGroup(rel_per_disk=1, size_range=(100, 200))
    assert group.relation_sizes() == [150]


def test_every_disk_gets_every_group():
    database, resources = build(
        [
            RelationGroup(rel_per_disk=3, size_range=(60, 180)),
            RelationGroup(rel_per_disk=3, size_range=(300, 900)),
        ]
    )
    for disk in range(resources.num_disks):
        on_disk = [rel for rel in database.relations if rel.disk == disk]
        assert len(on_disk) == 6
        assert {rel.group for rel in on_disk} == {0, 1}


def test_relations_on_middle_cylinders():
    database, resources = build([RelationGroup(rel_per_disk=2, size_range=(90, 180))])
    pages_per_disk = resources.pages_per_disk
    for relation in database.relations:
        # Centre of the relation within the middle half of the disk.
        centre = relation.start_page + relation.pages // 2
        assert pages_per_disk * 0.25 < centre < pages_per_disk * 0.75


def test_relations_do_not_overlap():
    database, _resources = build(
        [
            RelationGroup(rel_per_disk=3, size_range=(60, 180)),
            RelationGroup(rel_per_disk=3, size_range=(300, 900)),
        ]
    )
    by_disk = {}
    for relation in database.relations:
        by_disk.setdefault(relation.disk, []).append(relation)
    for relations in by_disk.values():
        spans = sorted((rel.start_page, rel.end_page) for rel in relations)
        for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b


def test_oversized_database_rejected():
    with pytest.raises(ValueError):
        build([RelationGroup(rel_per_disk=2, size_range=(70_000, 70_000))])


def test_pick_relation_uniform_over_group():
    database, _ = build([RelationGroup(rel_per_disk=3, size_range=(60, 180))])
    stream = Streams(5).stream("pick")
    seen = {database.pick_relation(0, stream).rel_id for _ in range(300)}
    assert len(seen) == len(database.by_group[0])


def test_pick_relation_unknown_group():
    database, _ = build([RelationGroup(rel_per_disk=1, size_range=(60, 60))])
    stream = Streams(5).stream("pick")
    with pytest.raises(ValueError):
        database.pick_relation(7, stream)


# ----------------------------------------------------------------------
# temp space
# ----------------------------------------------------------------------
def test_temp_allocate_and_release_roundtrip():
    space = TempSpace(0, [(0, 1000)])
    extent = space.allocate(100)
    assert extent.pages == 100
    assert space.free_pages == 900
    space.release(extent)
    assert space.free_pages == 1000


def test_temp_release_coalesces():
    space = TempSpace(0, [(0, 300)])
    first = space.allocate(100)
    second = space.allocate(100)
    space.release(first)
    space.release(second)
    # One 300-page extent again: a 250-page allocation must succeed.
    extent = space.allocate(250)
    assert not extent.virtual


def test_temp_overflow_served_virtually():
    space = TempSpace(0, [(0, 100)])
    space.allocate(90)
    overflow = space.allocate(50)
    assert overflow.virtual
    assert space.overflow_allocations == 1
    # Virtual extents release without corrupting the free list.
    space.release(overflow)
    assert space.free_pages == 10


def test_temp_allocation_prefers_largest_extent():
    space = TempSpace(0, [(0, 50), (100, 400)])
    extent = space.allocate(60)
    assert extent.start_page >= 100


def test_temp_validates_positive_size():
    space = TempSpace(0, [(0, 100)])
    with pytest.raises(ValueError):
        space.allocate(0)


def test_database_temp_spaces_surround_relations():
    database, resources = build([RelationGroup(rel_per_disk=1, size_range=(900, 900))])
    space = database.temp_space(0)
    relation = [rel for rel in database.relations if rel.disk == 0][0]
    extent = space.allocate(10)
    outside = extent.end_page <= relation.start_page or extent.start_page >= relation.end_page
    assert outside, "temp files must live on the inner or outer cylinders"
