"""Unit tests for the resource-utilisation heuristic and its line fit."""

import pytest

from repro.core.ru_heuristic import RUHeuristic, UtilizationLine


def test_line_predicts_exact_linear_relationship():
    line = UtilizationLine()
    for mpl in (1, 2, 3, 4):
        line.observe(mpl, 0.1 * mpl + 0.05)
    assert line.predict(6) == pytest.approx(0.65)


def test_line_needs_two_distinct_mpls():
    line = UtilizationLine()
    assert line.predict(3) is None
    line.observe(4, 0.5)
    assert line.predict(3) is None
    line.observe(4, 0.6)  # same MPL: slope undefined
    assert line.predict(3) is None
    line.observe(8, 0.9)
    assert line.predict(3) is not None


def test_line_validates_inputs():
    line = UtilizationLine()
    with pytest.raises(ValueError):
        line.observe(0, 0.5)
    with pytest.raises(ValueError):
        line.observe(3, 1.5)


def test_formula_matches_paper():
    # MPL_new = (UtilLow + UtilHigh) / (2 * Util) * MPL_current.
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    # Feed a perfectly linear relationship so the smoothed value equals
    # the raw one.
    heuristic.observe(10, 0.25)
    heuristic.observe(20, 0.50)
    # At MPL 10 the line gives util 0.25:
    # target = (0.70 + 0.85) / (2 * 0.25) * 10 = 31.
    assert heuristic.recommend(10, 0.25) == 31


def test_recommend_reduces_mpl_when_overutilized():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    heuristic.observe(10, 0.95)
    heuristic.observe(20, 0.99)
    target = heuristic.recommend(20, 0.99)
    assert target < 20


def test_recommend_without_line_uses_raw_reading():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    # No observations: falls back on the current reading (0.31).
    assert heuristic.recommend(4, 0.31) == 10  # 0.775/0.31*4 = 10.0


def test_growth_is_capped():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    target = heuristic.recommend(2, 0.001)  # near-idle system
    assert target <= 2 * heuristic.MAX_GROWTH


def test_target_at_least_one():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    assert heuristic.recommend(1, 1.0) >= 1


def test_in_desirable_range():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    assert heuristic.in_desirable_range(0.75)
    assert not heuristic.in_desirable_range(0.5)
    assert not heuristic.in_desirable_range(0.9)


def test_reset_clears_line():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    heuristic.observe(5, 0.4)
    heuristic.observe(10, 0.8)
    heuristic.reset()
    assert heuristic.line.count == 0


def test_bad_range_rejected():
    with pytest.raises(ValueError):
        RUHeuristic(util_low=0.9, util_high=0.8)
    with pytest.raises(ValueError):
        RUHeuristic(util_low=0.0, util_high=0.8)


def test_recommend_validates_mpl():
    heuristic = RUHeuristic(util_low=0.70, util_high=0.85)
    with pytest.raises(ValueError):
        heuristic.recommend(0, 0.5)
