"""Unit tests for the miss-ratio projection (quadratic fit + typing)."""

import numpy as np
import pytest

from repro.core.projection import CurveType, MissRatioProjection


def feed(projection, points):
    for mpl, miss in points:
        projection.observe(mpl, miss)


def test_insufficient_data_below_three_distinct_mpls():
    projection = MissRatioProjection()
    feed(projection, [(5, 0.2), (5, 0.25)])
    result = projection.project()
    assert result.curve_type is CurveType.INSUFFICIENT
    assert result.target is None


def test_exact_quadratic_recovered():
    projection = MissRatioProjection()
    # miss = 0.01*(mpl - 10)^2 + 0.05 : bowl with minimum at 10.
    for mpl in (4, 6, 8, 12, 14, 16):
        projection.observe(mpl, 0.01 * (mpl - 10) ** 2 + 0.05)
    a, b, c = projection.fit()
    assert a == pytest.approx(0.01, abs=1e-9)
    assert b == pytest.approx(-0.2, abs=1e-9)
    assert c == pytest.approx(1.05, abs=1e-9)


def test_bowl_targets_vertex():
    projection = MissRatioProjection()
    for mpl in (4, 8, 10, 12, 16):
        projection.observe(mpl, 0.01 * (mpl - 9) ** 2 + 0.1)
    result = projection.project()
    assert result.curve_type is CurveType.BOWL
    assert result.target == 9


def test_decreasing_curve_probes_one_above_max_tried():
    projection = MissRatioProjection()
    # Strictly decreasing over the tried range: vertex beyond it.
    for mpl, miss in [(2, 0.9), (4, 0.6), (6, 0.4)]:
        projection.observe(mpl, miss)
    result = projection.project()
    assert result.curve_type is CurveType.DECREASING
    assert result.target == 7


def test_increasing_curve_probes_one_below_min_tried():
    projection = MissRatioProjection()
    for mpl, miss in [(5, 0.2), (7, 0.5), (9, 0.9)]:
        projection.observe(mpl, miss)
    result = projection.project()
    assert result.curve_type is CurveType.INCREASING
    assert result.target == 4


def test_increasing_target_never_below_one():
    projection = MissRatioProjection()
    for mpl, miss in [(1, 0.2), (2, 0.5), (3, 0.9)]:
        projection.observe(mpl, miss)
    result = projection.project()
    assert result.curve_type is CurveType.INCREASING
    assert result.target == 1


def test_hill_shape_fails_over_to_heuristic():
    projection = MissRatioProjection()
    # Interior maximum: a < 0 with vertex inside the tried range.
    for mpl in (2, 5, 8, 11):
        projection.observe(mpl, -0.01 * (mpl - 6) ** 2 + 0.5)
    result = projection.project()
    assert result.curve_type is CurveType.HILL
    assert result.target is None


def test_noisy_bowl_still_found():
    rng = np.random.default_rng(42)
    projection = MissRatioProjection()
    for _ in range(200):
        mpl = float(rng.integers(2, 20))
        miss = 0.004 * (mpl - 11) ** 2 + 0.1 + rng.normal(0, 0.02)
        projection.observe(mpl, float(np.clip(miss, 0.0, 1.0)))
    result = projection.project()
    assert result.curve_type is CurveType.BOWL
    assert 9 <= result.target <= 13


def test_only_running_sums_are_stored():
    projection = MissRatioProjection()
    for mpl in (3, 6, 9, 12):
        projection.observe(mpl, 0.1)
    # The paper's eight quantities (plus the tried range) are the
    # entire state: verify the sums are what least squares needs.
    assert projection.count == 4
    assert projection.sum_mpl == 30
    assert projection.sum_mpl2 == 9 + 36 + 81 + 144
    assert projection.sum_miss == pytest.approx(0.4)


def test_reset_discards_observations():
    projection = MissRatioProjection()
    feed(projection, [(2, 0.1), (4, 0.2), (6, 0.3)])
    projection.reset()
    assert projection.count == 0
    assert projection.project().curve_type is CurveType.INSUFFICIENT


def test_observation_validation():
    projection = MissRatioProjection()
    with pytest.raises(ValueError):
        projection.observe(0, 0.5)
    with pytest.raises(ValueError):
        projection.observe(5, 1.5)


def test_min_max_tried_tracked():
    projection = MissRatioProjection()
    feed(projection, [(3, 0.1), (9, 0.2), (5, 0.15)])
    assert projection.min_mpl_tried == 3
    assert projection.max_mpl_tried == 9
    assert projection.distinct_mpls == 3


def test_flat_line_is_hill_like_failure():
    projection = MissRatioProjection()
    # Identical miss at three distinct MPLs: a == b == 0 -> no usable
    # direction; the projection reports HILL so the RU heuristic runs.
    for mpl in (2, 5, 8):
        projection.observe(mpl, 0.3)
    result = projection.project()
    assert result.curve_type is CurveType.HILL
    assert result.target is None
