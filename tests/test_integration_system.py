"""End-to-end integration tests of the full simulated RTDBS.

These run tiny but complete simulations (seconds of wall time) and
check cross-module invariants: accounting consistency, firm-deadline
semantics, stand-alone cost-model fidelity, reproducibility, and the
policy-level behaviours the paper's evaluation hinges on.
"""

import pytest

from repro import (
    MinMaxPolicy,
    RTDBSystem,
    baseline,
    external_sort_workload,
    multiclass,
)


def run(config, policy, **kwargs):
    return RTDBSystem(config, policy).run(**kwargs)


@pytest.fixture(scope="module")
def small_minmax_result():
    # Shared full-system run (the priciest fixture in tier-1).
    config = baseline(arrival_rate=0.04, scale=0.1, duration=1200.0, seed=5)
    return run(config, "minmax")


def test_accounting_consistency(small_minmax_result):
    result = small_minmax_result
    assert result.served == result.completed + result.missed
    assert result.served > 0
    assert 0.0 <= result.miss_ratio <= 1.0
    assert result.arrivals >= result.served
    assert len(result.departure_log) == result.served


def test_utilizations_are_fractions(small_minmax_result):
    result = small_minmax_result
    assert 0.0 < result.cpu_utilization < 1.0
    for utilization in result.disk_utilizations:
        assert 0.0 <= utilization < 1.0
    assert len(result.disk_utilizations) == 10


def test_response_decomposition(small_minmax_result):
    result = small_minmax_result
    assert result.avg_response == pytest.approx(
        result.avg_waiting + result.avg_execution, rel=1e-9
    )


def test_firm_deadlines_bound_residence(small_minmax_result):
    # Every departure (missed or not) happens by its deadline horizon;
    # missed ones exactly at it.  Spot-check via the departure log:
    # response times never exceed the largest possible constraint.
    config_max_constraint = 7.5  # max slack ratio
    for entry in small_minmax_result.departure_log:
        _t, _cls, missed, waiting, execution, _fl = entry
        assert waiting >= 0 and execution >= 0


@pytest.mark.slow
def test_reproducible_with_same_seed():
    config = baseline(arrival_rate=0.04, scale=0.1, duration=600.0, seed=9)
    first = run(config, "minmax")
    second = run(config, "minmax")
    assert first.miss_ratio == second.miss_ratio
    assert first.served == second.served
    assert first.avg_response == second.avg_response


@pytest.mark.slow
def test_different_seeds_differ():
    config_a = baseline(arrival_rate=0.04, scale=0.1, duration=600.0, seed=1)
    config_b = baseline(arrival_rate=0.04, scale=0.1, duration=600.0, seed=2)
    first = run(config_a, "minmax")
    second = run(config_b, "minmax")
    assert first.departure_log != second.departure_log


@pytest.mark.slow
def test_solo_query_matches_cost_model():
    # A single query at maximum memory should track the closed-form
    # stand-alone estimate (the deadline semantics depend on this).
    config = baseline(arrival_rate=1e-4, scale=0.1, duration=200_000.0, seed=3)
    system = RTDBSystem(config, "max")
    result = system.run(max_completions=5)
    assert result.miss_ratio == 0.0
    # Compare against the model's estimate range over possible R/S.
    low = system.cost_model.hash_join_standalone(60, 300)
    high = system.cost_model.hash_join_standalone(180, 900)
    assert low * 0.7 <= result.avg_execution <= high * 1.3


def test_max_completions_stops_early():
    config = baseline(arrival_rate=0.06, scale=0.1, duration=50_000.0, seed=5)
    result = run(config, "minmax", max_completions=40)
    assert 40 <= result.served <= 45  # a few in-flight departures may add


@pytest.mark.slow
def test_warmup_discards_early_statistics():
    config = baseline(arrival_rate=0.05, scale=0.1, duration=1000.0, seed=5)
    warm = run(config, "minmax", warmup=300.0)
    assert all(entry[0] >= 300.0 for entry in warm.departure_log)


def test_custom_policy_instance_accepted():
    config = baseline(arrival_rate=0.04, scale=0.1, duration=400.0, seed=5)
    result = run(config, MinMaxPolicy(3))
    assert result.policy == "MinMax-3"


@pytest.mark.slow
def test_sort_workload_runs():
    config = external_sort_workload(arrival_rate=0.06, scale=0.1, duration=800.0, seed=5)
    result = run(config, "pmm")
    assert result.served > 0
    assert "Sort" in result.per_class


@pytest.mark.slow
def test_multiclass_tracks_both_classes():
    config = multiclass(small_rate=0.4, medium_rate=0.05, scale=0.1, duration=800.0, seed=5)
    result = run(config, "minmax")
    assert result.per_class["Small"].served > 0
    assert result.per_class["Medium"].served > 0
    total = result.per_class["Small"].served + result.per_class["Medium"].served
    assert total == result.served


def test_windowed_miss_ratio_series(small_minmax_result):
    series = small_minmax_result.windowed_miss_ratio(300.0)
    assert series
    for _time, ratio in series:
        assert 0.0 <= ratio <= 1.0


def test_memory_never_oversubscribed_live():
    config = baseline(arrival_rate=0.06, scale=0.1, duration=400.0, seed=5)
    system = RTDBSystem(config, "minmax")
    violations = []
    original = system.buffers.apply_allocation

    def checked(allocation):
        if sum(allocation.values()) > system.buffers.total_pages:
            violations.append(allocation)
        original(allocation)

    system.buffers.apply_allocation = checked
    system.run()
    assert violations == []


@pytest.mark.slow
def test_pmm_trace_present_only_for_pmm():
    config = baseline(arrival_rate=0.05, scale=0.1, duration=900.0, seed=5)
    static = run(config, "minmax")
    adaptive = run(config, "pmm")
    assert static.pmm_mpl_trace == []
    assert adaptive.pmm_mpl_trace  # at least one batch happened
