"""Unit tests for the Max / MinMax / Proportional allocators."""

import pytest

from repro.core.allocation import (
    QueryDemand,
    allocate_max,
    allocate_minmax,
    allocate_proportional,
)


def demand(qid, min_pages, max_pages, priority=None):
    return QueryDemand(
        qid=qid,
        priority=float(qid) if priority is None else priority,
        min_pages=min_pages,
        max_pages=max_pages,
    )


# ----------------------------------------------------------------------
# Max
# ----------------------------------------------------------------------
def test_max_gives_maximum_or_nothing():
    demands = [demand(1, 10, 100), demand(2, 10, 100), demand(3, 10, 100)]
    allocation = allocate_max(demands, memory=250)
    assert allocation == {1: 100, 2: 100, 3: 0}


def test_max_skips_blocked_query_and_packs_smaller_ones():
    # Query 2 does not fit after query 1, but query 3 does: ED-order
    # greedy packing admits it (Section 3.2: "as many queries ... as
    # memory permits").
    demands = [demand(1, 10, 150), demand(2, 10, 120), demand(3, 10, 50)]
    allocation = allocate_max(demands, memory=200)
    assert allocation == {1: 150, 2: 0, 3: 50}


def test_max_empty_population():
    assert allocate_max([], memory=100) == {}


def test_max_exact_fit():
    demands = [demand(1, 5, 60), demand(2, 5, 40)]
    assert allocate_max(demands, memory=100) == {1: 60, 2: 40}


def test_max_rejects_negative_memory():
    with pytest.raises(ValueError):
        allocate_max([demand(1, 1, 2)], memory=-1)


# ----------------------------------------------------------------------
# MinMax
# ----------------------------------------------------------------------
def test_minmax_two_pass_shape():
    # 3 queries, min 10 / max 100 each, 150 pages: all get min (30),
    # then ED order tops up: q1 -> 100, q2 gets the remaining 30+10.
    demands = [demand(1, 10, 100), demand(2, 10, 100), demand(3, 10, 100)]
    allocation = allocate_minmax(demands, memory=150)
    assert allocation == {1: 100, 2: 40, 3: 10}


def test_minmax_invariant_highest_priority_holds_max():
    demands = [demand(i, 5, 50) for i in range(1, 6)]
    allocation = allocate_minmax(demands, memory=120)
    values = [allocation[i] for i in range(1, 6)]
    # Non-increasing in ED order; at most one strictly-between value.
    assert values == sorted(values, reverse=True)
    between = [v for v in values if 5 < v < 50]
    assert len(between) <= 1
    assert sum(values) <= 120


def test_minmax_respects_mpl_limit():
    demands = [demand(i, 10, 20) for i in range(1, 6)]
    allocation = allocate_minmax(demands, memory=1000, mpl_limit=2)
    admitted = [qid for qid, pages in allocation.items() if pages > 0]
    assert admitted == [1, 2]
    assert allocation[1] == 20 and allocation[2] == 20


def test_minmax_unbounded_admits_while_min_fits():
    demands = [demand(i, 10, 100) for i in range(1, 11)]
    allocation = allocate_minmax(demands, memory=95)
    admitted = [qid for qid, pages in allocation.items() if pages > 0]
    assert len(admitted) == 9  # 9 minima of 10 fit in 95


def test_minmax_skips_unfittable_min_but_admits_later():
    demands = [demand(1, 80, 100), demand(2, 200, 300), demand(3, 15, 30)]
    allocation = allocate_minmax(demands, memory=100)
    assert allocation[2] == 0
    assert allocation[1] >= 80
    assert allocation[3] >= 15


def test_minmax_zero_memory():
    demands = [demand(1, 1, 2)]
    assert allocate_minmax(demands, memory=0) == {1: 0}


def test_minmax_mpl_limit_zero_admits_nobody():
    demands = [demand(1, 1, 2)]
    assert allocate_minmax(demands, memory=100, mpl_limit=0) == {1: 0}


# ----------------------------------------------------------------------
# Proportional
# ----------------------------------------------------------------------
def test_proportional_equal_fraction():
    demands = [demand(1, 10, 100), demand(2, 10, 200)]
    allocation = allocate_proportional(demands, memory=150)
    # Equal fraction of max: f = 0.5 -> 50 and 100.
    assert allocation[1] == 50
    assert allocation[2] == 100


def test_proportional_respects_minimum_floor():
    demands = [demand(1, 40, 100), demand(2, 40, 100), demand(3, 40, 100)]
    allocation = allocate_proportional(demands, memory=130)
    for qid in (1, 2, 3):
        assert allocation[qid] >= 40
    assert sum(allocation.values()) <= 130


def test_proportional_never_exceeds_max():
    demands = [demand(1, 10, 50), demand(2, 10, 50)]
    allocation = allocate_proportional(demands, memory=1000)
    assert allocation == {1: 50, 2: 50}


def test_proportional_uses_all_memory_when_scarce():
    demands = [demand(1, 10, 100), demand(2, 10, 100), demand(3, 10, 100)]
    allocation = allocate_proportional(demands, memory=90)
    assert sum(allocation.values()) == 90


def test_proportional_mpl_limit():
    demands = [demand(i, 10, 100) for i in range(1, 6)]
    allocation = allocate_proportional(demands, memory=1000, mpl_limit=3)
    admitted = [qid for qid, pages in allocation.items() if pages > 0]
    assert admitted == [1, 2, 3]


# ----------------------------------------------------------------------
# shared invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "allocator",
    [allocate_max, allocate_minmax, allocate_proportional],
    ids=["max", "minmax", "proportional"],
)
def test_allocation_never_oversubscribes(allocator):
    demands = [demand(i, 7, 31 + 3 * i) for i in range(1, 12)]
    for memory in (0, 10, 50, 120, 400, 1000):
        allocation = allocator(demands, memory)
        assert sum(allocation.values()) <= memory
        for d in demands:
            pages = allocation[d.qid]
            assert pages == 0 or d.min_pages <= pages <= d.max_pages


def test_demand_envelope_validation():
    with pytest.raises(ValueError):
        QueryDemand(qid=1, priority=0.0, min_pages=10, max_pages=5)


# ----------------------------------------------------------------------
# proportional bisection: shortcut equivalence + admission-path speed
# ----------------------------------------------------------------------
def plain_bisection_reference(demands, memory, mpl_limit=None):
    """The unshortcut Proportional procedure: 64 plain bisection
    iterations over the clamp-sum, grants from the final ``low``.
    ``allocate_proportional``'s fast path, pinning, and
    single-boundary exit must reproduce this bit-for-bit -- the DES
    goldens pin its grant vectors."""
    from repro.core.allocation import _admit_by_minimum, _clamp_sum

    allocation = {d.qid: 0 for d in demands}
    admitted = _admit_by_minimum(demands, memory, mpl_limit)
    if not admitted:
        return allocation
    mins = [d.min_pages for d in admitted]
    maxs = [d.max_pages for d in admitted]
    low, high = 0.0, 1.0
    for _ in range(64):
        mid = (low + high) / 2.0
        if _clamp_sum(mid, mins, maxs) <= memory:
            low = mid
        else:
            high = mid
    for d in admitted:
        allocation[d.qid] = min(
            d.max_pages, max(d.min_pages, int(low * d.max_pages))
        )
    remaining = memory - sum(allocation[d.qid] for d in admitted)
    for d in admitted:
        if remaining <= 0:
            break
        extra = min(d.max_pages - allocation[d.qid], remaining)
        allocation[d.qid] += extra
        remaining -= extra
    return allocation


def test_proportional_matches_plain_bisection_reference():
    """Property: across tie-heavy, wide, and huge-page demand regimes
    the shortcut bisection returns the reference grants exactly."""
    import random

    rng = random.Random(1234)
    for trial in range(600):
        regime = trial % 3
        if regime == 0:  # tiny maxima -> many duplicate boundaries
            count, max_hi, memory_hi = rng.randint(0, 30), 12, 200
        elif regime == 1:  # the live admission path's typical shape
            count, max_hi, memory_hi = rng.randint(0, 60), 140, 1500
        else:  # huge page counts stress the float boundaries
            count, max_hi, memory_hi = rng.randint(0, 20), 1_000_000, 4_000_000
        demands = []
        for qid in range(count):
            max_pages = rng.randint(0, max_hi)
            min_pages = rng.randint(0, max_pages) if max_pages else 0
            demands.append(demand(qid, min_pages, max_pages))
        memory = rng.randint(0, memory_hi)
        limit = rng.choice([None, rng.randint(0, 10)])
        assert allocate_proportional(demands, memory, limit) == (
            plain_bisection_reference(demands, memory, limit)
        ), f"trial {trial}: shortcut bisection diverged from reference"


@pytest.mark.slow
def test_proportional_admission_rate_floor():
    """The gateway's decision path under the Proportional policy must
    sustain >= 8k decisions/s (it was the 6x admission outlier before
    the bisection shortcuts; scripts/bench_serve.py tracks the same
    loop)."""
    import time

    from repro.core.broker import MemoryBroker
    from repro.policies import make_policy
    from repro.serve.dataplane import TrackedAllocator

    broker = MemoryBroker(make_policy("proportional"), total_pages=256, sample_size=30)
    allocator = TrackedAllocator(256)
    population = 24
    for qid in range(population):
        broker.register(qid, f"C{qid % 3}", 100.0 + qid, 4 + qid % 13, 20 + qid % 90)
    decisions = 600
    started = time.perf_counter()
    for step in range(decisions):
        decision = broker.reallocate(now=float(step))
        allocator.apply(decision.allocation)
        victim = qid - population + 1
        broker.release(victim)
        allocator.release(victim)
        qid += 1
        broker.register(qid, f"C{qid % 3}", 100.0 + qid, 4 + qid % 13, 20 + qid % 90)
    rate = decisions / (time.perf_counter() - started)
    assert rate >= 8000, (
        f"proportional admission path sustained only {rate:.0f} "
        "decisions/s (floor 8000); the bisection shortcuts regressed"
    )
