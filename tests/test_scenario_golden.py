"""Golden-trace regression: fixed-seed counts for one scenario per family.

These pins guard *two* surfaces at once:

* the **scenario generator** -- if a draw is added, removed, or
  reordered, the scenario's content hash changes and the pinned hash
  fails first, pointing at the generator rather than the kernel;
* the **simulation kernel** -- if event ordering, the cost model, or a
  policy changes behaviour, the arrival/served/missed counts drift
  while the hash stays put.

The chosen indices are deliberately *discriminating*: each family's
pinned scenario produces deadline misses and (except heavytail, where
PMM's adaptation happens to cost it one query) distinguishes MinMax
from PMM, so a behaviour change in either policy shows up here.

When a change to simulation semantics is intentional, re-pin by
running the module printout::

    PYTHONPATH=src python tests/test_scenario_golden.py

and bump ``repro.experiments.runner.CACHE_VERSION``.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro.rtdbs.system import RTDBSystem
from repro.scenarios import ScenarioGenerator

GOLDEN_SEED = 2026


@dataclass(frozen=True)
class GoldenTrace:
    index: int
    content_hash: str
    #: (arrivals, served, missed) under each pinned policy.
    minmax: Tuple[int, int, int]
    pmm: Tuple[int, int, int]


GOLDEN: Dict[str, GoldenTrace] = {
    "mix": GoldenTrace(
        index=4,
        content_hash="ce73986e483b715e1e585af07e988f0e21578e95a5eec8b9a4471c857412dcd8",
        minmax=(44, 44, 18),
        pmm=(44, 44, 14),
    ),
    "bursty": GoldenTrace(
        index=4,
        content_hash="3159f0daa39d62e3053c231e128121ca445926fd7d560edfdab9416b168ba3b5",
        minmax=(134, 131, 23),
        pmm=(134, 131, 20),
    ),
    "phases": GoldenTrace(
        index=2,
        content_hash="256aadec6621b555e47a1f30d8209b1e3e61cd39397277ba773d0b285ed912af",
        minmax=(66, 66, 3),
        pmm=(66, 66, 0),
    ),
    "multitenant": GoldenTrace(
        index=5,
        content_hash="4a6dabb38d662473f1ce1ae0cc50d5d7d1eee0542fcb8a37a31b05f2fc972d22",
        minmax=(79, 79, 20),
        pmm=(79, 79, 15),
    ),
    "heavytail": GoldenTrace(
        index=2,
        content_hash="6fb6970a8ab801b65feb5a34cc90b6383e66d45b419e9f759bd6eb2172c5cde1",
        minmax=(63, 63, 5),
        pmm=(63, 63, 6),
    ),
}


def _counts(scenario, policy):
    result = RTDBSystem(scenario.config, policy, invariants=True).run()
    return (result.arrivals, result.served, result.missed)


@pytest.mark.parametrize("family", sorted(GOLDEN))
def test_generator_content_hash_pinned(family):
    golden = GOLDEN[family]
    scenario = ScenarioGenerator(seed=GOLDEN_SEED).generate(family, golden.index)
    assert scenario.content_hash == golden.content_hash, (
        f"the {family} generator's draw sequence changed; if intentional, "
        f"re-pin (see module docstring)"
    )


@pytest.mark.parametrize("family", sorted(GOLDEN))
def test_fixed_seed_counts_pinned(family):
    golden = GOLDEN[family]
    scenario = ScenarioGenerator(seed=GOLDEN_SEED).generate(family, golden.index)
    assert _counts(scenario, "minmax") == golden.minmax
    assert _counts(scenario, "pmm") == golden.pmm


if __name__ == "__main__":  # re-pin helper
    for family, golden in GOLDEN.items():
        scenario = ScenarioGenerator(seed=GOLDEN_SEED).generate(family, golden.index)
        print(f'    "{family}": GoldenTrace(')
        print(f"        index={golden.index},")
        print(f'        content_hash="{scenario.content_hash}",')
        print(f'        minmax={_counts(scenario, "minmax")},')
        print(f'        pmm={_counts(scenario, "pmm")},')
        print("    ),")
