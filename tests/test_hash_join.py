"""Unit tests for the PPHJ hash-join operator (driven outside the sim)."""

import math

import pytest

from repro.queries.base import MemoryGrant, OperatorContext
from repro.queries.hash_join import HashJoinOperator
from repro.queries.requests import READ, WRITE, AllocationWait, CPUBurst, DiskAccess
from repro.rtdbs.config import CPUCosts
from repro.rtdbs.database import Relation, TempFile


class FakeTempAllocator:
    def __init__(self):
        self.allocated = []
        self.released = []

    def allocate(self, disk, pages):
        temp = TempFile(disk, 10_000, pages)
        self.allocated.append(temp)
        return temp

    def release(self, temp):
        self.released.append(temp)


def make_join(inner_pages=120, outer_pages=600, grant_pages=None, tuples_per_page=40):
    allocator = FakeTempAllocator()
    context = OperatorContext(
        tuples_per_page=tuples_per_page,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=allocator.allocate,
        release_temp=allocator.release,
    )
    inner = Relation(0, 0, 0, inner_pages, 1000)
    outer = Relation(1, 1, 1, outer_pages, 2000)
    grant = MemoryGrant(0)
    operator = HashJoinOperator(context, grant, inner, outer, fudge_factor=1.1)
    if grant_pages is None:
        grant_pages = operator.max_pages
    grant.set(grant_pages)
    return operator, grant, allocator


def drain(operator):
    return list(operator.run())


def io_pages(trace, kind):
    return sum(r.npages for r in trace if isinstance(r, DiskAccess) and r.kind == kind)


# ----------------------------------------------------------------------
# demand envelope (the paper's formulas, Section 3.2)
# ----------------------------------------------------------------------
def test_max_demand_is_fudge_times_inner_plus_buffer():
    operator, _grant, _alloc = make_join(inner_pages=1200)
    assert operator.max_pages == math.ceil(1.1 * 1200) + 1  # 1321 as in the paper


def test_min_demand_is_about_sqrt():
    operator, _grant, _alloc = make_join(inner_pages=1200)
    # The paper quotes sqrt(F * ||R||) + 1 = 37 pages for R = 1200.
    assert 35 <= operator.min_pages <= 40


def test_operand_io_count_counts_both_relations():
    operator, _grant, _alloc = make_join(inner_pages=120, outer_pages=600)
    assert operator.operand_io_count == math.ceil(120 / 6) + math.ceil(600 / 6)


# ----------------------------------------------------------------------
# one-pass execution at maximum memory
# ----------------------------------------------------------------------
def test_max_memory_join_does_no_temp_io():
    operator, _grant, _alloc = make_join()
    trace = drain(operator)
    assert io_pages(trace, WRITE) == 0
    reads = io_pages(trace, READ)
    assert reads == 120 + 600  # exactly one scan of each operand


def test_max_memory_cpu_cost_matches_table4():
    tuples_per_page = 40
    operator, _grant, _alloc = make_join(tuples_per_page=tuples_per_page)
    trace = drain(operator)
    cpu = sum(r.instructions for r in trace if isinstance(r, CPUBurst))
    cpu += sum(r.cpu for r in trace if isinstance(r, DiskAccess))
    costs = CPUCosts()
    expected = (
        costs.initiate_query
        + costs.terminate_query
        + 120 * tuples_per_page * costs.hash_insert
        + 600 * tuples_per_page * (costs.hash_probe + costs.hash_output)
    )
    assert cpu == pytest.approx(expected, rel=1e-6)


def test_operand_reads_are_cacheable_blocks():
    operator, _grant, _alloc = make_join()
    trace = [r for r in operator.run() if isinstance(r, DiskAccess) and r.kind == READ]
    assert all(r.cacheable for r in trace)
    assert all(r.npages <= 6 for r in trace)


# ----------------------------------------------------------------------
# two-pass execution at minimum memory
# ----------------------------------------------------------------------
def test_min_memory_join_spools_both_operands():
    operator, _grant, _alloc = make_join(grant_pages=None)
    operator2, grant2, _ = make_join()
    grant2.set(operator2.min_pages)
    trace = drain(operator2)
    written = io_pages(trace, WRITE)
    read = io_pages(trace, READ)
    # Essentially everything is spooled once and read back once.
    assert written == pytest.approx(720, rel=0.15)
    assert read == pytest.approx(720 + written, rel=0.15)


def test_min_memory_conservation_writes_equal_temp_reads():
    operator, grant, _alloc = make_join()
    grant.set(operator.min_pages)
    trace = drain(operator)
    temp_reads = sum(
        r.npages
        for r in trace
        if isinstance(r, DiskAccess) and r.kind == READ and not r.cacheable
    )
    written = io_pages(trace, WRITE)
    assert temp_reads == pytest.approx(written, rel=0.1)


def test_partial_memory_spools_proportionally_less():
    operator_min, grant_min, _ = make_join()
    grant_min.set(operator_min.min_pages)
    spooled_min = io_pages(drain(operator_min), WRITE)

    operator_half, grant_half, _ = make_join()
    half = (operator_half.min_pages + operator_half.max_pages) // 2
    grant_half.set(half)
    spooled_half = io_pages(drain(operator_half), WRITE)

    assert 0 < spooled_half < spooled_min


# ----------------------------------------------------------------------
# adaptation mid-flight
# ----------------------------------------------------------------------
def test_contraction_mid_build_spools_hash_tables():
    operator, grant, _alloc = make_join()
    trace = []
    steps = operator.run()
    for _ in range(20):  # partway through the build phase
        trace.append(next(steps))
    grant.set(operator.min_pages)  # memory taken away
    for request in steps:
        trace.append(request)
    assert io_pages(trace, WRITE) > 0
    assert grant.fluctuations == 0  # grant.started was never set


def test_suspension_waits_for_memory():
    operator, grant, _alloc = make_join()
    steps = operator.run()
    for _ in range(10):
        next(steps)
    grant.set(0)
    saw_wait = False
    for request in steps:
        if isinstance(request, AllocationWait):
            saw_wait = True
            grant.set(operator.max_pages)  # re-grant; operator resumes
        if isinstance(request, CPUBurst) and saw_wait:
            break
    assert saw_wait


def test_expansion_during_probe_reads_partitions_back():
    operator, grant, _alloc = make_join()
    grant.set(operator.min_pages)
    steps = operator.run()
    trace = []
    # Run until the probe phase is under way (outer reads observed).
    outer_reads = 0
    for request in steps:
        trace.append(request)
        if (
            isinstance(request, DiskAccess)
            and request.kind == READ
            and request.cacheable
            and request.disk == 1
        ):
            outer_reads += 1
            if outer_reads == 3:
                break
    grant.set(operator.max_pages)  # plenty of memory mid-probe
    before = operator.expanded
    trace.extend(steps)
    assert operator.expanded > before  # late expansion happened


def test_release_resources_frees_temp_files():
    operator, grant, allocator = make_join()
    grant.set(operator.min_pages)
    drain(operator)
    assert allocator.allocated
    operator.release_resources()
    assert len(allocator.released) == len(allocator.allocated)


def test_empty_relation_rejected():
    allocator = FakeTempAllocator()
    context = OperatorContext(
        tuples_per_page=40,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=allocator.allocate,
        release_temp=allocator.release,
    )
    with pytest.raises(ValueError):
        HashJoinOperator(
            context,
            MemoryGrant(10),
            Relation(0, 0, 0, 0, 0),
            Relation(1, 0, 0, 10, 100),
        )
